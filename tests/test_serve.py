"""End-to-end serve/pull suite: the daemon's robustness contract.

Every test drives a real :class:`~repro.serve.DeltaServer` on an
ephemeral loopback port and real :func:`~repro.serve.pull_async`
clients — the full framed protocol, the warm pipeline, the journaled
apply.  Covered here: byte-exact pulls, request coalescing (K identical
pulls, exactly one encode), explicit backpressure, per-request
deadlines, structured server errors, graceful drain with in-flight
pulls completing, download resume under injected frame corruption and
connection drops, power-cut resume via the journal, crash-safe resume
from a :class:`~repro.serve.PullState` directory, and the
``jitter_draw``-derived retry backoff (byte-reproducible, matching the
pipeline's and updater's formula).
"""

import asyncio
import random
import time
import zlib

import pytest

from repro import perf
from repro.faults import FaultPlan, jitter_draw
from repro.pipeline import ReferenceIndexCache
from repro.serve import (
    DeltaServer,
    PullState,
    ReleaseStore,
    ServeConfig,
    pull_async,
)
import repro.serve.client as client_module
from repro.workloads import make_binary_blob, mutate

SEED = 19980601


def _corpus(size=16384, releases=2, seed=SEED):
    rng = random.Random(seed)
    store = ReleaseStore()
    old = make_binary_blob(rng, size)
    chain = [old]
    store.publish("pkg", old)
    for _ in range(releases - 1):
        chain.append(mutate(chain[-1], rng))
        store.publish("pkg", chain[-1])
    return store, chain


def _server(store, **overrides):
    return DeltaServer(store, ServeConfig(port=0, **overrides))


class TestReleaseStore:
    def test_publish_resolve_latest(self):
        store, chain = _corpus(size=2048, releases=3)
        digest, latest = store.latest("pkg")
        assert latest == chain[-1]
        assert digest == ReferenceIndexCache.digest(chain[-1])
        assert store.get("pkg", ReleaseStore.digest(chain[0])) == chain[0]

    def test_republish_moves_to_head(self):
        store = ReleaseStore()
        store.publish("pkg", b"alpha")
        store.publish("pkg", b"beta")
        store.publish("pkg", b"alpha")
        _digest, latest = store.latest("pkg")
        assert latest == b"alpha"


class TestEndToEnd:
    def test_pull_applies_byte_exact(self):
        store, chain = _corpus()

        async def go():
            async with _server(store) as server:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0])

        outcome = asyncio.run(go())
        assert outcome.status == "applied"
        assert outcome.image == chain[-1]
        assert outcome.boots == 1 and outcome.power_cuts == 0
        assert outcome.want == ReleaseStore.digest(chain[-1])
        assert outcome.payload_bytes > 0

    def test_pull_explicit_want_digest(self):
        store, chain = _corpus(releases=3)
        middle = ReleaseStore.digest(chain[1])

        async def go():
            async with _server(store) as server:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], want=middle)

        outcome = asyncio.run(go())
        assert outcome.status == "applied"
        assert outcome.image == chain[1]

    def test_up_to_date_is_a_clean_apply(self):
        store, chain = _corpus()

        async def go():
            async with _server(store) as server:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[-1])

        outcome = asyncio.run(go())
        assert outcome.status == "applied"
        assert outcome.reason == "already up to date"
        assert outcome.image == chain[-1]

    def test_unknown_package_is_structured_failure(self):
        store, chain = _corpus()

        async def go():
            async with _server(store) as server:
                return await pull_async(server.host, server.port, "nope",
                                        chain[0])

        outcome = asyncio.run(go())
        assert outcome.status == "failed"
        assert "unknown-package" in outcome.reason

    def test_unknown_reference_digest_is_structured_failure(self):
        store, _chain = _corpus()

        async def go():
            async with _server(store) as server:
                return await pull_async(server.host, server.port, "pkg",
                                        b"bytes the server never published")

        outcome = asyncio.run(go())
        assert outcome.status == "failed"
        assert "unknown-version" in outcome.reason


class TestCoalescing:
    def test_k_identical_pulls_one_encode_identical_payloads(self):
        store, chain = _corpus()
        k = 8

        async def go(server):
            await server.start()
            try:
                return await asyncio.gather(*(
                    pull_async(server.host, server.port, "pkg", chain[0],
                               scope="dev%02d" % i)
                    for i in range(k)))
            finally:
                await server.drain()

        with perf.recording() as recorder:
            server = _server(store)
            outcomes = asyncio.run(go(server))
        assert recorder.counters.get("serve.encodes") == 1
        assert server.counters["encodes"] == 1
        assert (server.counters["coalesced"]
                + server.counters["payload_hits"]) == k - 1
        assert all(o.status == "applied" for o in outcomes)
        assert all(o.image == chain[-1] for o in outcomes)
        # Byte-identical payloads: same length, same CRC32, everywhere.
        crcs = {o.payload_crc32 for o in outcomes}
        sizes = {o.payload_bytes for o in outcomes}
        assert len(crcs) == 1 and len(sizes) == 1
        assert crcs.pop() != 0

    def test_distinct_pairs_encode_independently(self):
        store, chain = _corpus(releases=3)

        async def go(server):
            await server.start()
            try:
                return await asyncio.gather(
                    pull_async(server.host, server.port, "pkg", chain[0]),
                    pull_async(server.host, server.port, "pkg", chain[1]),
                )
            finally:
                await server.drain()

        server = _server(store)
        outcomes = asyncio.run(go(server))
        assert server.counters["encodes"] == 2
        assert all(o.status == "applied" for o in outcomes)
        assert all(o.image == chain[-1] for o in outcomes)


def _slow_encode(server, delay):
    """Wrap the server's pipeline encode with a sleep (test hook)."""
    inner = server._encode_sync

    def slow(job):
        time.sleep(delay)
        return inner(job)

    server._encode_sync = slow


class TestBackpressure:
    def test_overload_is_refused_with_retry_after(self):
        store, chain = _corpus(size=4096)

        async def go(server):
            _slow_encode(server, 0.3)
            await server.start()
            try:
                return await asyncio.gather(*(
                    pull_async(server.host, server.port, "pkg", chain[0],
                               scope="dev%d" % i, max_attempts=1)
                    for i in range(4)))
            finally:
                await server.drain()

        server = _server(store, max_inflight=1, retry_after=0.02)
        outcomes = asyncio.run(go(server))
        statuses = sorted(o.status for o in outcomes)
        assert statuses.count("applied") == 1
        assert statuses.count("refused") == 3
        assert server.counters["refused"] == 3
        for outcome in outcomes:
            if outcome.status == "refused":
                assert outcome.retry_after == pytest.approx(0.02)
                assert "backpressure" in outcome.reason

    def test_client_rides_through_transient_overload(self):
        store, chain = _corpus(size=4096)

        async def go(server):
            _slow_encode(server, 0.1)
            await server.start()
            try:
                return await asyncio.gather(*(
                    pull_async(server.host, server.port, "pkg", chain[0],
                               scope="dev%d" % i, max_attempts=8,
                               backoff_base=0.01)
                    for i in range(4)))
            finally:
                await server.drain()

        server = _server(store, max_inflight=1, retry_after=0.02)
        outcomes = asyncio.run(go(server))
        assert all(o.status == "applied" for o in outcomes)
        assert all(o.image == chain[-1] for o in outcomes)
        # At least one client was refused first and retried its way in.
        assert server.counters["refused"] >= 1


class TestDeadline:
    def test_deadline_hit_is_structured(self):
        store, chain = _corpus(size=4096)

        async def go(server):
            _slow_encode(server, 0.5)
            await server.start()
            try:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], max_attempts=1)
            finally:
                await server.drain()

        server = _server(store, request_timeout=0.05)
        outcome = asyncio.run(go(server))
        assert outcome.status == "failed"
        assert "deadline" in outcome.reason
        assert server.counters["deadline"] == 1


class TestFaultSites:
    def test_accept_fault_drops_connection_then_pull_recovers(self):
        store, chain = _corpus()
        plan = FaultPlan.parse("serve.accept:nth=1", seed=7)

        async def go(server):
            await server.start()
            try:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], max_attempts=3)
            finally:
                await server.drain()

        server = _server(store, fault_plan=plan)
        outcome = asyncio.run(go(server))
        assert outcome.status == "applied"
        assert outcome.image == chain[-1]
        assert outcome.attempts == 2
        assert server.counters["accept_faults"] == 1
        assert any("truncated" in f or "frame" in f for f in outcome.faults)

    def test_frame_corruption_detected_and_download_resumes(self):
        store, chain = _corpus(size=32768)
        # Frame 3 for this request scope is the second DATA chunk: the
        # client has one verified chunk buffered when the CRC trips.
        plan = FaultPlan.parse("serve.frame:nth=3", seed=7)

        async def go(server):
            await server.start()
            try:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], max_attempts=3)
            finally:
                await server.drain()

        server = _server(store, fault_plan=plan, chunk_size=512)
        outcome = asyncio.run(go(server))
        assert outcome.status == "applied"
        assert outcome.image == chain[-1]
        assert server.counters["frame_corruptions"] == 1
        assert any("CRC" in f for f in outcome.faults)
        assert outcome.resumes == 1
        assert outcome.resumed_bytes > 0

    def test_client_recv_drop_resumes_mid_download(self):
        store, chain = _corpus(size=32768)
        plan = FaultPlan.parse("client.recv:nth=4", seed=7)

        async def go(server):
            await server.start()
            try:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], fault_plan=plan,
                                        max_attempts=3)
            finally:
                await server.drain()

        server = _server(store, chunk_size=512)
        outcome = asyncio.run(go(server))
        assert outcome.status == "applied"
        assert outcome.image == chain[-1]
        assert outcome.resumes == 1
        assert outcome.resumed_bytes > 0
        assert any("TransmissionError" in f for f in outcome.faults)

    def test_power_cut_rides_the_journal(self):
        store, chain = _corpus()
        plan = FaultPlan.parse("device.power:nth=1:fuel=700", seed=7)

        async def go(server):
            await server.start()
            try:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], fault_plan=plan)
            finally:
                await server.drain()

        server = _server(store)
        outcome = asyncio.run(go(server))
        assert outcome.status == "applied"
        assert outcome.image == chain[-1]
        assert outcome.power_cuts == 1
        assert outcome.boots == 2


class TestJitterBackoff:
    """Satellite: pull retry backoff reuses ``jitter_draw`` exactly."""

    def _delays(self, monkeypatch, seed):
        store, chain = _corpus(size=4096)
        delays = []

        async def fake_sleep(delay):
            delays.append(delay)

        monkeypatch.setattr(client_module, "_async_sleep", fake_sleep)
        plan = FaultPlan.parse("serve.accept:count=2", seed=seed)

        async def go(server):
            await server.start()
            try:
                return await pull_async(
                    server.host, server.port, "pkg", chain[0],
                    scope="dev-jitter", fault_plan=plan,
                    max_attempts=4, backoff_base=0.25,
                    backoff_factor=2.0, backoff_jitter=0.5,
                    backoff_cap=1.0)
            finally:
                await server.drain()

        # The *client's* fault plan carries the seed the jitter derives
        # from; the same plan drives the server's accept drops so the
        # retries actually happen.
        server = _server(store, fault_plan=plan)
        outcome = asyncio.run(go(server))
        assert outcome.status == "applied"
        assert outcome.attempts == 3
        return delays

    def test_backoff_matches_pure_formula_and_reproduces(self, monkeypatch):
        first = self._delays(monkeypatch, seed=99)
        second = self._delays(monkeypatch, seed=99)
        assert first and first == second
        expected = [
            min(1.0, 0.25 * (2.0 ** (attempt - 1)))
            * (1.0 + 0.5 * jitter_draw(99, "dev-jitter", attempt))
            for attempt in (1, 2)
        ]
        assert first == pytest.approx(expected)
        assert self._delays(monkeypatch, seed=7) != first


class TestDrain:
    def test_inflight_pulls_complete_new_connections_fail(self):
        store, chain = _corpus(size=8192)

        async def go(server):
            _slow_encode(server, 0.2)
            await server.start()
            host, port = server.host, server.port
            inflight = [
                asyncio.ensure_future(
                    pull_async(host, port, "pkg", chain[0],
                               scope="dev%d" % i))
                for i in range(3)
            ]
            await asyncio.sleep(0.05)  # let them reach the server
            drainer = asyncio.ensure_future(server.drain())
            outcomes = await asyncio.gather(*inflight)
            await drainer
            late = await pull_async(host, port, "pkg", chain[0],
                                    max_attempts=2)
            return outcomes, late

        server = _server(store, max_inflight=8)
        outcomes, late = asyncio.run(go(server))
        assert all(o.status == "applied" for o in outcomes)
        assert all(o.image == chain[-1] for o in outcomes)
        assert late.status == "failed"
        assert "exhausted" in late.reason

    def test_drain_is_idempotent(self):
        store, _chain = _corpus(size=2048)

        async def go(server):
            await server.start()
            await asyncio.gather(server.drain(), server.drain())
            await server.drain()

        asyncio.run(go(_server(store)))


class TestPullState:
    def test_power_exhausted_pull_resumes_from_state_dir(self, tmp_path):
        store, chain = _corpus()
        # Every boot of the first invocation dies mid-apply.
        plan = FaultPlan.parse("device.power:count=4:fuel=700", seed=7)
        state = PullState(tmp_path / "pull-state")

        async def first(server):
            await server.start()
            try:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], fault_plan=plan,
                                        max_boots=2, state=state)
            finally:
                await server.drain()

        server = _server(store)
        outcome = asyncio.run(first(server))
        assert outcome.status == "failed"
        assert "power failed" in outcome.reason
        assert outcome.power_cuts == 2

        # Second invocation: no network needed — the payload, journal,
        # and partially-mutated image all come from the state directory,
        # and the applier re-verifies applied regions via applied_crc.
        resumed = asyncio.run(pull_async(
            "127.0.0.1", 1, "pkg", chain[0], state=state))
        assert resumed.status == "applied"
        assert resumed.image == chain[-1]
        assert resumed.attempts == 0  # never opened a connection
        assert resumed.boots >= 1

        # Success cleared the state directory.
        buf, meta = state.load_payload()
        assert meta is None and not buf

    def test_partial_download_survives_process_death(self, tmp_path):
        store, chain = _corpus(size=32768)
        state = PullState(tmp_path / "pull-state")

        # Fetch the payload by speaking the protocol directly, then seed
        # the state directory with its first half — the moral equivalent
        # of a pull whose process died mid-download.
        async def payload_bytes(server):
            from repro.serve.protocol import (
                T_END, T_META, T_PULL, decode_msg, encode_msg,
                read_frame, write_frame,
            )
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                await write_frame(writer, T_PULL, encode_msg({
                    "package": "pkg",
                    "have": ReleaseStore.digest(chain[0]),
                    "want": "latest", "offset": 0}))
                ftype, payload = await read_frame(reader)
                assert ftype == T_META
                meta = decode_msg(payload)
                blob = bytearray()
                while True:
                    ftype, payload = await read_frame(reader)
                    if ftype == T_END:
                        break
                    blob.extend(payload)
                writer.close()
                return meta, bytes(blob)
            finally:
                await server.drain()

        meta, blob = asyncio.run(payload_bytes(_server(store)))
        assert zlib.crc32(blob) & 0xFFFFFFFF == meta["crc32"]
        state.save_payload(blob[:len(blob) // 2], meta)

        # A fresh pull with that state must resume, not restart.
        async def seeded(server):
            await server.start()
            try:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0], state=state)
            finally:
                await server.drain()

        outcome = asyncio.run(seeded(_server(store)))
        assert outcome.status == "applied"
        assert outcome.image == chain[-1]
        assert outcome.resumes == 1
        assert outcome.resumed_bytes == len(blob) // 2
