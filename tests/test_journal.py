"""Crash-safety tests for the journaled in-place applier.

The harness kills the power at *every* possible write boundary (and in
the middle of writes — partial slice writes land) and verifies the patch
always resumes to exactly the right image.  This is the strongest test
in the suite: it sweeps thousands of crash points over scripts that
exercise self-overlapping copies, spills, fills, growth, and shrinkage.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.device.journal import (
    CrashingStorage,
    Journal,
    JournaledApplier,
    PowerFailureError,
    apply_with_power_failures,
)
from repro.exceptions import ReproError
from repro.workloads import mutate


def run_clean(script, reference) -> bytes:
    """Apply with no crashes through the journaled path."""
    return apply_with_power_failures(script, reference, [None])


class TestCrashingStorage:
    def test_partial_write_lands_prefix(self):
        storage = CrashingStorage(b"00000000", fuel=3)
        with pytest.raises(PowerFailureError):
            storage[0:6] = b"ABCDEF"
        assert storage.snapshot() == b"ABC00000"

    def test_fuel_none_never_crashes(self):
        storage = CrashingStorage(b"0000")
        storage[0:4] = b"abcd"
        assert storage.snapshot() == b"abcd"
        assert storage.bytes_written == 4

    def test_single_byte_write(self):
        storage = CrashingStorage(b"0000", fuel=0)
        with pytest.raises(PowerFailureError):
            storage[1] = 65

    def test_resize(self):
        storage = CrashingStorage(b"abcd")
        storage.resize(6)
        assert len(storage) == 6
        storage.resize(2)
        assert storage.snapshot() == b"ab"


class TestJournaledApplierCleanRun:
    def test_matches_plain_apply(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        assert run_clean(result.script, ref) == ver

    def test_with_scratch_commands(self, rng):
        ref = rng.randbytes(3_000)
        ver = ref[1500:] + ref[:1500]
        result = repro.diff_in_place(ref, ver)
        base = repro.diff(ref, ver)
        scratched = repro.make_in_place(base, ref, scratch_budget=1 << 14)
        assert run_clean(scratched.script, ref) == ver

    def test_idempotent_after_completion(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        storage = CrashingStorage(ref)
        journal = Journal()
        JournaledApplier(result.script, journal).run(storage)
        assert journal.complete
        # Running again must be a no-op.
        JournaledApplier(result.script, journal).run(storage)
        assert storage.snapshot() == ver

    def test_schedule_exhaustion_raises(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        with pytest.raises(ReproError):
            apply_with_power_failures(result.script, ref, [0, 0])


def crash_sweep(script, reference, expected, *, stride=1, chunk_size=7):
    """Crash at every ``stride``-th write boundary, resume, check image."""
    # First, count total storage writes in a clean run.
    probe = CrashingStorage(reference)
    JournaledApplier(script, Journal()).run(probe, chunk_size=chunk_size)
    total = probe.bytes_written
    for crash_at in range(0, total, stride):
        image = apply_with_power_failures(
            script, reference, [crash_at, None], chunk_size=chunk_size
        )
        assert image == expected, "crash at write %d of %d" % (crash_at, total)


class TestCrashSweeps:
    def test_plain_copies_and_adds(self):
        ref = bytes(range(64))
        script = DeltaScript(
            [CopyCommand(32, 0, 16), CopyCommand(48, 24, 16),
             AddCommand(16, b"Z" * 8), AddCommand(40, b"Q" * 8)],
            version_length=48,
        )
        assert repro.is_in_place_safe(script)
        expected = repro.apply_delta(script, ref)
        crash_sweep(script, ref, expected)

    def test_self_overlapping_copies_both_directions(self):
        ref = bytes(range(64))
        script = DeltaScript(
            [CopyCommand(8, 0, 24),    # src > dst: left-to-right overlap
             CopyCommand(30, 34, 24),  # src < dst: right-to-left overlap
             AddCommand(24, b"." * 10), AddCommand(58, b"!" * 6)],
            version_length=64,
        )
        script.validate(reference_length=len(ref))
        expected = repro.apply_delta(script, ref)
        assert repro.is_in_place_safe(script)
        crash_sweep(script, ref, expected, chunk_size=5)

    def test_spill_fill_script(self):
        ref = bytes(range(48))
        # Swap two blocks via scratch.
        from repro.core.commands import FillCommand, SpillCommand

        script = DeltaScript(
            [SpillCommand(0, 0, 24), CopyCommand(24, 0, 24), FillCommand(0, 24, 24)],
            version_length=48,
        )
        expected = repro.apply_delta(script, ref)
        crash_sweep(script, ref, expected)

    def test_growing_version(self):
        ref = bytes(range(40))
        script = DeltaScript(
            [CopyCommand(0, 0, 40), AddCommand(40, b"tail-bytes-here!")],
            version_length=56,
        )
        expected = repro.apply_delta(script, ref)
        crash_sweep(script, ref, expected)

    def test_shrinking_version(self):
        ref = bytes(range(64))
        script = DeltaScript([CopyCommand(32, 0, 20)], version_length=20)
        expected = repro.apply_delta(script, ref)
        crash_sweep(script, ref, expected)

    def test_realistic_delta_sampled_crashes(self, rng):
        ref = rng.randbytes(4_000)
        ver = mutate(ref, rng)
        result = repro.diff_in_place(ref, ver)
        crash_sweep(result.script, ref, ver, stride=97)

    def test_realistic_with_scratch_sampled_crashes(self, rng):
        ref = rng.randbytes(4_000)
        ver = ref[2_000:] + ref[:2_000]
        base = repro.diff(ref, ver)
        result = repro.make_in_place(base, ref, scratch_budget=1 << 14)
        assert result.report.spilled_count >= 1
        crash_sweep(result.script, ref, ver, stride=131)

    def test_multiple_crashes_in_one_update(self, rng):
        ref = rng.randbytes(2_000)
        ver = mutate(ref, rng)
        result = repro.diff_in_place(ref, ver)
        image = apply_with_power_failures(
            result.script, ref, [50, 50, 50, 50, None]
        )
        assert image == ver


class TestCrashResumeProperty:
    """Hypothesis: any crash schedule, any input — resume is exact."""

    @given(
        seed=st.integers(0, 2**31),
        fuels=st.lists(st.integers(0, 600), min_size=0, max_size=6),
        scratch=st.sampled_from([0, 4096]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_crash_schedules(self, seed, fuels, scratch):
        rng = random.Random(seed)
        ref = rng.randbytes(rng.randint(64, 1_500))
        ver = mutate(ref, rng)
        base = repro.diff(ref, ver)
        result = repro.make_in_place(base, ref, scratch_budget=scratch)
        image = apply_with_power_failures(
            result.script, ref, list(fuels) + [None],
            chunk_size=rng.choice([1, 3, 64, 4096]),
        )
        assert image == ver


class TestJournalFootprint:
    def test_journal_stays_small(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        storage = CrashingStorage(ref)
        journal = Journal()
        JournaledApplier(result.script, journal).run(storage)
        # No scratch, and overlaps are cleared after each command: the
        # journal ends at its fixed footprint (progress counter, applied
        # digest, flags and record framing).
        assert journal.size_bytes == 24

    def test_journal_bounded_by_scratch_plus_overlap(self, rng):
        ref = rng.randbytes(3_000)
        ver = ref[1500:] + ref[:1500]
        base = repro.diff(ref, ver)
        result = repro.make_in_place(base, ref, scratch_budget=1 << 14)
        journal = Journal()
        JournaledApplier(result.script, journal).run(CrashingStorage(ref))
        assert journal.size_bytes <= 24 + result.script.scratch_length


class TestDoublePowerCutResume:
    """Satellite coverage: a second power cut *during recovery* must
    still land byte-exact, both at the raw journal layer and through a
    full ``run_journaled_update`` session."""

    def _double_cut(self, script, reference, expected, f1, f2,
                    chunk_size=7):
        """Cut at f1, resume and cut again at f2, then finish clean —
        with every boot resuming from the journal's durable bytes."""
        storage = CrashingStorage(reference, fuel=f1)
        journal = Journal()
        with pytest.raises(PowerFailureError):
            JournaledApplier(script, journal).run(storage,
                                                  chunk_size=chunk_size)
        journal = Journal.from_bytes(journal.to_bytes())
        storage = CrashingStorage(storage.snapshot(), fuel=f2)
        with pytest.raises(PowerFailureError):
            JournaledApplier(script, journal).run(storage,
                                                  chunk_size=chunk_size)
        journal = Journal.from_bytes(journal.to_bytes())
        storage = CrashingStorage(storage.snapshot())
        JournaledApplier(script, journal).run(storage,
                                              chunk_size=chunk_size)
        assert storage.snapshot() == expected

    def test_journal_layer_double_cut_grid(self, rng):
        ref = rng.randbytes(3_000)
        ver = mutate(ref, rng)
        result = repro.diff_in_place(ref, ver)
        probe = CrashingStorage(ref)
        JournaledApplier(result.script, Journal()).run(probe, chunk_size=7)
        total = probe.bytes_written
        for f1 in (0, 1, total // 3, total - 1):
            for f2 in (0, 1, 29):
                self._double_cut(result.script, ref, ver, f1, f2)

    def test_journal_layer_double_cut_with_scratch(self, rng):
        ref = rng.randbytes(3_000)
        ver = ref[1500:] + ref[:1500]
        base = repro.diff(ref, ver)
        result = repro.make_in_place(base, ref, scratch_budget=1 << 14)
        assert result.script.scratch_length > 0
        for f1, f2 in ((3, 5), (500, 40), (2000, 0)):
            self._double_cut(result.script, ref, ver, f1, f2)

    def _session_server(self, size=8192, seed=17):
        from repro.device import UpdateServer

        r = random.Random(seed)
        old = r.randbytes(size)
        new = bytearray(old)
        new[0:1024] = old[2048:3072]
        new[4096:4160] = r.randbytes(64)
        server = UpdateServer()
        server.publish("pkg", old)
        server.publish("pkg", bytes(new))
        return server

    def test_session_survives_two_power_cuts(self):
        from repro.device import get_channel, run_journaled_update
        from repro.faults import FaultPlan

        server = self._session_server()
        # device.power with count=2 cuts the power on boots 1 AND 2;
        # boot 3 runs with unlimited fuel and must finish byte-exact.
        plan = FaultPlan.parse("device.power:count=2:fuel=300", seed=3)
        outcome = run_journaled_update(
            server, get_channel("t1-1.5m"), "pkg", have=0, fault_plan=plan)
        assert outcome.succeeded
        assert outcome.power_cuts == 2
        assert outcome.boots == 3

    def test_session_survives_three_power_cuts(self):
        from repro.device import get_channel, run_journaled_update
        from repro.faults import FaultPlan

        server = self._session_server(seed=23)
        plan = FaultPlan.parse("device.power:count=3:fuel=150", seed=9)
        outcome = run_journaled_update(
            server, get_channel("t1-1.5m"), "pkg", have=0, fault_plan=plan)
        assert outcome.succeeded
        assert outcome.power_cuts == 3
        assert outcome.boots == 4

    def test_double_cut_with_rot_halts_structurally(self):
        from repro.device import get_channel, run_journaled_update
        from repro.faults import FaultPlan

        server = self._session_server(seed=29)
        # Reference rot lands on boot 2, between the two cuts: the
        # resume-integrity gate must halt with a structured corruption
        # report rather than install garbage.
        plan = FaultPlan.parse(
            "device.power:count=2:fuel=300; storage.bitflip:nth=2", seed=5)
        outcome = run_journaled_update(
            server, get_channel("t1-1.5m"), "pkg", have=0, fault_plan=plan)
        assert not outcome.succeeded
        assert outcome.corruption
        assert outcome.failure
        assert outcome.power_cuts >= 1
