"""Unit tests for the version mutators (repro.workloads.mutators)."""

import random

import pytest

from repro.workloads.mutators import (
    CHURN_PROFILE,
    MUTATORS,
    STABLE_PROFILE,
    MutationProfile,
    delete_bytes,
    duplicate_block,
    edit_distance_estimate,
    insert_bytes,
    move_block,
    mutate,
    replace_bytes,
    swap_blocks,
)


class TestIndividualMutators:
    def setup_method(self):
        self.rng = random.Random(11)
        self.data = bytes(range(256)) * 4

    def test_insert_grows(self):
        out = insert_bytes(self.data, self.rng, 32)
        assert len(out) == len(self.data) + 32

    def test_delete_shrinks(self):
        out = delete_bytes(self.data, self.rng, 32)
        assert len(out) == len(self.data) - 32

    def test_delete_never_empties(self):
        out = delete_bytes(b"ab", self.rng, 100)
        assert len(out) >= 1

    def test_replace_preserves_length(self):
        out = replace_bytes(self.data, self.rng, 32)
        assert len(out) == len(self.data)
        assert out != self.data

    def test_move_preserves_multiset(self):
        out = move_block(self.data, self.rng, 64)
        assert len(out) == len(self.data)
        assert sorted(out) == sorted(self.data)

    def test_duplicate_grows(self):
        out = duplicate_block(self.data, self.rng, 48)
        assert len(out) == len(self.data) + 48

    def test_swap_preserves_multiset(self):
        out = swap_blocks(self.data, self.rng, 64)
        assert len(out) == len(self.data)
        assert sorted(out) == sorted(self.data)

    def test_tiny_inputs_survive_everything(self):
        for name, mutator in MUTATORS.items():
            for data in (b"", b"a", b"ab", b"abc"):
                out = mutator(data, self.rng, 10)
                assert isinstance(out, bytes), name


class TestMutate:
    def test_deterministic_given_seed(self):
        data = bytes(range(200)) * 20
        a = mutate(data, random.Random(5))
        b = mutate(data, random.Random(5))
        assert a == b

    def test_changes_bounded(self):
        # The prefix/suffix estimate saturates on early edits, so measure
        # preserved content the way the experiments do: most of the new
        # version must still be copyable from the old one.
        from repro.delta import greedy_delta

        data = bytes(random.Random(1).randbytes(20_000))
        out = mutate(data, random.Random(2))
        assert out != data
        script = greedy_delta(data, out)
        assert script.added_bytes < 0.5 * len(out)

    def test_profiles_scale_churn(self):
        data = bytes(random.Random(1).randbytes(20_000))
        rng_a, rng_b = random.Random(3), random.Random(3)
        churned = mutate(data, rng_a, CHURN_PROFILE)
        stable = mutate(data, rng_b, STABLE_PROFILE)
        assert edit_distance_estimate(data, churned) >= \
            edit_distance_estimate(data, stable)

    def test_edit_count_scales_with_size(self):
        profile = MutationProfile()
        rng = random.Random(4)
        small = profile.edit_count(1_000, rng)
        large = profile.edit_count(1_000_000, rng)
        assert large > small

    def test_structural_cap(self):
        profile = MutationProfile(min_edit=10, max_edit=1000, structural_max_edit=50)
        rng = random.Random(5)
        for _ in range(50):
            assert profile.edit_size("move", rng) <= 50
            assert profile.edit_size("swap", rng) <= 50
        sizes = [profile.edit_size("insert", rng) for _ in range(200)]
        assert max(sizes) > 50


class TestEditDistanceEstimate:
    def test_identical(self):
        assert edit_distance_estimate(b"abc", b"abc") == 0.0

    def test_totally_different(self):
        assert edit_distance_estimate(b"aaaa", b"bbbb") == 1.0

    def test_empty_new(self):
        assert edit_distance_estimate(b"abc", b"") == 0.0

    def test_middle_edit(self):
        est = edit_distance_estimate(b"aaaaXaaaa", b"aaaaYaaaa")
        assert est == pytest.approx(1 / 9)
