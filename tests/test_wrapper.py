"""Tests for the compressed transport envelope (repro.delta.wrapper)."""

import io
import random

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.delta import (
    FORMAT_INPLACE,
    SealedReader,
    encode_delta,
    is_sealed,
    seal,
    unseal,
    version_checksum,
)
from repro.delta.stream import apply_delta_stream, iter_delta_commands
from repro.device import ConstrainedDevice, UpdateServer, get_channel, run_update
from repro.exceptions import DeltaFormatError
from repro.workloads import make_source_file, mutate


class TestSealUnseal:
    def test_round_trip(self):
        payload = b"compressible " * 200
        sealed = seal(payload)
        assert is_sealed(sealed)
        assert len(sealed) < len(payload)
        assert unseal(sealed) == payload

    def test_incompressible_stays_raw(self, rng):
        payload = rng.randbytes(500)
        assert seal(payload) == payload  # wrapping would only grow it

    def test_unseal_passthrough(self):
        assert unseal(b"raw bytes") == b"raw bytes"

    def test_corrupt_stream_rejected(self):
        sealed = bytearray(seal(b"compressible " * 100))
        sealed[10] ^= 0xFF
        with pytest.raises(DeltaFormatError):
            unseal(bytes(sealed))

    def test_length_mismatch_rejected(self):
        sealed = bytearray(seal(b"compressible " * 100))
        sealed[4] ^= 0x01  # tamper with the raw-length varint
        with pytest.raises(DeltaFormatError):
            unseal(bytes(sealed))

    @given(payload=st.binary(min_size=0, max_size=3_000))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, payload):
        assert unseal(seal(payload)) == payload


class TestSealedReader:
    def test_reads_match_payload(self):
        payload = b"0123456789" * 500
        reader = SealedReader(seal(payload))
        out = bytearray()
        while True:
            chunk = reader.read(7)
            if not chunk:
                break
            out += chunk
        assert bytes(out) == payload

    def test_raw_mode(self):
        reader = SealedReader(b"plain payload")
        assert reader.read(5) == b"plain"
        assert reader.read(-1) == b" payload"

    def test_read_all(self):
        payload = b"abc" * 100
        assert SealedReader(seal(payload)).read(-1) == payload

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            SealedReader(b"", chunk=0)

    def test_feeds_streaming_decoder(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        payload = encode_delta(result.script, FORMAT_INPLACE)
        sealed = seal(payload)
        header, commands = iter_delta_commands(SealedReader(sealed))
        assert header.version_length == len(ver)
        buf = bytearray(ref)
        apply_delta_stream(SealedReader(sealed), buf, strict=True)
        assert bytes(buf) == ver


class TestCompressedUpdates:
    @pytest.fixture
    def releases(self):
        # Changelog growth: the new release prepends fresh *text*, so the
        # delta's add data is compressible prose (unlike the random bytes
        # the generic mutators insert).
        import random

        from repro.workloads import make_changelog

        old = make_changelog(random.Random(5), 60_000)
        new = make_changelog(random.Random(5), 240_000)
        return old, new

    def test_compressed_payloads_smaller(self, releases):
        old, new = releases
        plain = UpdateServer()
        compressed = UpdateServer(transport_compress=True)
        for server in (plain, compressed):
            server.publish("pkg", old)
            server.publish("pkg", new)
        for strategy in ("full", "delta", "in-place"):
            raw = plain.build_payload("pkg", 0, 1, strategy)
            sealed = compressed.build_payload("pkg", 0, 1, strategy)
            assert len(sealed) < len(raw), strategy

    @pytest.mark.parametrize("strategy", ["full", "delta", "in-place",
                                          "in-place-stream"])
    def test_all_strategies_accept_sealed_payloads(self, releases, strategy):
        old, new = releases
        server = UpdateServer(transport_compress=True)
        server.publish("pkg", old)
        server.publish("pkg", new)
        device = ConstrainedDevice(old, ram=2 * len(new) + 256 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"), "pkg",
                             have=0, strategy=strategy)
        assert outcome.succeeded, (strategy, outcome.failure)
        assert device.image == new

    def test_streaming_sealed_needs_only_inflate_window(self, releases):
        old, new = releases
        server = UpdateServer(transport_compress=True)
        server.publish("pkg", old)
        server.publish("pkg", new)
        payload = server.build_payload("pkg", 0, 1, "in-place-stream")
        raw_size = len(unseal(payload))
        # RAM: payload is NOT staged; budget covers received bytes +
        # inflate window + stream buffer + copy window, but NOT the raw
        # delta — proving streaming decompression works.
        from repro.delta.wrapper import INFLATE_RAM

        ram = len(payload) + INFLATE_RAM + 512 + 4096 + 1024
        assert ram < len(payload) + raw_size  # the point of the test
        device = ConstrainedDevice(old, ram=ram, copy_window=4096)
        device.apply_delta_streaming(payload)
        assert device.image == new
