"""Unit tests for the three differencing algorithms (repro.delta.*).

Each algorithm must satisfy the round-trip contract (I1 in DESIGN.md) on
every input; the per-algorithm classes then pin down the behaviours that
distinguish them (greedy's longest-match selection, onepass's constant
tables, correcting's backward extension).
"""

import random

import pytest

from repro.core.apply import apply_delta
from repro.core.commands import AddCommand, CopyCommand
from repro.delta import correcting_delta, greedy_delta, onepass_delta
from repro.workloads import mutate

ALL = [greedy_delta, onepass_delta, correcting_delta]


@pytest.mark.parametrize("differ", ALL)
class TestRoundTripContract:
    def test_identical_files(self, differ):
        data = b"identical content here, longer than one seed window."
        script = differ(data, data)
        assert apply_delta(script, data) == data
        # One big copy (possibly after coalescing) should dominate.
        assert script.added_bytes == 0

    def test_empty_version(self, differ):
        script = differ(b"some reference", b"")
        assert apply_delta(script, b"some reference") == b""

    def test_empty_reference(self, differ):
        ver = b"brand new content"
        script = differ(b"", ver)
        assert apply_delta(script, b"") == ver
        assert script.copied_bytes == 0

    def test_disjoint_content(self, differ, rng):
        ref = rng.randbytes(500)
        ver = rng.randbytes(500)
        script = differ(ref, ver)
        assert apply_delta(script, ref) == ver

    def test_insertion(self, differ, rng):
        ref = rng.randbytes(2000)
        ver = ref[:900] + b"INSERTED-PAYLOAD" * 4 + ref[900:]
        script = differ(ref, ver)
        assert apply_delta(script, ref) == ver
        assert script.copied_bytes >= 1500

    def test_deletion(self, differ, rng):
        ref = rng.randbytes(2000)
        ver = ref[:600] + ref[1000:]
        script = differ(ref, ver)
        assert apply_delta(script, ref) == ver
        assert script.copied_bytes >= 1200

    def test_short_inputs(self, differ):
        for ref, ver in [(b"a", b"b"), (b"", b"x"), (b"ab", b"ab"), (b"abc", b"")]:
            assert apply_delta(differ(ref, ver), ref) == ver

    def test_mutated_corpus_files(self, differ, rng):
        ref = rng.randbytes(5000)
        for _ in range(3):
            ver = mutate(ref, rng)
            script = differ(ref, ver)
            script.validate(reference_length=len(ref))
            assert apply_delta(script, ref) == ver

    def test_write_intervals_tile_version(self, differ, sample_pair):
        ref, ver = sample_pair
        script = differ(ref, ver)
        cursor = 0
        for cmd in script.commands:
            assert cmd.write_interval.start == cursor
            cursor = cmd.write_interval.stop + 1
        assert cursor == len(ver)

    def test_bad_seed_length(self, differ):
        with pytest.raises(ValueError):
            differ(b"abc", b"abc", seed_length=0)


class TestGreedySpecifics:
    def test_picks_longest_candidate(self):
        # Reference holds a short and a long occurrence of the version
        # prefix; greedy must copy from the long one.
        common = bytes(range(16))
        long_match = common + b"0123456789"
        ref = common + b"ZZZZ" + long_match
        ver = long_match
        script = greedy_delta(ref, ver)
        copies = script.copies()
        assert copies[0].length == len(long_match)
        assert copies[0].src == len(common) + 4

    def test_transposed_blocks_fully_copied(self, rng):
        # Greedy indexes the whole reference, so a transposition costs
        # nothing in added bytes.
        a, b = rng.randbytes(600), rng.randbytes(600)
        script = greedy_delta(a + b, b + a)
        assert script.added_bytes == 0

    def test_max_candidates_still_correct(self, rng):
        ref = (b"\x01\x02\x03\x04" * 400)
        ver = ref[100:500] + b"tail"
        script = greedy_delta(ref, ver, max_candidates=2)
        assert apply_delta(script, ref) == ver


class TestOnepassSpecifics:
    def test_constant_table_size_respected(self, rng):
        ref = rng.randbytes(3000)
        ver = mutate(ref, rng)
        script = onepass_delta(ref, ver, table_size=128)
        assert apply_delta(script, ref) == ver

    def test_symmetric_detection(self, rng):
        # A match the version cursor reaches *before* the reference cursor
        # (late reference data matching early version data) is found via
        # the version table.
        tail = rng.randbytes(800)
        ref = rng.randbytes(800) + tail
        ver = tail + rng.randbytes(100)
        script = onepass_delta(ref, ver)
        assert apply_delta(script, ref) == ver
        assert script.copied_bytes >= 700

    @pytest.mark.parametrize("table_size", [0, -1, -64])
    def test_invalid_table_size_rejected(self, rng, table_size):
        ref = rng.randbytes(100)
        with pytest.raises(ValueError):
            onepass_delta(ref, mutate(ref, rng), table_size=table_size)

    def test_misses_transposition_that_greedy_finds(self, rng):
        # The documented compression trade of the one-pass algorithm:
        # after both cursors pass a region, matches into it are lost.
        a, b = rng.randbytes(2000), rng.randbytes(2000)
        one = onepass_delta(a + b, b + a)
        greedy = greedy_delta(a + b, b + a)
        assert apply_delta(one, a + b) == b + a
        assert one.added_bytes >= greedy.added_bytes


class TestCorrectingSpecifics:
    def test_backward_extension_recovers_prefix(self, rng):
        # Plant a long common string whose only surviving seed hash sits
        # mid-string: the 1.5-pass algorithm must extend backwards over
        # pending literals to recover the front of the match.
        common = rng.randbytes(1000)
        ref = common
        ver = b"N" * 7 + common  # 7-byte novel prefix, then the match
        script = correcting_delta(ref, ver, seed_length=16)
        assert apply_delta(script, ref) == ver
        copies = script.copies()
        assert copies, "expected the common string to be copied"
        # Backward extension means the copy starts at version offset 7,
        # not at the first seed boundary after it.
        assert copies[0].dst == 7
        assert copies[0].length == 1000

    def test_constant_space_table(self, rng):
        ref = rng.randbytes(4000)
        ver = mutate(ref, rng)
        script = correcting_delta(ref, ver, table_size=64)
        assert apply_delta(script, ref) == ver

    @pytest.mark.parametrize("table_size", [0, -1, -64])
    def test_invalid_table_size_rejected(self, rng, table_size):
        ref = rng.randbytes(100)
        with pytest.raises(ValueError):
            correcting_delta(ref, mutate(ref, rng), table_size=table_size)

    def test_compression_close_to_greedy_on_edits(self, rng):
        ref = rng.randbytes(6000)
        ver = mutate(ref, rng)
        corr = correcting_delta(ref, ver)
        greedy = greedy_delta(ref, ver)
        # Correction should land within 25% of greedy's added bytes on
        # plain edit workloads (no transpositions stressed here).
        assert corr.added_bytes <= max(greedy.added_bytes * 1.25,
                                       greedy.added_bytes + 64)
