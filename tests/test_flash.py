"""Tests for the erase-block flash model (repro.device.flash)."""

import pytest

import repro
from repro.device.flash import (
    FlashArray,
    WearLimitExceeded,
    full_reprogram,
    measure_update_wear,
)
from repro.workloads import mutate


class TestFlashArray:
    def test_reads_are_free(self):
        flash = FlashArray(b"abcdefgh", block_size=4)
        assert flash[0] == ord("a")
        assert bytes(flash[2:6]) == b"cdef"
        assert flash.wear().total_erases == 0

    def test_sequential_writes_one_erase_per_block(self):
        flash = FlashArray(bytes(16), block_size=4)
        flash[0:16] = bytes(range(1, 17))
        wear = flash.wear()
        assert wear.total_erases == 4
        assert wear.blocks_touched == 4
        assert flash.image() == bytes(range(1, 17))

    def test_writes_within_one_block_share_an_erase(self):
        flash = FlashArray(bytes(8), block_size=8)
        flash[0] = 1
        flash[3] = 2
        flash[7] = 3
        assert flash.wear().total_erases == 1

    def test_alternating_blocks_cost_per_switch(self):
        flash = FlashArray(bytes(16), block_size=8)
        flash[0] = 1   # block 0
        flash[8] = 2   # flush 0, buffer 1
        flash[1] = 3   # flush 1, buffer 0
        flash[9] = 4   # flush 0, buffer 1
        assert flash.wear().total_erases == 4

    def test_identical_write_is_free(self):
        flash = FlashArray(b"same data bytes!", block_size=8)
        flash[0:16] = b"same data bytes!"
        assert flash.wear().total_erases == 0

    def test_endurance_enforced(self):
        flash = FlashArray(bytes(8), block_size=8, endurance=2)
        for value in (1, 2):
            flash[0] = value
            flash.flush()
        flash[0] = 3
        with pytest.raises(WearLimitExceeded):
            flash.flush()

    def test_growth_and_truncation(self):
        flash = FlashArray(b"abcd", block_size=4)
        flash.extend(b"\x00" * 4)
        flash[4:8] = b"efgh"
        assert flash.image() == b"abcdefgh"
        del flash[6:]
        assert flash.image() == b"abcdef"

    def test_strided_writes_rejected(self):
        flash = FlashArray(bytes(8), block_size=4)
        with pytest.raises(ValueError):
            flash[0:8:2] = b"abcd"

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            FlashArray(b"", block_size=0)


class TestFullReprogram:
    def test_rewrites_changed_blocks_only(self):
        old = bytes(64)
        new = bytearray(old)
        new[5] = 0xFF  # one byte in block 0
        flash = FlashArray(old, block_size=16)
        full_reprogram(flash, bytes(new))
        wear = flash.wear()
        assert flash.image() == bytes(new)
        assert wear.total_erases == 1  # identical blocks skipped

    def test_grows_and_shrinks(self):
        flash = FlashArray(b"abcd", block_size=4)
        full_reprogram(flash, b"abcdefgh")
        assert flash.image() == b"abcdefgh"
        full_reprogram(flash, b"ab")
        assert flash.image() == b"ab"


class TestMeasureUpdateWear:
    def test_localized_edit_touches_few_blocks(self, rng):
        ref = rng.randbytes(64 * 1024)
        ver = ref[:30_000] + b"PATCHED-REGION!!" + ref[30_016:]
        result = repro.diff_in_place(ref, ver)
        delta_wear, full_wear = measure_update_wear(
            ref, ver, result.script, block_size=4096
        )
        assert delta_wear.blocks_touched <= 2
        assert delta_wear.total_erases <= full_wear.total_erases + 1

    def test_verifies_output(self, rng):
        ref = rng.randbytes(8_192)
        ver = mutate(ref, rng)
        result = repro.diff_in_place(ref, ver)
        delta_wear, full_wear = measure_update_wear(
            ref, ver, result.script, block_size=1024
        )
        assert delta_wear.block_size == 1024
        assert full_wear.total_erases >= 1

    def test_wear_stats_fields(self):
        from repro.device.flash import WearStats

        stats = WearStats(4096, [0, 3, 1, 0])
        assert stats.total_erases == 4
        assert stats.blocks_touched == 2
        assert stats.max_erases == 3
        assert WearStats(4096, []).max_erases == 0
