"""Unit tests for streaming delta decoding (repro.delta.stream)."""

import io

import pytest

import repro
from repro.core.apply import apply_delta, apply_in_place
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.delta import (
    ALL_FORMATS,
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    correcting_delta,
    encode_delta,
    version_checksum,
)
from repro.delta.stream import apply_delta_stream, iter_delta_commands, read_header
from repro.exceptions import DeltaFormatError, WriteBeforeReadError


def sample_script() -> DeltaScript:
    return DeltaScript(
        [CopyCommand(100, 0, 40), AddCommand(40, b"A" * 300), CopyCommand(0, 340, 30)],
        version_length=370,
    )


class TestIterCommands:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_matches_batch_decoder(self, fmt):
        from repro.delta import decode_delta

        payload = encode_delta(sample_script(), fmt)
        batch, batch_header = decode_delta(payload)
        header, stream_commands = iter_delta_commands(payload)
        assert header == batch_header
        assert list(stream_commands) == batch.commands

    def test_accepts_file_object(self):
        payload = encode_delta(sample_script(), FORMAT_INPLACE)
        header, commands = iter_delta_commands(io.BytesIO(payload))
        assert header.version_length == 370
        assert len(list(commands)) == 4  # 40-copy, 255-add, 45-add, 30-copy

    def test_lazy_parsing(self):
        # Only the header is consumed until the iterator is advanced.
        payload = encode_delta(sample_script(), FORMAT_INPLACE)
        stream = io.BytesIO(payload)
        iter_delta_commands(stream)
        assert stream.tell() < 20

    def test_truncated_stream(self):
        payload = encode_delta(sample_script(), FORMAT_INPLACE)
        header, commands = iter_delta_commands(payload[:-8])
        with pytest.raises(DeltaFormatError):
            list(commands)

    def test_bad_magic(self):
        with pytest.raises(DeltaFormatError):
            iter_delta_commands(b"JUNKJUNKJUNK")

    def test_read_header(self):
        payload = encode_delta(sample_script(), FORMAT_SEQUENTIAL,
                               version_crc32=123)
        header = read_header(io.BytesIO(payload))
        assert header.format == FORMAT_SEQUENTIAL
        assert header.version_crc32 == 123


class TestApplyStream:
    def test_equivalent_to_in_place_apply(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        payload = encode_delta(result.script, FORMAT_INPLACE)

        via_stream = bytearray(ref)
        apply_delta_stream(payload, via_stream, strict=True)
        assert bytes(via_stream) == ver

    def test_strict_rejects_conflicts(self):
        conflicting = DeltaScript(
            [CopyCommand(4, 0, 2), CopyCommand(0, 2, 2)], version_length=4
        )
        payload = encode_delta(conflicting, FORMAT_INPLACE)
        with pytest.raises(WriteBeforeReadError):
            apply_delta_stream(payload, bytearray(b"012345"), strict=True)

    def test_growing_and_shrinking(self, rng):
        ref = rng.randbytes(2_000)
        for ver in (ref[:500], ref + rng.randbytes(800)):
            script = correcting_delta(ref, ver)
            converted = repro.make_in_place(script, ref).script
            payload = encode_delta(converted, FORMAT_INPLACE)
            buf = bytearray(ref)
            apply_delta_stream(payload, buf, strict=True)
            assert bytes(buf) == ver

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            apply_delta_stream(b"", bytearray(), chunk_size=0)


class TestDeviceStreaming:
    def test_ram_below_payload_size(self, rng):
        from repro.device import ConstrainedDevice
        from repro.workloads import make_binary_blob, mutate

        ref = make_binary_blob(rng, 60_000)
        ver = mutate(ref, rng)
        result = repro.diff_in_place(ref, ver)
        payload = encode_delta(result.script, FORMAT_INPLACE,
                               version_crc32=version_checksum(ver))
        # RAM too small to stage the payload, but enough for streaming.
        device = ConstrainedDevice(ref, ram=2048, copy_window=1024)
        assert len(payload) > device.ram.budget - 1024
        device.apply_delta_streaming(payload)
        assert device.image == ver
        assert device.ram.peak <= 1024 + 512

    def test_update_session_streaming_strategy(self, sample_pair):
        import random

        from repro.device import ConstrainedDevice, UpdateServer, get_channel, run_update

        ref, ver = sample_pair
        server = UpdateServer()
        server.publish("pkg", ref)
        server.publish("pkg", ver)
        device = ConstrainedDevice(ref, ram=2048, copy_window=1024)
        outcome = run_update(server, device, get_channel("modem-56k"), "pkg",
                             have=0, strategy="in-place-stream")
        assert outcome.succeeded, outcome.failure
        assert device.image == ver
