"""Tests for the one-shot evaluation report (repro.analysis.report)."""

import pytest

from repro.analysis.report import EvaluationReport, generate_report


class TestEvaluationReport:
    def test_sections_render_in_order(self):
        report = EvaluationReport()
        report.add("First", "alpha")
        report.add("Second", "beta")
        text = report.render()
        assert text.index("First") < text.index("Second")
        assert "alpha" in text and "beta" in text

    def test_header_mentions_paper(self):
        assert "PODC 1998" in EvaluationReport().render()


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(scale=0.08, packages=2, releases=2)

    def test_all_sections_present(self, report):
        text = report.render()
        for marker in ("Table 1", "Section 7", "Figure 2", "Figure 3",
                       "compression factors"):
            assert marker in text, marker

    def test_paper_numbers_quoted(self, report):
        text = report.render()
        assert "15.3%" in text          # Table 1 headline
        assert "0.56" in text           # runtime ratio
        assert "factor of 4 to 10" in text

    def test_figure_sections_verified_internally(self, report):
        # generate_report asserts Figure 2 costs and Lemma 1 equality
        # while building; reaching here means those held.
        assert report.seconds > 0

    def test_deterministic_given_seed(self):
        a = generate_report(scale=0.08, packages=2, releases=2, seed=3)
        b = generate_report(scale=0.08, packages=2, releases=2, seed=3)
        # Timing lines differ; compare everything else.
        strip = lambda r: "\n".join(
            line for line in r.render().splitlines()
            if "generated in" not in line and "runtime" not in line
            and "conversion/compression" not in line
            and "worst per-input" not in line
        )
        assert strip(a) == strip(b)
