"""Unit tests for the Figure 2/3 constructions (repro.analysis.adversarial)."""

import pytest

from repro.analysis.adversarial import (
    figure2_case,
    figure2_expected_costs,
    figure3_case,
    figure3_expected_edges,
    rotation_medley,
    rotation_script,
)
from repro.core.apply import apply_delta
from repro.core.crwi import build_crwi_digraph


class TestFigure2:
    @pytest.mark.parametrize("depth", [1, 2, 3, 5])
    def test_digraph_is_tree_plus_leaf_root_edges(self, depth):
        case = figure2_case(depth)
        graph = build_crwi_digraph(case.script)
        nodes = 2 ** (depth + 1) - 1
        leaves = 2 ** depth
        assert graph.vertex_count == nodes
        # Tree edges: every internal node to its two children; plus one
        # back edge per leaf.
        assert graph.edge_count == (nodes - leaves) * 2 + leaves
        # Every leaf points at the root (vertex 0: lowest write offset).
        first_leaf = 2 ** depth - 1
        for leaf in range(first_leaf, nodes):
            assert graph.successors[leaf] == [0]

    def test_script_is_structurally_valid(self):
        case = figure2_case(3)
        case.script.validate(reference_length=len(case.reference))

    def test_expected_costs(self):
        local, optimal = figure2_expected_costs(3)
        assert local == 8 * 4
        assert optimal == 6

    def test_applies_correctly(self):
        case = figure2_case(2)
        version = apply_delta(case.script, case.reference)
        assert len(version) == case.script.version_length

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            figure2_case(0)

    def test_lengths_too_small(self):
        with pytest.raises(ValueError):
            figure2_case(2, leaf_length=1, internal_length=1)


class TestFigure3:
    @pytest.mark.parametrize("block", [2, 4, 8, 16, 32])
    def test_edge_count_exactly_l(self, block):
        case = figure3_case(block)
        graph = build_crwi_digraph(case.script)
        assert graph.edge_count == figure3_expected_edges(block) == block * block
        # Lemma 1: never above the version length.
        assert graph.edge_count <= case.script.version_length

    def test_quadratic_in_commands(self):
        case = figure3_case(20)
        commands = len(case.script.commands)
        graph = build_crwi_digraph(case.script)
        assert commands == 2 * 20 - 1
        assert graph.edge_count >= (commands // 2) ** 2

    def test_script_valid_and_applies(self):
        case = figure3_case(6)
        case.script.validate(reference_length=len(case.reference))
        version = apply_delta(case.script, case.reference)
        # Blocks 1..B-1 of the version equal reference block 0.
        assert version[6:12] == case.reference[0:6]
        assert version[30:36] == case.reference[0:6]

    def test_bad_block(self):
        with pytest.raises(ValueError):
            figure3_case(1)


class TestRotations:
    def test_single_cycle(self):
        case = rotation_script(16, 8)
        graph = build_crwi_digraph(case.script)
        assert graph.vertex_count == 8
        assert graph.edge_count == 8
        assert not graph.is_acyclic()
        # Removing any single vertex makes it acyclic.
        assert graph.without_vertices([3]).is_acyclic()

    def test_rotation_applies(self):
        case = rotation_script(4, 3)
        version = apply_delta(case.script, case.reference)
        r = case.reference
        assert version == r[4:8] + r[8:12] + r[0:4]

    def test_medley_disjoint_cycles(self):
        case = rotation_medley(8, [2, 3, 5])
        graph = build_crwi_digraph(case.script)
        assert graph.vertex_count == 10
        assert graph.edge_count == 10
        assert case.planted_cycles == 3

    def test_medley_rejects_short_cycles(self):
        with pytest.raises(ValueError):
            rotation_medley(8, [2, 1])

    def test_rotation_args_validated(self):
        with pytest.raises(ValueError):
            rotation_script(0, 5)
        with pytest.raises(ValueError):
            rotation_script(4, 1)
