"""The ``repro.perf`` subsystem: recorder, bench artifacts, compare gate."""

from __future__ import annotations

import json

import pytest

from repro import perf
from repro.perf.bench import SCHEMA, bench_pair, build_suite, run_bench, run_op
from repro.perf.compare import (
    compare_artifacts,
    load_artifacts,
    main as compare_main,
    parse_min_speedup,
    render,
)
from repro.delta import correcting_delta, greedy_delta


# ---------------------------------------------------------------------------
# Recorder semantics
# ---------------------------------------------------------------------------

def test_recorder_off_by_default():
    assert perf.active() is None
    perf.add("nobody.listening", 5)  # must be a silent no-op
    assert perf.active() is None


def test_recording_collects_and_restores():
    with perf.recording() as recorder:
        assert perf.active() is recorder
        perf.add("x")
        perf.add("x", 2)
        perf.add("y", 0.5)
    assert perf.active() is None
    assert recorder.counters == {"x": 3, "y": 0.5}


def test_recording_nests():
    with perf.recording() as outer:
        perf.add("level", 1)
        with perf.recording() as inner:
            assert perf.active() is inner
            perf.add("level", 10)
        assert perf.active() is outer
        perf.add("level", 1)
    assert outer.get("level") == 2
    assert inner.get("level") == 10


def test_recorder_merge_and_clear():
    recorder = perf.PerfRecorder()
    recorder.add("a")
    recorder.merge({"a": 2, "b": 7})
    assert recorder.get("a") == 3
    assert recorder.get("b") == 7
    assert recorder.get("missing", -1) == -1
    recorder.clear()
    assert recorder.counters == {}


def test_timer_records_seconds_and_calls():
    with perf.recording() as recorder:
        with perf.timer("stage"):
            pass
        with perf.timer("stage"):
            pass
    counters = recorder.counters
    assert counters["stage.calls"] == 2
    assert counters["stage.seconds"] >= 0
    # Off: timer must not raise and must record nothing anywhere.
    with perf.timer("stage"):
        pass


def test_differs_report_counters():
    reference, version = bench_pair(size=20000)
    with perf.recording() as recorder:
        greedy_delta(reference, version)
        correcting_delta(reference, version)
    counters = recorder.counters
    assert counters["diff.greedy.calls"] == 1
    assert counters["diff.correcting.calls"] == 1
    assert counters["diff.greedy.version_bytes"] == len(version)
    assert "diff.greedy.seconds" in counters


# ---------------------------------------------------------------------------
# Bench runner artifacts
# ---------------------------------------------------------------------------

def test_quick_suite_is_a_subset():
    quick = {op.name for op in build_suite(quick=True)}
    full = {op.name for op in build_suite(quick=False)}
    assert quick and quick < full


def test_run_op_artifact_shape():
    op = next(op for op in build_suite(quick=True)
              if op.name == "apply_two_space_256k")
    artifact = run_op(op, repeats=1)
    assert artifact["schema"] == SCHEMA
    assert artifact["name"] == "apply_two_space_256k"
    assert artifact["wall_seconds"] > 0
    assert artifact["throughput_mb_s"] > 0
    assert artifact["meta"]["oracle_identical"] is True
    json.dumps(artifact)  # must be serializable as-is


def test_run_bench_writes_artifacts(tmp_path):
    written = run_bench(str(tmp_path), quick=True, repeats=1,
                        ops=["apply_two_space"], echo=lambda line: None)
    assert len(written) == 1
    artifact = json.loads(written[0].read_text())
    assert written[0].name == "BENCH_apply_two_space_256k.json"
    assert artifact["schema"] == SCHEMA
    loaded = load_artifacts(str(tmp_path))
    assert set(loaded) == {"apply_two_space_256k"}


def test_run_bench_no_fast_skips_oracle(tmp_path):
    written = run_bench(str(tmp_path), quick=True, repeats=1, fast=False,
                        ops=["apply_two_space"], echo=lambda line: None)
    artifact = json.loads(written[0].read_text())
    assert artifact["meta"]["fast_paths"] is False
    assert artifact["meta"]["oracle_identical"] is None


# ---------------------------------------------------------------------------
# Regression compare
# ---------------------------------------------------------------------------

def _artifact(name, mb_s):
    return {"schema": SCHEMA, "name": name, "throughput_mb_s": mb_s}


def test_compare_passes_within_threshold():
    results = compare_artifacts(
        {"op": _artifact("op", 100.0)}, {"op": _artifact("op", 90.0)},
        threshold=0.15)
    assert [r.ok for r in results] == [True]


def test_compare_fails_on_regression():
    results = compare_artifacts(
        {"op": _artifact("op", 100.0)}, {"op": _artifact("op", 80.0)},
        threshold=0.15)
    assert [r.ok for r in results] == [False]
    assert "0.80x" in results[0].detail


def test_compare_min_speedup_gate():
    baseline = {"op": _artifact("op", 10.0)}
    met = compare_artifacts(baseline, {"op": _artifact("op", 35.0)},
                            min_speedup={"op": 3.0})
    missed = compare_artifacts(baseline, {"op": _artifact("op", 25.0)},
                               min_speedup={"op": 3.0})
    assert met[0].ok and not missed[0].ok


def test_compare_missing_artifact_rules():
    baseline = {"a": _artifact("a", 1.0)}
    current = {"b": _artifact("b", 1.0)}
    results = {r.name: r for r in compare_artifacts(baseline, current)}
    # One-sided artifacts are reported but cannot fail the gate...
    assert results["a"].ok and results["b"].ok
    # ...unless a --min-speedup names them: a typo must not pass silently.
    gated = {r.name: r for r in compare_artifacts(
        baseline, current, min_speedup={"a": 2.0, "typo": 2.0})}
    assert not gated["a"].ok
    assert not gated["typo"].ok


def test_parse_min_speedup():
    assert parse_min_speedup(["x=3.0", "y=1.5"]) == {"x": 3.0, "y": 1.5}
    with pytest.raises(Exception):
        parse_min_speedup(["nonsense"])


def test_compare_cli_end_to_end(tmp_path, capsys):
    base_dir = tmp_path / "base"
    cur_dir = tmp_path / "cur"
    for directory, mb_s in ((base_dir, 10.0), (cur_dir, 40.0)):
        directory.mkdir()
        (directory / "BENCH_op.json").write_text(
            json.dumps(_artifact("op", mb_s)))
    assert compare_main([str(base_dir), str(cur_dir)]) == 0
    assert compare_main([str(base_dir), str(cur_dir),
                         "--min-speedup", "op=3.0"]) == 0
    assert compare_main([str(base_dir), str(cur_dir),
                         "--min-speedup", "op=5.0"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "PASS" in out


def test_load_artifacts_rejects_foreign_schema(tmp_path):
    (tmp_path / "BENCH_x.json").write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(ValueError):
        load_artifacts(str(tmp_path))
    with pytest.raises(FileNotFoundError):
        load_artifacts(str(tmp_path / "empty"))


def test_render_lists_every_artifact():
    results = compare_artifacts(
        {"a": _artifact("a", 2.0)}, {"a": _artifact("a", 2.0)})
    table = render(results)
    assert "a" in table and "PASS" in table
