"""Unit tests for the in-place conversion algorithm (repro.core.convert)."""

import random

import pytest

from repro.analysis.adversarial import figure2_case, figure3_case, rotation_script
from repro.core.apply import apply_delta, apply_in_place
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.convert import compare_policies, make_in_place
from repro.core.verify import adds_are_last, is_in_place_safe
from repro.delta import correcting_delta, greedy_delta, onepass_delta
from repro.exceptions import ReproError
from repro.workloads import mutate

POLICIES = ("constant", "local-min", "max-out-degree", "greedy-global")


def swap_script() -> DeltaScript:
    """A block swap: the canonical unavoidable 2-cycle."""
    return DeltaScript(
        [CopyCommand(4, 0, 4), CopyCommand(0, 4, 4)], version_length=8
    )


class TestMakeInPlace:
    def test_already_safe_script_untouched_commands(self):
        script = DeltaScript(
            [CopyCommand(0, 2, 2), CopyCommand(4, 0, 2)], version_length=4
        )
        result = make_in_place(script)  # no reference needed: no evictions
        assert result.report.evicted_count == 0
        assert is_in_place_safe(result.script)
        assert sorted(result.script.commands, key=lambda c: c.dst) == \
            sorted(script.commands, key=lambda c: c.dst)

    def test_reorders_conflicting_copies(self):
        # Conflicting order in, safe order out, nothing evicted.
        script = DeltaScript(
            [CopyCommand(4, 0, 2), CopyCommand(0, 2, 2)], version_length=4
        )
        result = make_in_place(script)
        assert result.report.evicted_count == 0
        assert is_in_place_safe(result.script)

    def test_swap_needs_one_eviction(self):
        result = make_in_place(swap_script(), b"01234567")
        assert result.report.evicted_count == 1
        assert result.report.cycles_found == 1
        assert is_in_place_safe(result.script)

    def test_eviction_without_reference_raises(self):
        with pytest.raises(ReproError):
            make_in_place(swap_script())

    def test_adds_moved_to_end(self):
        script = DeltaScript(
            [AddCommand(0, b"ab"), CopyCommand(0, 2, 2), AddCommand(4, b"cd")],
            version_length=6,
        )
        result = make_in_place(script)
        assert adds_are_last(result.script)

    def test_output_equivalent_to_input(self):
        rng = random.Random(42)
        ref = rng.randbytes(3_000)
        ver = mutate(ref, rng)
        script = correcting_delta(ref, ver)
        expected = apply_delta(script, ref)
        assert expected == ver
        for policy in POLICIES:
            result = make_in_place(script, ref, policy=policy)
            buf = bytearray(ref)
            apply_in_place(result.script, buf, strict=True)
            assert bytes(buf) == ver, policy

    def test_report_accounting(self):
        result = make_in_place(swap_script(), b"01234567")
        report = result.report
        assert report.copies_in == 2
        assert report.copies_out == 1
        assert report.adds_in == 0
        assert report.adds_out == 1
        assert report.evicted_bytes == 4
        assert report.crwi_vertices == 2
        assert report.crwi_edges == 2
        assert report.seconds >= 0.0

    def test_size_growth_matches_eviction_cost(self):
        # Converted script's added bytes grow by exactly the evicted bytes.
        script = swap_script()
        result = make_in_place(script, b"01234567")
        assert result.script.added_bytes == script.added_bytes + result.report.evicted_bytes
        assert result.script.copied_bytes == script.copied_bytes - result.report.evicted_bytes

    def test_version_length_preserved(self):
        result = make_in_place(swap_script(), b"01234567")
        assert result.script.version_length == 8

    def test_custom_policy_instance(self):
        from repro.core.policies import LocallyMinimumPolicy

        result = make_in_place(swap_script(), b"01234567",
                               policy=LocallyMinimumPolicy())
        assert result.report.policy == "local-min"

    def test_offset_encoding_size_changes_cost(self):
        big = DeltaScript(
            [CopyCommand(100, 0, 100), CopyCommand(0, 100, 100)],
            version_length=200,
        )
        ref = bytes(200)
        small_f = make_in_place(big, ref, offset_encoding_size=2)
        large_f = make_in_place(big, ref, offset_encoding_size=50)
        assert small_f.report.eviction_cost > large_f.report.eviction_cost


class TestPolicyComparison:
    def test_compare_policies_runs_all(self):
        results = compare_policies(swap_script(), b"01234567")
        assert [r.report.policy for r in results] == ["constant", "local-min"]

    def test_local_min_beats_constant_on_figure2(self):
        # On the Figure 2 adversary both per-cycle policies evict all the
        # leaves, but on a simple asymmetric 2-cycle local-min must win.
        script = DeltaScript(
            [CopyCommand(100, 0, 100), CopyCommand(0, 100, 10)],
            version_length=200,
        )
        # vertex 0 writes [0,99], reads [100,199]; vertex 1 writes
        # [100,109], reads [0,9]: mutual conflict, costs 96 vs 6.
        ref = bytes(200)
        constant, local = compare_policies(script, ref)
        assert local.report.eviction_cost <= constant.report.eviction_cost
        assert local.report.eviction_cost == 6

    def test_optimal_policy_on_figure2(self):
        case = figure2_case(3)
        version = apply_delta(case.script, case.reference)
        result = make_in_place(case.script, case.reference, policy="optimal")
        assert result.report.evicted_count == 1
        buf = bytearray(case.reference)
        apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == version


class TestAdversarialEndToEnd:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_figure3(self, policy):
        case = figure3_case(10)
        version = apply_delta(case.script, case.reference)
        result = make_in_place(case.script, case.reference, policy=policy)
        buf = bytearray(case.reference)
        apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == version

    def test_rotation_single_eviction(self):
        case = rotation_script(32, 12)
        result = make_in_place(case.script, case.reference, policy="local-min")
        assert result.report.evicted_count == 1
        assert result.report.cycles_found == 1


class TestAllDifferencers:
    @pytest.mark.parametrize("differ", [greedy_delta, onepass_delta, correcting_delta])
    @pytest.mark.parametrize("policy", ["constant", "local-min"])
    def test_full_pipeline(self, differ, policy, sample_pair):
        ref, ver = sample_pair
        script = differ(ref, ver)
        result = make_in_place(script, ref, policy=policy)
        assert is_in_place_safe(result.script)
        assert adds_are_last(result.script)
        buf = bytearray(ref)
        apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == ver
