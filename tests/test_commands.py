"""Unit tests for repro.core.commands."""

import pytest

from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.intervals import Interval
from repro.exceptions import (
    DeltaRangeError,
    IncompleteCoverError,
    OverlappingWriteError,
)


class TestCopyCommand:
    def test_intervals(self):
        cmd = CopyCommand(src=5, dst=20, length=10)
        assert cmd.read_interval == Interval(5, 14)
        assert cmd.write_interval == Interval(20, 29)

    def test_rejects_bad_fields(self):
        with pytest.raises(DeltaRangeError):
            CopyCommand(-1, 0, 5)
        with pytest.raises(DeltaRangeError):
            CopyCommand(0, -2, 5)
        with pytest.raises(DeltaRangeError):
            CopyCommand(0, 0, 0)

    def test_self_overlapping(self):
        assert CopyCommand(0, 5, 10).self_overlapping
        assert CopyCommand(5, 0, 10).self_overlapping
        assert not CopyCommand(0, 10, 10).self_overlapping

    def test_conflicts_with(self):
        # i writes [20,29]; j reads [25,34] -> conflict.
        i = CopyCommand(0, 20, 10)
        j = CopyCommand(25, 100, 10)
        assert i.conflicts_with(j)
        assert not j.conflicts_with(i)  # j writes [100,109], i reads [0,9]

    def test_to_add(self):
        ref = bytes(range(100))
        cmd = CopyCommand(src=10, dst=50, length=4)
        add = cmd.to_add(ref)
        assert add.dst == 50
        assert add.data == bytes([10, 11, 12, 13])

    def test_to_add_out_of_range(self):
        with pytest.raises(DeltaRangeError):
            CopyCommand(src=98, dst=0, length=5).to_add(bytes(100))


class TestAddCommand:
    def test_basics(self):
        add = AddCommand(7, b"abc")
        assert add.length == 3
        assert add.write_interval == Interval(7, 9)

    def test_rejects_empty_data(self):
        with pytest.raises(DeltaRangeError):
            AddCommand(0, b"")

    def test_rejects_negative_offset(self):
        with pytest.raises(DeltaRangeError):
            AddCommand(-1, b"x")


class TestDeltaScript:
    def make(self):
        return DeltaScript(
            [CopyCommand(0, 0, 4), AddCommand(4, b"XY"), CopyCommand(10, 6, 4)],
            version_length=10,
        )

    def test_views(self):
        script = self.make()
        assert len(script) == 3
        assert len(script.copies()) == 2
        assert len(script.adds()) == 1
        assert script.copied_bytes == 8
        assert script.added_bytes == 2

    def test_from_commands_infers_length(self):
        script = DeltaScript.from_commands([CopyCommand(0, 5, 5)])
        assert script.version_length == 10

    def test_stats(self):
        stats = self.make().stats()
        assert stats["commands"] == 3
        assert stats["copies"] == 2
        assert stats["adds"] == 1
        assert stats["version_length"] == 10

    def test_validate_ok(self):
        self.make().validate(reference_length=20)

    def test_validate_overlapping_writes(self):
        script = DeltaScript(
            [CopyCommand(0, 0, 5), CopyCommand(0, 4, 5)], version_length=9
        )
        with pytest.raises(OverlappingWriteError):
            script.validate(require_cover=False)

    def test_validate_write_out_of_version(self):
        script = DeltaScript([CopyCommand(0, 8, 5)], version_length=10)
        with pytest.raises(DeltaRangeError):
            script.validate(require_cover=False)

    def test_validate_read_out_of_reference(self):
        script = DeltaScript([CopyCommand(18, 0, 5)], version_length=5)
        with pytest.raises(DeltaRangeError):
            script.validate(reference_length=20)

    def test_validate_incomplete_cover(self):
        script = DeltaScript([CopyCommand(0, 0, 4)], version_length=10)
        with pytest.raises(IncompleteCoverError) as excinfo:
            script.validate()
        assert excinfo.value.gaps == [(4, 10)]

    def test_validate_cover_not_required(self):
        DeltaScript([CopyCommand(0, 0, 4)], version_length=10).validate(
            require_cover=False
        )

    def test_is_valid(self):
        assert self.make().is_valid(reference_length=20)
        bad = DeltaScript([CopyCommand(0, 0, 4)], version_length=10)
        assert not bad.is_valid()

    def test_in_write_order(self):
        script = self.make()
        shuffled = DeltaScript(list(reversed(script.commands)), 10)
        ordered = shuffled.in_write_order()
        starts = [c.write_interval.start for c in ordered.commands]
        assert starts == sorted(starts)

    def test_coalesced_copies(self):
        script = DeltaScript(
            [CopyCommand(0, 0, 4), CopyCommand(4, 4, 6)], version_length=10
        )
        merged = script.coalesced()
        assert merged.commands == [CopyCommand(0, 0, 10)]

    def test_coalesced_adds(self):
        script = DeltaScript(
            [AddCommand(0, b"ab"), AddCommand(2, b"cd")], version_length=4
        )
        assert script.coalesced().commands == [AddCommand(0, b"abcd")]

    def test_coalesced_not_contiguous_sources(self):
        # Destinations adjacent but sources are not: must stay separate.
        script = DeltaScript(
            [CopyCommand(0, 0, 4), CopyCommand(50, 4, 6)], version_length=10
        )
        assert len(script.coalesced().commands) == 2

    def test_equality(self):
        assert self.make() == self.make()
        other = self.make()
        other.version_length = 11
        assert self.make() != other
