"""Unit tests for the channel model (repro.device.channel)."""

import random

import pytest

from repro.device.channel import CHANNELS, Channel, get_channel


class TestTransferTime:
    def test_latency_plus_serialization(self):
        ch = Channel("test", bandwidth_bps=8_000, latency_s=0.5)
        # 1000 bytes = 8000 bits = 1 second at 8 kbit/s, plus latency.
        assert ch.transfer_time(1_000) == pytest.approx(1.5)

    def test_zero_bytes_is_latency_only(self):
        ch = Channel("test", bandwidth_bps=8_000, latency_s=0.25)
        assert ch.transfer_time(0) == pytest.approx(0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Channel("test", 1_000).transfer_time(-1)

    def test_faster_channel_is_faster(self):
        slow = get_channel("modem-28.8k")
        fast = get_channel("t1-1.5m")
        assert fast.transfer_time(100_000) < slow.transfer_time(100_000)


class TestTransmit:
    def test_lossless_by_default(self):
        ch = Channel("test", 56_000)
        delivery = ch.transmit(b"payload")
        assert delivery.payload == b"payload"
        assert not delivery.corrupted
        assert delivery.nbytes == 7

    def test_corruption_flips_one_bit(self):
        ch = Channel("lossy", 56_000, corruption_rate=1.0)
        rng = random.Random(1)
        delivery = ch.transmit(b"payload-data", rng)
        assert delivery.corrupted
        assert delivery.payload != b"payload-data"
        assert len(delivery.payload) == len(b"payload-data")
        diff = [i for i in range(len(delivery.payload))
                if delivery.payload[i] != b"payload-data"[i]]
        assert len(diff) == 1

    def test_corruption_needs_rng(self):
        ch = Channel("lossy", 56_000, corruption_rate=1.0)
        assert not ch.transmit(b"data").corrupted  # no rng: deterministic path

    def test_checksum(self):
        import zlib

        delivery = Channel("t", 1_000).transmit(b"abc")
        assert delivery.checksum() == zlib.crc32(b"abc") & 0xFFFFFFFF


class TestPresets:
    def test_known_presets(self):
        for name in ("cellular-9.6k", "modem-28.8k", "modem-56k", "isdn-128k", "t1-1.5m"):
            assert get_channel(name).name == name

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            get_channel("carrier-pigeon")

    def test_bandwidth_ordering(self):
        bws = [CHANNELS[n].bandwidth_bps for n in
               ("cellular-9.6k", "modem-28.8k", "modem-56k", "isdn-128k", "t1-1.5m")]
        assert bws == sorted(bws)
