"""Shared fixtures: deterministic RNGs, sample version pairs, tiny corpus."""

from __future__ import annotations

import random

import pytest

from repro.workloads import Corpus, mutate


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests that need randomness derive it from here."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def sample_pair(rng) -> tuple:
    """A (reference, version) pair with realistic localized edits."""
    reference = rng.randbytes(6_000)
    version = mutate(reference, rng)
    return reference, version


@pytest.fixture
def text_pair(rng) -> tuple:
    """A text-like (reference, version) pair with heavy internal repetition."""
    from repro.workloads import make_source_file

    reference = make_source_file(rng, 8_000)
    version = mutate(reference, rng)
    return reference, version


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """A small, fast corpus shared by integration-style tests."""
    return Corpus(seed=7, packages=2, releases=2, scale=0.12)
