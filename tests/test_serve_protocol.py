"""Wire-protocol fuzz: every damaged frame must be *diagnosed*.

Mirrors tests/test_corruption_fuzz.py at the transport layer.  The
contract: feeding any truncated prefix or any single-bit-flipped
mutation of a valid frame to the parser raises a structured
:class:`~repro.exceptions.IntegrityError` with ``kind="frame"`` — never
an ``IndexError``, never a deadlock, never a silently short read.  The
async reader gets the same truncation matrix through real stream pairs,
bounded by a timeout so a would-be hang fails the test instead of
wedging it.

All corruption is exhaustive (every prefix, every bit) on seeded
payloads, so a failure reproduces exactly; assertion messages carry the
offsets.
"""

import asyncio
import random

import pytest

from repro.exceptions import IntegrityError
from repro.serve import protocol
from repro.serve.protocol import (
    FRAME_TYPES,
    T_DATA,
    T_END,
    T_META,
    T_PULL,
    decode_msg,
    encode_frame,
    encode_msg,
    parse_frame,
    read_frame,
)

SEED = 19980601


def _frames():
    rng = random.Random(SEED)
    return {
        "pull": encode_frame(T_PULL, encode_msg(
            {"package": "pkg000", "have": "a" * 40, "want": "latest",
             "offset": 0})),
        "meta": encode_frame(T_META, encode_msg(
            {"length": 4096, "crc32": 0xDEADBEEF, "want": "b" * 40,
             "offset": 0, "algorithm": "correcting"})),
        "data": encode_frame(T_DATA, rng.randbytes(257)),
        "end": encode_frame(T_END, encode_msg({"crc32": 1})),
        "empty-data": encode_frame(T_DATA, b""),
    }


FRAMES = _frames()


class TestRoundTrip:
    def test_every_frame_round_trips(self):
        for name, frame in FRAMES.items():
            ftype, payload = parse_frame(frame)
            assert encode_frame(ftype, payload) == frame, name

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            encode_frame(0x7F, b"")

    def test_encode_rejects_oversize_payload(self):
        with pytest.raises(ValueError):
            encode_frame(T_DATA, b"\0" * (protocol.MAX_PAYLOAD + 1))

    def test_msg_round_trip_is_byte_deterministic(self):
        msg = {"b": 2, "a": 1, "nested": "x"}
        assert encode_msg(msg) == encode_msg(dict(reversed(list(msg.items()))))
        assert decode_msg(encode_msg(msg)) == msg


class TestTruncationFuzz:
    def test_every_strict_prefix_raises_frame_error(self):
        for name, frame in FRAMES.items():
            for cut in range(len(frame)):
                with pytest.raises(IntegrityError) as err:
                    parse_frame(frame[:cut])
                assert err.value.kind == "frame", \
                    "frame %s cut at %d raised kind=%r" % (
                        name, cut, err.value.kind)

    def test_trailing_garbage_raises(self):
        # A shrunken length field must not silently drop payload tail.
        for name, frame in FRAMES.items():
            with pytest.raises(IntegrityError) as err:
                parse_frame(frame + b"\x00")
            assert err.value.kind == "frame", name


class TestBitFlipFuzz:
    def test_every_single_bit_flip_raises_frame_error(self):
        for name, frame in FRAMES.items():
            for offset in range(len(frame)):
                for bit in range(8):
                    corrupt = bytearray(frame)
                    corrupt[offset] ^= 1 << bit
                    with pytest.raises(IntegrityError) as err:
                        parse_frame(bytes(corrupt))
                    assert err.value.kind == "frame", \
                        "frame %s flip at offset %d bit %d raised " \
                        "kind=%r" % (name, offset, bit, err.value.kind)

    def test_oversize_length_rejected_before_allocation(self):
        # Bit flips in the length field that declare gigabytes must be
        # refused by the ceiling, not buffered.
        frame = bytearray(FRAMES["data"])
        frame[5] |= 0x80  # top bit of the little-endian u32 length
        with pytest.raises(IntegrityError) as err:
            parse_frame(bytes(frame), max_payload=1 << 20)
        assert err.value.kind == "frame"
        assert "ceiling" in str(err.value)

    def test_bad_magic_is_structured(self):
        frame = bytearray(FRAMES["pull"])
        frame[0] = 0x00
        with pytest.raises(IntegrityError) as err:
            parse_frame(bytes(frame))
        assert err.value.kind == "frame"
        assert err.value.offset == 0


class TestMalformedControlPayloads:
    def test_non_json_payload_is_frame_error(self):
        with pytest.raises(IntegrityError) as err:
            decode_msg(b"\xff\xfe not json")
        assert err.value.kind == "frame"

    def test_non_object_json_is_frame_error(self):
        with pytest.raises(IntegrityError) as err:
            decode_msg(b"[1,2,3]")
        assert err.value.kind == "frame"


class TestAsyncReader:
    """The stream reader under the same damage: structured, never hung."""

    @staticmethod
    def _read_from(data: bytes, timeout: float = 5.0):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await asyncio.wait_for(read_frame(reader),
                                          timeout=timeout)
        return asyncio.run(go())

    def test_valid_frames_read_back(self):
        for name, frame in FRAMES.items():
            ftype, payload = self._read_from(frame)
            assert encode_frame(ftype, payload) == frame, name

    def test_every_truncated_stream_raises_not_hangs(self):
        frame = FRAMES["meta"]
        for cut in range(len(frame)):
            with pytest.raises(IntegrityError) as err:
                self._read_from(frame[:cut])
            assert err.value.kind == "frame", "cut at %d" % cut

    def test_flipped_stream_raises_frame_error(self):
        frame = FRAMES["data"]
        rng = random.Random(SEED)
        for _ in range(64):
            offset = rng.randrange(len(frame))
            bit = rng.randrange(8)
            corrupt = bytearray(frame)
            corrupt[offset] ^= 1 << bit
            with pytest.raises(IntegrityError) as err:
                self._read_from(bytes(corrupt))
            assert err.value.kind == "frame", \
                "flip at offset %d bit %d" % (offset, bit)

    def test_reader_enforces_payload_ceiling(self):
        frame = encode_frame(T_DATA, b"x" * 2048)

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await asyncio.wait_for(
                read_frame(reader, max_payload=1024), timeout=5.0)

        with pytest.raises(IntegrityError) as err:
            asyncio.run(go())
        assert err.value.kind == "frame"

    def test_frame_types_are_distinct(self):
        assert len(set(FRAME_TYPES)) == len(FRAME_TYPES)
