"""Unit tests for end-to-end update sessions (repro.device.updater)."""

import random

import pytest

from repro.device.channel import Channel, get_channel
from repro.device.memory import ConstrainedDevice
from repro.device.updater import STRATEGIES, UpdateServer, run_update
from repro.workloads import make_binary_blob, mutate


@pytest.fixture(scope="module")
def releases():
    rng = random.Random(123)
    old = make_binary_blob(rng, 30_000)
    mid = mutate(old, rng)
    new = mutate(mid, rng)
    return old, mid, new


@pytest.fixture
def server(releases):
    server = UpdateServer()
    for image in releases:
        server.publish("firmware", image)
    return server


class TestUpdateServer:
    def test_publish_and_release(self, server, releases):
        assert server.latest_release("firmware") == 2
        assert server.release("firmware", 0) == releases[0]

    def test_latest_unknown_package(self, server):
        with pytest.raises(KeyError):
            server.latest_release("ghost")

    def test_payload_strategies_differ(self, server, releases):
        full = server.build_payload("firmware", 0, 1, "full")
        delta = server.build_payload("firmware", 0, 1, "delta")
        in_place = server.build_payload("firmware", 0, 1, "in-place")
        assert full == releases[1]
        assert len(delta) < len(full)
        assert len(in_place) < len(full)
        # Write offsets make the in-place payload no smaller than the delta.
        assert len(in_place) >= len(delta)

    def test_unknown_strategy(self, server):
        with pytest.raises(ValueError):
            server.build_payload("firmware", 0, 1, "telepathy")


class TestRunUpdate:
    def test_in_place_on_constrained_device(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="in-place")
        assert outcome.succeeded, outcome.failure
        assert device.image == releases[1]
        assert outcome.payload_bytes < outcome.image_bytes
        assert outcome.transfer_seconds > 0

    def test_two_space_fails_on_constrained_device(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="delta")
        assert not outcome.succeeded
        assert "OutOfMemoryError" in outcome.failure

    def test_two_space_succeeds_with_ram(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=256 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="delta")
        assert outcome.succeeded, outcome.failure

    def test_full_strategy(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=256 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="full")
        assert outcome.succeeded
        assert outcome.payload_bytes == len(releases[1])
        assert outcome.compression_ratio == pytest.approx(1.0)

    def test_want_defaults_to_latest(self, server, releases):
        device = ConstrainedDevice(releases[1], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=1, strategy="in-place")
        assert outcome.succeeded
        assert device.image == releases[2]

    def test_chained_updates(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        for have, want in ((0, 1), (1, 2)):
            outcome = run_update(server, device, get_channel("isdn-128k"),
                                 "firmware", have=have, want=want,
                                 strategy="in-place")
            assert outcome.succeeded, outcome.failure
        assert device.image == releases[2]
        assert device.updates_applied == 2

    def test_in_place_payload_smaller_than_image(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("cellular-9.6k"),
                             "firmware", have=0, want=1, strategy="in-place")
        # The motivating win: delta transfer is several times faster.
        full_time = get_channel("cellular-9.6k").transfer_time(len(releases[1]))
        assert outcome.transfer_seconds < full_time / 2

    def test_retransmission_on_corruption(self, server, releases):
        # 60% corruption: retries should usually recover for two-space.
        lossy = Channel("lossy", 56_000, corruption_rate=0.6)
        device = ConstrainedDevice(releases[0], ram=256 * 1024)
        outcome = run_update(server, device, lossy, "firmware", have=0, want=1,
                             strategy="delta", max_retries=50,
                             rng=random.Random(1))
        assert outcome.succeeded
        assert outcome.attempts > 1
