"""Unit tests for end-to-end update sessions (repro.device.updater)."""

import random

import pytest

from repro.device.channel import Channel, get_channel
from repro.device.memory import ConstrainedDevice
from repro.device.updater import STRATEGIES, UpdateServer, run_update
from repro.workloads import make_binary_blob, mutate


@pytest.fixture(scope="module")
def releases():
    rng = random.Random(123)
    old = make_binary_blob(rng, 30_000)
    mid = mutate(old, rng)
    new = mutate(mid, rng)
    return old, mid, new


@pytest.fixture
def server(releases):
    server = UpdateServer()
    for image in releases:
        server.publish("firmware", image)
    return server


class TestUpdateServer:
    def test_publish_and_release(self, server, releases):
        assert server.latest_release("firmware") == 2
        assert server.release("firmware", 0) == releases[0]

    def test_latest_unknown_package(self, server):
        with pytest.raises(KeyError):
            server.latest_release("ghost")

    def test_payload_strategies_differ(self, server, releases):
        full = server.build_payload("firmware", 0, 1, "full")
        delta = server.build_payload("firmware", 0, 1, "delta")
        in_place = server.build_payload("firmware", 0, 1, "in-place")
        assert full == releases[1]
        assert len(delta) < len(full)
        assert len(in_place) < len(full)
        # Write offsets make the in-place payload no smaller than the delta.
        assert len(in_place) >= len(delta)

    def test_unknown_strategy(self, server):
        with pytest.raises(ValueError):
            server.build_payload("firmware", 0, 1, "telepathy")


class TestRunUpdate:
    def test_in_place_on_constrained_device(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="in-place")
        assert outcome.succeeded, outcome.failure
        assert device.image == releases[1]
        assert outcome.payload_bytes < outcome.image_bytes
        assert outcome.transfer_seconds > 0

    def test_two_space_fails_on_constrained_device(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="delta")
        assert not outcome.succeeded
        assert "OutOfMemoryError" in outcome.failure

    def test_two_space_succeeds_with_ram(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=256 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="delta")
        assert outcome.succeeded, outcome.failure

    def test_full_strategy(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=256 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="full")
        assert outcome.succeeded
        assert outcome.payload_bytes == len(releases[1])
        assert outcome.compression_ratio == pytest.approx(1.0)

    def test_want_defaults_to_latest(self, server, releases):
        device = ConstrainedDevice(releases[1], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=1, strategy="in-place")
        assert outcome.succeeded
        assert device.image == releases[2]

    def test_chained_updates(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        for have, want in ((0, 1), (1, 2)):
            outcome = run_update(server, device, get_channel("isdn-128k"),
                                 "firmware", have=have, want=want,
                                 strategy="in-place")
            assert outcome.succeeded, outcome.failure
        assert device.image == releases[2]
        assert device.updates_applied == 2

    def test_in_place_payload_smaller_than_image(self, server, releases):
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("cellular-9.6k"),
                             "firmware", have=0, want=1, strategy="in-place")
        # The motivating win: delta transfer is several times faster.
        full_time = get_channel("cellular-9.6k").transfer_time(len(releases[1]))
        assert outcome.transfer_seconds < full_time / 2

    def test_retransmission_on_corruption(self, server, releases):
        # 60% corruption: retries should usually recover for two-space.
        lossy = Channel("lossy", 56_000, corruption_rate=0.6)
        device = ConstrainedDevice(releases[0], ram=256 * 1024)
        outcome = run_update(server, device, lossy, "firmware", have=0, want=1,
                             strategy="delta", max_retries=50,
                             rng=random.Random(1))
        assert outcome.succeeded
        assert outcome.attempts > 1


class TestResilientUpdates:
    """Fault-plane integration: link faults and power cuts, deterministically."""

    def _plan(self, *specs, seed=0):
        from repro.faults import FaultPlan, FaultSpec

        return FaultPlan([FaultSpec(**spec) for spec in specs], seed=seed)

    def test_injected_transmit_faults_are_retried(self, server, releases):
        plan = self._plan(dict(site="channel.transmit", count=2,
                               error="transmission"))
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="in-place",
                             max_retries=5, fault_plan=plan)
        assert outcome.succeeded, outcome.failure
        assert outcome.attempts == 3  # two drops, then delivery
        assert len(outcome.faults) == 2
        assert all("TransmissionError" in f for f in outcome.faults)
        assert device.image == releases[1]

    def test_persistent_transmit_faults_exhaust_retries(self, server, releases):
        plan = self._plan(dict(site="channel.transmit", count=99,
                               error="transmission"))
        device = ConstrainedDevice(releases[0], ram=24 * 1024)
        outcome = run_update(server, device, get_channel("modem-56k"),
                             "firmware", have=0, want=1, strategy="in-place",
                             max_retries=3, fault_plan=plan)
        assert not outcome.succeeded
        assert "exhausted 3 transmission attempts" in outcome.failure
        assert device.image == releases[0]  # untouched: nothing was delivered

    def test_journaled_update_resumes_after_power_cuts(self, server, releases):
        from repro.device.updater import run_journaled_update

        plan = self._plan(
            dict(site="device.power", nth=1, error="power", fuel=700),
            dict(site="device.power", nth=2, error="power", fuel=2_000),
        )
        outcome = run_journaled_update(server, get_channel("modem-56k"),
                                       "firmware", have=0, want=1,
                                       fault_plan=plan)
        assert outcome.succeeded, outcome.failure
        assert outcome.boots == 3  # two cuts, third boot finishes
        assert outcome.power_cuts == 2
        assert outcome.journal_peak_bytes > 0
        assert len(outcome.faults) == 2
        assert all("PowerFailureError" in f for f in outcome.faults)

    def test_journaled_update_combined_link_and_power_faults(self, server,
                                                             releases):
        from repro.device.updater import run_journaled_update

        plan = self._plan(
            dict(site="channel.transmit", nth=1, error="transmission"),
            dict(site="device.power", nth=1, error="power", fuel=500),
        )
        outcome = run_journaled_update(server, get_channel("isdn-128k"),
                                       "firmware", have=0, want=1,
                                       fault_plan=plan)
        assert outcome.succeeded, outcome.failure
        assert outcome.attempts == 2  # one retransmission
        assert outcome.boots == 2     # one power cut
        assert outcome.power_cuts == 1

    def test_journaled_update_runs_out_of_boots(self, server, releases):
        from repro.device.updater import run_journaled_update

        plan = self._plan(dict(site="device.power", count=99, error="power",
                               fuel=64))
        outcome = run_journaled_update(server, get_channel("modem-56k"),
                                       "firmware", have=0, want=1,
                                       max_boots=3, fault_plan=plan)
        assert not outcome.succeeded
        assert outcome.boots == 3
        assert outcome.power_cuts == 3
        assert "power failed on every" in outcome.failure

    def test_journaled_update_same_plan_same_outcome(self, server, releases):
        from repro.device.updater import run_journaled_update

        def session():
            plan = self._plan(
                dict(site="device.power", probability=0.6, error="power",
                     fuel=900),
                seed=3,
            )
            return run_journaled_update(server, get_channel("modem-56k"),
                                        "firmware", have=0, want=1,
                                        max_boots=32, fault_plan=plan)

        first, second = session(), session()
        assert first.succeeded and second.succeeded
        assert first.boots == second.boots
        assert first.power_cuts == second.power_cuts
        assert first.faults == second.faults

    def test_journaled_update_clean_run_is_single_boot(self, server, releases):
        from repro.device.updater import run_journaled_update

        outcome = run_journaled_update(server, get_channel("modem-56k"),
                                       "firmware", have=0, want=1)
        assert outcome.succeeded
        assert outcome.boots == 1
        assert outcome.power_cuts == 0
        assert outcome.faults == []
