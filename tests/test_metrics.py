"""Unit tests for compression metrics (repro.analysis.metrics)."""

import pytest

from repro.analysis.metrics import (
    PairMeasurement,
    aggregate,
    compression_factor,
    measure_pair,
)
from repro.delta import correcting_delta


class TestMeasurePair:
    def test_pipeline_fields(self, sample_pair):
        ref, ver = sample_pair
        m = measure_pair("t", ref, ver)
        assert m.version_bytes == len(ver)
        assert m.reference_bytes == len(ref)
        assert 0 < m.sequential_bytes <= m.offsets_bytes
        assert set(m.in_place_bytes) == {"constant", "local-min"}
        for policy, size in m.in_place_bytes.items():
            assert size >= m.offsets_bytes, policy
        assert m.diff_seconds > 0

    def test_reuses_precomputed_script(self, sample_pair):
        ref, ver = sample_pair
        script = correcting_delta(ref, ver)
        m = measure_pair("t", ref, ver, script=script)
        assert m.diff_seconds == 0.0
        assert m.sequential_bytes > 0

    def test_custom_policies(self, sample_pair):
        ref, ver = sample_pair
        m = measure_pair("t", ref, ver, policies=("local-min",))
        assert list(m.in_place_bytes) == ["local-min"]

    def test_ratio(self):
        m = PairMeasurement("t", version_bytes=1000, reference_bytes=900,
                            sequential_bytes=150, offsets_bytes=160)
        assert m.ratio(150) == pytest.approx(0.15)


class TestAggregate:
    def make(self, name, version, seq, off, const, local):
        m = PairMeasurement(name, version_bytes=version, reference_bytes=version,
                            sequential_bytes=seq, offsets_bytes=off)
        m.in_place_bytes = {"constant": const, "local-min": local}
        return m

    def test_totals_weighted_by_bytes(self):
        records = [
            self.make("a", 1000, 100, 110, 150, 120),
            self.make("b", 3000, 600, 630, 660, 640),
        ]
        summary = aggregate(records)
        assert summary.pairs == 2
        assert summary.version_bytes == 4000
        assert summary.compression_sequential == pytest.approx(100 * 700 / 4000)
        assert summary.compression_offsets == pytest.approx(100 * 740 / 4000)
        assert summary.encoding_loss == pytest.approx(100 * 40 / 4000)
        assert summary.cycle_loss["constant"] == pytest.approx(100 * 70 / 4000)
        assert summary.total_loss["local-min"] == pytest.approx(100 * 60 / 4000)

    def test_loss_decomposition_sums(self):
        records = [self.make("a", 2000, 300, 330, 390, 340)]
        summary = aggregate(records)
        for policy in ("constant", "local-min"):
            assert summary.total_loss[policy] == pytest.approx(
                summary.encoding_loss + summary.cycle_loss[policy]
            )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_rows_layout(self):
        summary = aggregate([self.make("a", 1000, 100, 110, 150, 120)])
        rows = summary.rows()
        assert rows[0][0] == ""
        assert rows[1][0] == "Compression"
        assert rows[-1][0] == "Total loss"
        # constant sorts before local-min.
        assert "constant" in rows[0][3]


class TestCompressionFactor:
    def test_factor(self):
        m = PairMeasurement("t", version_bytes=1000, reference_bytes=1000,
                            sequential_bytes=125, offsets_bytes=130)
        assert compression_factor(m) == pytest.approx(8.0)

    def test_zero_delta(self):
        m = PairMeasurement("t", version_bytes=1000, reference_bytes=1000,
                            sequential_bytes=0, offsets_bytes=0)
        assert compression_factor(m) == float("inf")
