"""Tests for integrated in-place generation (repro.core.integrated).

The paper claims the conversion "integrates easily into a compression
algorithm so that an in-place reconstructible file may be output
directly"; these tests pin the integrated path to byte-identical output
with the post-processing path.
"""

import pytest

import repro
from repro.core.apply import apply_in_place
from repro.core.convert import make_in_place
from repro.core.integrated import InPlaceDeltaBuilder, diff_in_place_integrated
from repro.core.verify import is_in_place_safe
from repro.delta import FORMAT_INPLACE, correcting_delta, encode_delta


class TestBuilder:
    def test_feeds_and_finishes(self):
        builder = InPlaceDeltaBuilder()
        builder.add_copy(10, 0, 5)
        builder.add_literal(5, b"xyz")
        builder.add_copy(0, 8, 4)
        result = builder.finish(b"0123456789abcdef")
        assert result.script.version_length == 12
        assert is_in_place_safe(result.script)

    def test_rejects_out_of_order_writes(self):
        builder = InPlaceDeltaBuilder()
        builder.add_copy(0, 4, 4)
        with pytest.raises(ValueError):
            builder.add_copy(0, 0, 4)
        with pytest.raises(ValueError):
            builder.add_literal(2, b"ab")

    def test_gaps_allowed(self):
        # Write order only requires non-decreasing offsets; gaps are the
        # caller's business (validate() would flag them).
        builder = InPlaceDeltaBuilder()
        builder.add_copy(0, 0, 4)
        builder.add_copy(0, 10, 4)
        assert builder.version_length == 14

    def test_feed_rejects_scratch_commands(self):
        from repro.core.commands import SpillCommand

        builder = InPlaceDeltaBuilder()
        with pytest.raises(TypeError):
            builder.feed(SpillCommand(0, 0, 4))

    def test_empty(self):
        result = InPlaceDeltaBuilder().finish()
        assert result.script.commands == []
        assert result.report.evicted_count == 0


class TestEquivalenceWithPostProcessing:
    @pytest.mark.parametrize("policy", ["constant", "local-min"])
    def test_identical_scripts(self, policy, sample_pair):
        ref, ver = sample_pair
        script = correcting_delta(ref, ver)
        post = make_in_place(script, ref, policy=policy)
        integrated = diff_in_place_integrated(ref, ver, policy=policy)
        assert integrated.script == post.script
        assert encode_delta(integrated.script, FORMAT_INPLACE) == \
            encode_delta(post.script, FORMAT_INPLACE)

    def test_identical_reports(self, sample_pair):
        ref, ver = sample_pair
        script = correcting_delta(ref, ver)
        post = make_in_place(script, ref).report
        integrated = diff_in_place_integrated(ref, ver).report
        for field in ("copies_in", "adds_in", "evicted_count", "evicted_bytes",
                      "eviction_cost", "crwi_vertices", "crwi_edges",
                      "cycles_found", "spilled_count", "scratch_used"):
            assert getattr(integrated, field) == getattr(post, field), field

    def test_with_scratch_budget(self, rng):
        ref = rng.randbytes(3000)
        ver = ref[1500:] + ref[:1500]
        post = make_in_place(correcting_delta(ref, ver), ref, scratch_budget=4096)
        integrated = diff_in_place_integrated(ref, ver, scratch_budget=4096)
        assert integrated.script == post.script

    @pytest.mark.parametrize("algorithm", ["greedy", "onepass", "correcting"])
    def test_round_trip_all_algorithms(self, algorithm, sample_pair):
        ref, ver = sample_pair
        result = diff_in_place_integrated(ref, ver, algorithm=algorithm)
        buf = bytearray(ref)
        apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == ver

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            diff_in_place_integrated(b"a", b"b", algorithm="psychic")
