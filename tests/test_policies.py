"""Unit tests for cycle-breaking policies and FVS solvers (repro.core.policies)."""

import random

import pytest

from repro.analysis.adversarial import figure2_case, figure2_expected_costs
from repro.core.commands import CopyCommand
from repro.core.crwi import CRWIDigraph, build_crwi_digraph
from repro.core.policies import (
    ConstantTimePolicy,
    LocallyMinimumPolicy,
    MaxOutDegreePolicy,
    eviction_cost,
    exact_minimum_evictions,
    greedy_evictions,
    is_feedback_vertex_set,
    make_policy,
)
from repro.core.toposort import cycle_breaking_toposort
from repro.exceptions import CycleBreakError


def make_graph(n: int, edges, lengths=None) -> CRWIDigraph:
    lengths = lengths or [10] * n
    graph = CRWIDigraph(
        vertices=[CopyCommand(0, i * 1000, lengths[i]) for i in range(n)],
        successors=[[] for _ in range(n)],
        predecessors=[[] for _ in range(n)],
    )
    for u, v in edges:
        graph.successors[u].append(v)
        graph.predecessors[v].append(u)
    return graph


class TestPerCyclePolicies:
    def test_constant_picks_last(self):
        assert ConstantTimePolicy().choose([3, 7, 5], [0, 0, 0, 1, 1, 2, 2, 9]) == 5

    def test_local_min_picks_cheapest(self):
        costs = [50, 10, 30, 20]
        assert LocallyMinimumPolicy().choose([0, 2, 3], costs) == 3

    def test_local_min_tie_breaks_to_earliest(self):
        costs = [10, 10, 10]
        assert LocallyMinimumPolicy().choose([2, 0, 1], costs) == 2

    def test_empty_cycle_raises(self):
        with pytest.raises(CycleBreakError):
            ConstantTimePolicy().choose([], [])
        with pytest.raises(CycleBreakError):
            LocallyMinimumPolicy().choose([], [])

    def test_max_out_degree(self):
        graph = make_graph(3, [(0, 1), (0, 2), (1, 0), (2, 0)])
        policy = MaxOutDegreePolicy(graph)
        assert policy.choose([0, 1], [5, 5, 5]) == 0  # degree 2 beats 1

    def test_make_policy(self):
        assert make_policy("constant").name == "constant"
        assert make_policy("local-min").name == "local-min"
        assert make_policy("locally-minimum").name == "local-min"
        graph = make_graph(1, [])
        assert make_policy("max-out-degree", graph).name == "max-out-degree"

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("fancy")

    def test_make_policy_max_degree_needs_graph(self):
        with pytest.raises(ValueError):
            make_policy("max-out-degree")


class TestGreedyEvictions:
    def test_acyclic_untouched(self):
        graph = make_graph(3, [(0, 1), (1, 2)])
        assert greedy_evictions(graph) == []

    def test_breaks_all_cycles(self):
        graph = make_graph(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        evicted = greedy_evictions(graph)
        assert is_feedback_vertex_set(graph, evicted)
        assert len(evicted) == 2

    def test_prefers_central_vertices(self):
        # Star of 2-cycles around vertex 0; evicting 0 alone suffices and
        # the cost/degree heuristic should find it.
        edges = []
        for leaf in range(1, 6):
            edges += [(0, leaf), (leaf, 0)]
        graph = make_graph(6, edges)
        assert greedy_evictions(graph) == [0]


class TestExactEvictions:
    def test_matches_known_optimum(self):
        # Two disjoint 2-cycles with one cheap member each.
        graph = make_graph(
            4, [(0, 1), (1, 0), (2, 3), (3, 2)], lengths=[100, 10, 10, 100]
        )
        best = exact_minimum_evictions(graph)
        assert sorted(best) == [1, 2]

    def test_acyclic_is_free(self):
        graph = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        assert exact_minimum_evictions(graph) == []

    def test_size_guard(self):
        graph = make_graph(100, [])
        with pytest.raises(ValueError):
            exact_minimum_evictions(graph, max_vertices=50)

    def test_figure2_optimum_is_root(self):
        case = figure2_case(3)
        graph = build_crwi_digraph(case.script)
        best = exact_minimum_evictions(graph)
        _, optimal_cost = figure2_expected_costs(3)
        assert eviction_cost(best, graph.costs()) == optimal_cost
        assert len(best) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_never_worse_than_heuristics(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 12)
        edges = set()
        for _ in range(rng.randint(n, 3 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add((u, v))
        lengths = [rng.randint(5, 300) for _ in range(n)]
        graph = make_graph(n, sorted(edges), lengths)
        costs = graph.costs()
        best = exact_minimum_evictions(graph, costs)
        assert is_feedback_vertex_set(graph, best)
        greedy = greedy_evictions(graph, costs)
        assert eviction_cost(best, costs) <= eviction_cost(greedy, costs)
        for policy in (ConstantTimePolicy(), LocallyMinimumPolicy()):
            result = cycle_breaking_toposort(graph, policy, costs)
            assert eviction_cost(best, costs) <= eviction_cost(result.evicted, costs)


class TestFigure2Adversary:
    """The paper's Figure 2 claim, reproduced end to end."""

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_local_min_evicts_every_leaf(self, depth):
        case = figure2_case(depth)
        graph = build_crwi_digraph(case.script)
        result = cycle_breaking_toposort(graph, LocallyMinimumPolicy(), graph.costs())
        expected_local, _ = figure2_expected_costs(depth)
        assert eviction_cost(result.evicted, graph.costs()) == expected_local
        assert len(result.evicted) == 2 ** depth

    @pytest.mark.parametrize("depth", [2, 3, 4])
    def test_gap_to_optimal_grows_linearly(self, depth):
        local, optimal = figure2_expected_costs(depth)
        assert local / optimal == pytest.approx((2 ** depth) * 4 / 6)

    def test_max_out_degree_policy_finds_root(self):
        # The ablation policy evicts the root on the first cycle: the root
        # has out-degree 2 but every other cycle member has <= 2 as well —
        # what distinguishes it is cost ties broken by degree; verify the
        # policy needs only one eviction per tree *or* at least beats
        # local-min's total cost.
        case = figure2_case(3)
        graph = build_crwi_digraph(case.script)
        result = cycle_breaking_toposort(
            graph, MaxOutDegreePolicy(graph), graph.costs()
        )
        local_cost, _ = figure2_expected_costs(3)
        assert eviction_cost(result.evicted, graph.costs()) <= local_cost
