"""The serving acceptance storm: 200+ concurrent pulls, zero silence.

This is the load-level contract from the issue: hundreds of concurrent
clients — mixed distinct and duplicate (reference, target) pairs —
through a fault storm of connection drops, frame corruption, and one
mid-pull power cut.  Every client must reach a terminal state
(byte-exact applied, structured failure, or backpressure-refused);
duplicate pairs must coalesce to a single encode; the daemon must never
crash; and a SIGTERM-style drain mid-storm must let in-flight pulls
finish.  :class:`~repro.serve.LoadReport` enforces the
zero-silent-failure invariant at accounting time, so these tests mostly
assert that its ``silent`` list stays empty.
"""

import asyncio

import pytest

from repro.faults import FaultPlan
from repro.serve import build_clients, build_corpus, run_load

SEED = 19980601


class TestCorpus:
    def test_build_clients_guarantees_duplicate_pairs(self):
        _store, chains = build_corpus(packages=2, releases=3, size=2048,
                                      seed=SEED)
        specs = build_clients(chains, 10)
        pairs = [s.pair for s in specs]
        # 2 packages x 2 stale releases = 4 distinct pairs over 10
        # clients: every pair is duplicated.
        assert len(set(pairs)) == 4
        for pair in set(pairs):
            assert pairs.count(pair) >= 2

    def test_expected_bytes_are_the_published_latest(self):
        store, chains = build_corpus(packages=1, releases=2, size=2048,
                                     seed=SEED)
        (spec,) = build_clients(chains, 1)
        _digest, latest = store.latest(spec.package)
        assert spec.expected == latest
        assert spec.want == store.digest(latest)


class TestCleanLoad:
    def test_every_duplicate_pair_coalesces(self):
        report = run_load(clients=24, packages=2, releases=2, size=4096,
                          seed=SEED)
        assert report.silent == []
        assert report.applied == 24
        assert report.byte_exact == 24
        # One encode per distinct pair; the other 22 requests were
        # answered by coalescing onto an in-flight encode or by the
        # payload cache — never by re-encoding.
        assert report.counters.get("serve.encodes") == report.distinct_pairs
        served_without_encode = (
            report.server_counters["coalesced"]
            + report.server_counters["payload_hits"])
        assert served_without_encode == 24 - report.distinct_pairs


class TestAcceptanceStorm:
    """The issue's headline number: >=200 concurrent pulls under faults."""

    @pytest.fixture(scope="class")
    def storm(self):
        server_plan = FaultPlan.parse(
            "serve.accept:p=0.05;serve.frame:p=0.02", seed=42)
        client_plan = FaultPlan.parse("client.recv:p=0.03", seed=43)
        return run_load(
            clients=200,
            packages=3,
            releases=3,
            size=8192,
            seed=SEED,
            server_fault_plan=server_plan,
            client_fault_plan=client_plan,
            power_cut_client=17,
            power_cut_fuel=600,
            max_inflight=64,
            max_attempts=8,
            backoff_base=0.001,
            chunk_size=1 << 12,
        )

    def test_zero_silent_failures(self, storm):
        assert storm.silent == []
        assert storm.terminal == storm.clients == 200

    def test_applied_pulls_are_byte_exact(self, storm):
        assert storm.byte_exact == storm.applied
        # The storm is survivable: the overwhelming majority applies,
        # and whatever failed did so with a structured reason.
        assert storm.applied >= 190
        for outcome in storm.outcomes:
            if outcome.status == "failed":
                assert outcome.reason

    def test_duplicate_pairs_coalesce_under_fire(self, storm):
        # Six distinct stale pairs across 200 clients: the encoder ran
        # once per pair even with retries and resumes in the mix.
        assert storm.distinct_pairs == 6
        assert storm.counters.get("serve.encodes") == 6

    def test_faults_actually_fired(self, storm):
        assert storm.power_cuts >= 1
        assert storm.resumes >= 1
        assert storm.client_faults >= 1
        assert storm.server_counters["accept_faults"] >= 1
        assert storm.server_counters["frame_corruptions"] >= 1

    def test_daemon_survived_and_drained(self, storm):
        assert storm.counters.get("serve.drained") == 1
        assert storm.server_counters["served"] >= storm.applied


class TestDrainMidStorm:
    def test_inflight_pulls_complete_after_drain_request(self):
        report = run_load(
            clients=40,
            packages=2,
            releases=2,
            size=4096,
            seed=SEED,
            max_attempts=2,
            backoff_base=0.001,
            # Stagger the fleet so the drain request lands while early
            # pulls are genuinely in flight; the io_timeout bounds
            # clients whose connection sat in the kernel's accept
            # backlog when the listener closed (a peer that will never
            # answer must become a structured fault, not a hang).
            stagger=0.005,
            io_timeout=2.0,
            drain_after=20,
        )
        assert report.silent == []
        # The drain landed mid-storm: pulls already accepted finished
        # byte-exact, later arrivals terminated structurally (refused by
        # the draining daemon or failed on the closed socket) — nobody
        # hung, nobody vanished.
        assert report.applied >= 1
        assert report.byte_exact == report.applied
        assert report.terminal == 40
        for outcome in report.outcomes:
            if outcome.status == "failed":
                assert ("draining" in outcome.reason
                        or "exhausted" in outcome.reason)


class TestBackpressureUnderLoad:
    def test_overload_refuses_structurally(self):
        report = run_load(
            clients=30,
            packages=1,
            releases=2,
            size=4096,
            seed=SEED,
            max_inflight=2,
            max_attempts=1,
            chunk_size=1 << 12,
        )
        assert report.silent == []
        assert report.terminal == 30
        # With one attempt and a tiny admission window, most clients are
        # refused — as a structured RETRY, not a timeout or a crash.
        assert report.refused >= 1
        assert report.server_counters["refused"] >= report.refused
        for outcome in report.outcomes:
            if outcome.status == "refused":
                assert outcome.retry_after > 0
