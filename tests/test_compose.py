"""Tests for delta composition (repro.core.compose)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.apply import apply_delta, apply_in_place
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.compose import compose_chain, compose_scripts
from repro.core.convert import make_in_place
from repro.exceptions import DeltaRangeError, ReproError
from repro.workloads import mutate


class TestComposeBasics:
    def test_copy_through_copy(self):
        # d1: v1 = ref[10:20]; d2: v2 = v1[2:8].
        d1 = DeltaScript([CopyCommand(10, 0, 10)], version_length=10)
        d2 = DeltaScript([CopyCommand(2, 0, 6)], version_length=6)
        composed = compose_scripts(d1, d2)
        assert composed.commands == [CopyCommand(12, 0, 6)]

    def test_copy_through_add(self):
        d1 = DeltaScript([AddCommand(0, b"HELLOWORLD")], version_length=10)
        d2 = DeltaScript([CopyCommand(5, 0, 5)], version_length=5)
        composed = compose_scripts(d1, d2)
        assert composed.commands == [AddCommand(0, b"WORLD")]

    def test_read_spanning_boundary_splits_then_coalesces(self):
        # d1: two adjacent copies with non-contiguous sources.
        d1 = DeltaScript(
            [CopyCommand(50, 0, 5), CopyCommand(90, 5, 5)], version_length=10
        )
        d2 = DeltaScript([CopyCommand(3, 0, 4)], version_length=4)
        composed = compose_scripts(d1, d2)
        assert composed.commands == [CopyCommand(53, 0, 2), CopyCommand(90, 2, 2)]

    def test_adjacent_fragments_coalesce(self):
        # d1 splits contiguous source into two adjacent copies; a read
        # across them should merge back into one command.
        d1 = DeltaScript(
            [CopyCommand(20, 0, 5), CopyCommand(25, 5, 5)], version_length=10
        )
        d2 = DeltaScript([CopyCommand(0, 0, 10)], version_length=10)
        composed = compose_scripts(d1, d2)
        assert composed.commands == [CopyCommand(20, 0, 10)]

    def test_second_adds_pass_through(self):
        d1 = DeltaScript([CopyCommand(0, 0, 4)], version_length=4)
        d2 = DeltaScript(
            [CopyCommand(0, 0, 4), AddCommand(4, b"new")], version_length=7
        )
        composed = compose_scripts(d1, d2)
        assert AddCommand(4, b"new") in composed.commands

    def test_hole_in_first_delta_raises(self):
        gappy = DeltaScript([CopyCommand(0, 5, 5)], version_length=10)
        d2 = DeltaScript([CopyCommand(2, 0, 6)], version_length=6)
        with pytest.raises(DeltaRangeError):
            compose_scripts(gappy, d2)

    def test_read_past_first_version_raises(self):
        d1 = DeltaScript([CopyCommand(0, 0, 4)], version_length=4)
        d2 = DeltaScript([CopyCommand(2, 0, 6)], version_length=6)
        with pytest.raises(DeltaRangeError):
            compose_scripts(d1, d2)

    def test_scratch_scripts_rejected(self):
        from repro.core.commands import FillCommand, SpillCommand

        scratchy = DeltaScript(
            [SpillCommand(0, 0, 4), CopyCommand(4, 0, 4), FillCommand(0, 4, 4)],
            version_length=8,
        )
        plain = DeltaScript([CopyCommand(0, 0, 8)], version_length=8)
        with pytest.raises(ReproError):
            compose_scripts(scratchy, plain)
        with pytest.raises(ReproError):
            compose_scripts(plain, scratchy)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            compose_chain([])


class TestComposeEquivalence:
    def chain(self, rng, releases=4, size=4_000):
        versions = [rng.randbytes(size)]
        for _ in range(releases - 1):
            versions.append(mutate(versions[-1], rng))
        deltas = [
            repro.diff(a, b) for a, b in zip(versions, versions[1:])
        ]
        return versions, deltas

    def test_two_step(self, rng):
        versions, deltas = self.chain(rng, releases=3)
        composed = compose_scripts(deltas[0], deltas[1])
        composed.validate(reference_length=len(versions[0]))
        assert apply_delta(composed, versions[0]) == versions[2]

    def test_long_chain(self, rng):
        versions, deltas = self.chain(rng, releases=6, size=2_500)
        composed = compose_chain(deltas)
        assert apply_delta(composed, versions[0]) == versions[-1]

    def test_composed_delta_converts_in_place(self, rng):
        versions, deltas = self.chain(rng, releases=3)
        composed = compose_chain(deltas)
        result = make_in_place(composed, versions[0])
        buf = bytearray(versions[0])
        apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == versions[-1]

    def test_associativity(self, rng):
        versions, deltas = self.chain(rng, releases=4, size=2_000)
        left = compose_scripts(compose_scripts(deltas[0], deltas[1]), deltas[2])
        right = compose_scripts(deltas[0], compose_scripts(deltas[1], deltas[2]))
        v0 = versions[0]
        assert apply_delta(left, v0) == apply_delta(right, v0) == versions[3]

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_compose_equals_sequential(self, seed):
        rng = random.Random(seed)
        v0 = rng.randbytes(rng.randint(32, 1_200))
        v1 = mutate(v0, rng)
        v2 = mutate(v1, rng)
        d1 = repro.diff(v0, v1)
        d2 = repro.diff(v1, v2)
        composed = compose_scripts(d1, d2)
        assert apply_delta(composed, v0) == v2

    def test_composed_no_larger_than_naive_concatenation(self, rng):
        """Composed payload must beat shipping both deltas."""
        from repro.delta import FORMAT_SEQUENTIAL, encoded_size

        versions, deltas = self.chain(rng, releases=3)
        composed = compose_chain(deltas)
        assert encoded_size(composed, FORMAT_SEQUENTIAL) <= \
            sum(encoded_size(d, FORMAT_SEQUENTIAL) for d in deltas) * 1.05


class TestComposeWithPipeline:
    def test_composed_then_scratch_converted(self, rng):
        """Compose plain deltas, then convert with scratch: full pipeline."""
        from repro.delta import FORMAT_INPLACE, encode_delta

        v0 = rng.randbytes(3_000)
        v1 = v0[1500:] + v0[:1500]      # swap: cycles in each step
        v2 = v1[700:] + v1[:700]
        d1 = repro.diff(v0, v1)
        d2 = repro.diff(v1, v2)
        composed = compose_scripts(d1, d2)
        result = make_in_place(composed, v0, scratch_budget=1 << 14)
        payload = encode_delta(result.script, FORMAT_INPLACE)
        from repro.delta.stream import apply_delta_stream

        buf = bytearray(v0)
        apply_delta_stream(payload, buf, strict=True)
        assert bytes(buf) == v2

    def test_compose_via_bundle_chain(self, rng):
        """Composition is what lets a bundle server skip intermediates."""
        from repro.delta import FORMAT_SEQUENTIAL, encoded_size

        v0 = rng.randbytes(4_000)
        versions = [v0]
        for _ in range(3):
            versions.append(mutate(versions[-1], rng))
        deltas = [repro.diff(a, b) for a, b in zip(versions, versions[1:])]
        folded = compose_chain(deltas)
        direct = repro.diff(versions[0], versions[-1])
        # Composition should land within 2x of a direct recompute.
        assert encoded_size(folded, FORMAT_SEQUENTIAL) <= \
            2 * encoded_size(direct, FORMAT_SEQUENTIAL) + 64
