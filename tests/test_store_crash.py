"""Crash-safety: a kill at ANY write boundary never loses intact data.

The pack is the journal of record; the index a derived cache.  These
tests enumerate every record boundary of a populated pack (via
:func:`repro.store.pack.scan_records`) and truncate the file at each
boundary *and* mid-record, simulating a power cut at that exact byte.
For every cut the store must (1) open with structured damage, (2)
refuse mutation, (3) report the damage through :meth:`fsck`, and
(4) recover **all** objects whose records survive intact via
``gc(repair=True)`` — computed independently here by replaying the
truncated prefix, so the recovery claim is checked against an oracle,
not against the store's own opinion.

Index damage gets the same treatment: corrupt bytes, deletion, and the
stale-index window (crash between a fsynced pack append and the index
rewrite) which must *roll forward*, not lose the publish.
"""

import random
import shutil

import pytest

from repro.exceptions import StoreError
from repro.store import PackStore, StoreConfig
from repro.store.pack import (
    INDEX_NAME,
    PACK_MAGIC,
    REC_OBJECT,
    REC_REF,
    decode_object_payload,
    scan_records,
)
from repro.workloads import make_binary_blob, mutate

SEED = 19980601
CFG = StoreConfig(fsync=False)


def _seed_store(root, packages=2, releases=3, size=2048):
    """A small populated store; returns (store, {(package, digest): bytes})."""
    store = PackStore.init(root, CFG)
    rng = random.Random(SEED)
    images = {}
    for p in range(packages):
        package = "pkg%d" % p
        image = make_binary_blob(rng, size)
        for _ in range(releases):
            digest = store.publish(package, image)
            images[(package, digest)] = bytes(image)
            image = mutate(image, rng)
    return store, images


def _intact_state(pack_bytes):
    """Oracle: the versions a truncated pack still fully describes.

    Replays the intact record prefix with the store's own invariants
    (an object needs its base; a version needs its object; re-publish
    moves to head) — independently of PackStore's loader.
    """
    records, _torn = scan_records(pack_bytes, start=len(PACK_MAGIC))
    objects = set()
    logs = {}
    for rec in records:
        header, _data = decode_object_payload(rec.payload)
        if rec.kind == REC_OBJECT:
            base = str(header.get("base", ""))
            if not base or base in objects:
                objects.add(str(header["digest"]))
        elif rec.kind == REC_REF:
            digest = str(header["digest"])
            if digest in objects:
                log = logs.setdefault(str(header["package"]), [])
                if digest in log:
                    log.remove(digest)
                log.append(digest)
    return logs


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One pristine store per module; every test copies, never mutates."""
    root = tmp_path_factory.mktemp("pristine") / "store"
    store, images = _seed_store(root)
    pack = store.pack_path.read_bytes()
    store.close()
    return root, images, pack


def _copy(pristine_root, dst):
    shutil.copytree(pristine_root, dst)
    return dst


class TestEveryTruncationPoint:
    def test_kill_at_every_boundary_recovers_all_intact_objects(
            self, pristine, tmp_path):
        root, images, pack = pristine
        records, torn = scan_records(pack, start=len(PACK_MAGIC))
        assert torn is None and len(records) >= 12
        # Cut points: before each record (a kill between appends), one
        # byte in (torn kind byte), and mid-record (torn payload); plus
        # a cut inside the magic itself.  The full length is excluded —
        # that file is simply clean.
        cuts = {2}
        for rec in records:
            cuts.update((rec.offset, rec.offset + 1,
                         rec.offset + rec.framed_length // 2))
        for i, cut in enumerate(sorted(cuts)):
            work = _copy(root, tmp_path / ("cut%04d" % i))
            with open(work / "pack-000001.pack", "r+b") as handle:
                handle.truncate(cut)

            store = PackStore(work, CFG)
            # (1) structured damage, not an exception or a misread.
            assert store.damage, "cut at %d opened clean" % cut
            assert all(isinstance(d, StoreError) for d in store.damage)
            # (2) mutation refused until repair.
            with pytest.raises(StoreError) as exc:
                store.publish("pkgX", b"z" * 512)
            assert exc.value.kind == "damaged"
            with pytest.raises(StoreError):
                store.gc()
            # (3) fsck reports it.
            assert not store.fsck(verify_objects=False).ok
            # (4) repair recovers exactly the oracle's intact prefix.
            expected = _intact_state(pack[:cut])
            report = store.gc(repair=True)
            assert report.repaired
            assert store.damage == []
            assert store.fsck().ok
            assert store.packages() == sorted(expected)
            for package, log in expected.items():
                assert store.versions(package) == log
                for digest in log:
                    assert store.get(package, digest) == \
                        images[(package, digest)]
            # The repaired store is writable again.
            store.publish("pkgX", b"z" * 512)
            store.close()

    def test_clean_boundary_cut_is_index_damage(self, pristine, tmp_path):
        # Truncation exactly at a record boundary leaves a structurally
        # valid shorter pack; only the index length check catches it.
        root, _images, pack = pristine
        records, _ = scan_records(pack, start=len(PACK_MAGIC))
        cut = records[-1].offset
        work = _copy(root, tmp_path / "work")
        with open(work / "pack-000001.pack", "r+b") as handle:
            handle.truncate(cut)
        store = PackStore(work, CFG)
        assert any(d.kind == "index" for d in store.damage)

    def test_mid_record_cut_is_torn_damage(self, pristine, tmp_path):
        root, _images, pack = pristine
        records, _ = scan_records(pack, start=len(PACK_MAGIC))
        cut = records[-1].offset + records[-1].framed_length // 2
        work = _copy(root, tmp_path / "work")
        with open(work / "pack-000001.pack", "r+b") as handle:
            handle.truncate(cut)
        store = PackStore(work, CFG)
        assert any(d.kind == "torn" for d in store.damage)
        problems = store.fsck(verify_objects=False).problems
        assert any(p.kind == "torn" for p in problems)


class TestBitFlips:
    def test_flipped_payload_byte_detected_structurally(self, pristine,
                                                        tmp_path):
        # A bit flip that preserves the pack's length is *latent*: the
        # index still matches, so the store opens trusted.  The flip
        # must surface structurally the moment it matters — a CRC trip
        # on read, and a torn finding from fsck's full rescan — never
        # as a misparse or wrong bytes.
        root, _images, pack = pristine
        records, _ = scan_records(pack, start=len(PACK_MAGIC))
        victim = next(r for r in records if r.kind == REC_OBJECT)
        work = _copy(root, tmp_path / "work")
        path = work / "pack-000001.pack"
        blob = bytearray(path.read_bytes())
        blob[victim.offset + 5] ^= 0xFF
        path.write_bytes(blob)

        store = PackStore(work, CFG)
        assert store.damage == []  # length matches: trusted on open
        report = store.fsck()
        assert not report.ok
        assert any(p.kind == "torn" for p in report.problems)
        package = next(p for p in store.packages())
        with pytest.raises(StoreError) as exc:
            store.get(package, store.versions(package)[0])
        assert exc.value.kind == "object"
        store.close()

        # Recovery path: drop the lying index; the scan-based open sees
        # the tear as structured damage and repair rebuilds the intact
        # prefix (here: nothing survives — the flip hit the first
        # record, and everything behind a tear is unreachable).
        (work / INDEX_NAME).unlink()
        reopened = PackStore(work, CFG)
        assert any(d.kind == "torn" for d in reopened.damage)
        reopened.gc(repair=True)
        assert reopened.fsck().ok
        assert reopened.packages() == sorted(_intact_state(
            bytes(blob[:victim.offset])))


class TestIndexDamage:
    def test_corrupt_index_degrades_to_scan(self, pristine, tmp_path):
        root, images, _pack = pristine
        work = _copy(root, tmp_path / "work")
        path = work / INDEX_NAME
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(blob)
        store = PackStore(work, CFG)
        assert any(d.kind == "index" for d in store.damage)
        # The pack is intact, so the scan recovered everything.
        for (package, digest), image in images.items():
            assert store.get(package, digest) == image
        store.gc(repair=True)
        assert store.fsck().ok

    def test_missing_index_degrades_to_scan(self, pristine, tmp_path):
        root, images, _pack = pristine
        work = _copy(root, tmp_path / "work")
        (work / INDEX_NAME).unlink()
        store = PackStore(work, CFG)
        assert any(d.kind == "index" for d in store.damage)
        for (package, digest), image in images.items():
            assert store.get(package, digest) == image
        store.gc(repair=True)
        assert store.fsck().ok

    def test_stale_index_rolls_the_publish_forward(self, tmp_path):
        # Crash window between the fsynced pack append and the index
        # rewrite: the pack is ahead of the index.  The publish MUST
        # survive — it was acknowledged after an fsync.
        root = tmp_path / "store"
        store, images = _seed_store(root)
        stale = (root / INDEX_NAME).read_bytes()
        extra = make_binary_blob(random.Random(7), 2048)
        digest = store.publish("pkg0", extra)
        store.close()
        (root / INDEX_NAME).write_bytes(stale)

        reopened = PackStore(root, CFG)
        assert any(d.kind == "index" for d in reopened.damage)
        assert reopened.versions("pkg0")[-1] == digest
        assert reopened.get("pkg0", digest) == extra
        reopened.gc(repair=True)
        assert reopened.fsck().ok
        assert reopened.latest("pkg0") == (digest, extra)

    def test_stale_index_with_torn_tail(self, tmp_path):
        # Same window, but the kill also tore the trailing ref record:
        # roll-forward keeps the intact prefix and reports the tear.
        root = tmp_path / "store"
        store, _images = _seed_store(root)
        stale = (root / INDEX_NAME).read_bytes()
        store.publish("pkg0", make_binary_blob(random.Random(7), 2048))
        pack_path = store.pack_path
        store.close()
        (root / INDEX_NAME).write_bytes(stale)
        with open(pack_path, "r+b") as handle:
            handle.truncate(pack_path.stat().st_size - 3)

        reopened = PackStore(root, CFG)
        kinds = {d.kind for d in reopened.damage}
        assert "index" in kinds and "torn" in kinds
        reopened.gc(repair=True)
        assert reopened.fsck().ok


class TestGcCrash:
    def test_leftover_next_generation_pack_is_swept(self, pristine,
                                                    tmp_path):
        # A gc that wrote its new pack but died before the index rename
        # committed: the old generation is still authoritative; the
        # orphan is garbage to sweep, not damage.
        root, images, pack = pristine
        work = _copy(root, tmp_path / "work")
        (work / "pack-000002.pack").write_bytes(pack)
        store = PackStore(work, CFG)
        assert store.damage == []
        assert store.generation == 1
        assert not (work / "pack-000002.pack").exists()
        for (package, digest), image in images.items():
            assert store.get(package, digest) == image

    def test_stray_tmp_files_are_swept(self, pristine, tmp_path):
        root, _images, _pack = pristine
        work = _copy(root, tmp_path / "work")
        (work / (INDEX_NAME + ".tmp")).write_bytes(b"half-written")
        store = PackStore(work, CFG)
        assert store.damage == []
        assert not (work / (INDEX_NAME + ".tmp")).exists()

    def test_gc_crash_after_index_rename_recovers_on_open(self, tmp_path):
        # The index rename is gc's commit point; death before the old
        # pack is unlinked leaves both generations — open must pick the
        # committed one and sweep the stale.
        root = tmp_path / "store"
        store, images = _seed_store(root)
        store.gc()
        assert store.generation == 2
        # Resurrect a stale previous generation.
        (root / "pack-000001.pack").write_bytes(bytes(PACK_MAGIC))
        store.close()
        reopened = PackStore(root, CFG)
        assert reopened.damage == []
        assert reopened.generation == 2
        assert not (root / "pack-000001.pack").exists()
        for (package, digest), image in images.items():
            assert reopened.get(package, digest) == image
