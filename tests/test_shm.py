"""Tests for repro.pipeline.shm: arena lifecycle, zero-copy mappings,
and the shared-memory executor's no-orphan guarantees."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import perf
from repro.faults import FaultPlan, FaultSpec
from repro.pipeline import (
    EXECUTORS,
    DeltaPipeline,
    PipelineConfig,
    PipelineJob,
    ReferenceIndexCache,
    SegmentMapping,
    SharedBufferArena,
    SharedBufferDescriptor,
    content_digest,
)
from repro.pipeline.shm import SHM_DIR
from repro.workloads import make_source_file, mutate


def _shm_entries(prefix):
    """Live /dev/shm segments carrying ``prefix`` (empty off-Linux)."""
    if not os.path.isdir(SHM_DIR):
        return []
    return [n for n in os.listdir(SHM_DIR) if n.startswith(prefix)]


@pytest.fixture
def batch(rng):
    reference = make_source_file(rng, 8_000)
    versions = [mutate(reference, rng) for _ in range(4)]
    jobs = [PipelineJob(reference, v, "v%d" % i)
            for i, v in enumerate(versions)]
    return reference, versions, jobs


class TestContentDigest:
    def test_matches_cache_digest(self, rng):
        data = rng.randbytes(1_000)
        assert content_digest(data) == ReferenceIndexCache.digest(data)


class TestSharedBufferArena:
    def test_publish_map_round_trip(self, rng):
        data = rng.randbytes(10_000)
        with SharedBufferArena() as arena:
            descriptor = arena.publish(data)
            assert descriptor.length == len(data)
            assert descriptor.digest == content_digest(data)
            mapping = SegmentMapping(descriptor)
            assert bytes(mapping.buf) == data
            mapping.close()

    def test_dedupe_by_content(self, rng):
        data = rng.randbytes(2_000)
        with SharedBufferArena() as arena:
            first = arena.publish(bytes(data))
            second = arena.publish(bytes(data))  # equal bytes, new object
            assert second.segment == first.segment
            assert arena.refcount(first) == 2
            assert len(arena) == 1

    def test_same_object_skips_rehash(self, rng):
        data = rng.randbytes(2_000)
        with SharedBufferArena() as arena:
            first = arena.publish(data)
            second = arena.publish(data)
            assert second == first or second.segment == first.segment
            assert arena.refcount(first) == 2

    def test_no_dedupe_creates_fresh_segments(self, rng):
        data = rng.randbytes(2_000)
        with SharedBufferArena() as arena:
            a = arena.publish(data, dedupe=False)
            b = arena.publish(data, dedupe=False)
            assert a.segment != b.segment
            assert a.digest == ""
            assert len(arena) == 2

    def test_release_unlinks_at_refcount_zero(self, rng):
        data = rng.randbytes(2_000)
        with SharedBufferArena() as arena:
            first = arena.publish(bytes(data))
            second = arena.publish(bytes(data))
            arena.release(first)
            assert arena.refcount(second) == 1
            assert _shm_entries(first.segment) or not os.path.isdir(SHM_DIR)
            arena.release(second)
            assert arena.refcount(second) == 0
            assert len(arena) == 0
            assert not _shm_entries(first.segment)

    def test_republish_after_full_release(self, rng):
        data = rng.randbytes(2_000)
        with SharedBufferArena() as arena:
            first = arena.publish(bytes(data))
            arena.release(first)
            again = arena.publish(bytes(data))
            assert arena.refcount(again) == 1
            mapping = SegmentMapping(again)
            assert bytes(mapping.buf) == data
            mapping.close()

    def test_empty_buffer_needs_no_segment(self):
        with SharedBufferArena() as arena:
            descriptor = arena.publish(b"")
            assert descriptor.segment == ""
            assert len(arena) == 0
            arena.release(descriptor)  # must not raise
            mapping = SegmentMapping(descriptor)
            assert bytes(mapping.buf) == b""
            mapping.close()

    def test_close_unlinks_everything(self, rng):
        arena = SharedBufferArena()
        names = [arena.publish(rng.randbytes(1_000), dedupe=False).segment
                 for _ in range(3)]
        assert len(arena) == 3
        arena.close()
        assert arena.closed
        assert len(arena) == 0
        for name in names:
            assert not _shm_entries(name)
        arena.close()  # idempotent

    def test_publish_after_close_rejected(self):
        arena = SharedBufferArena()
        arena.close()
        with pytest.raises(ValueError):
            arena.publish(b"data")

    def test_release_after_close_is_noop(self, rng):
        arena = SharedBufferArena()
        descriptor = arena.publish(rng.randbytes(500))
        arena.close()
        arena.release(descriptor)  # must not raise

    def test_segment_names_listing(self, rng):
        with SharedBufferArena() as arena:
            a = arena.publish(rng.randbytes(500), dedupe=False)
            b = arena.publish(rng.randbytes(500), dedupe=False)
            assert arena.segment_names == sorted([a.segment, b.segment])

    def test_unlink_while_mapped_is_safe(self, rng):
        """Linux semantics: the reader's mapping survives the unlink."""
        data = rng.randbytes(4_000)
        with SharedBufferArena() as arena:
            descriptor = arena.publish(data)
            mapping = SegmentMapping(descriptor)
            arena.release(descriptor)  # unlinks the name
            assert not _shm_entries(descriptor.segment)
            assert bytes(mapping.buf) == data  # memory still valid
            mapping.close()


class TestSegmentMappingLifecycle:
    def test_close_is_idempotent(self, rng):
        with SharedBufferArena() as arena:
            descriptor = arena.publish(rng.randbytes(1_000))
            mapping = SegmentMapping(descriptor)
            mapping.close()
            mapping.close()

    def test_descriptor_is_pickle_cheap(self, rng):
        import pickle
        with SharedBufferArena() as arena:
            descriptor = arena.publish(rng.randbytes(100_000))
            wire = pickle.dumps(descriptor)
            assert len(wire) < 300  # the point of the design
            assert pickle.loads(wire) == descriptor


class TestProcessExitCleanup:
    def test_atexit_sweep_reclaims_unclosed_arena(self):
        """A normally-exiting process that never called close() still
        unlinks its segments via the module atexit sweep."""
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.pipeline.shm import SharedBufferArena\n"
            "arena = SharedBufferArena(prefix='ipdatexit')\n"
            "d = arena.publish(b'x' * 50_000)\n"
            "print(d.segment)\n"
            # no close(): the atexit sweep must handle it
        ) % os.path.join(os.path.dirname(__file__), "..", "src")
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, check=True)
        name = out.stdout.strip()
        assert name
        assert not _shm_entries(name)

    def test_power_cut_reclaims_segments(self):
        """SIGKILL mid-publish (the 'device.power' story: the host dies
        with no chance to run cleanup) must not orphan segments — the
        resource tracker is the backstop behind the atexit sweep."""
        script = (
            "import sys, time; sys.path.insert(0, %r)\n"
            "from repro.pipeline.shm import SharedBufferArena\n"
            "arena = SharedBufferArena(prefix='ipdpower')\n"
            "d = arena.publish(b'x' * 50_000)\n"
            "print(d.segment, flush=True)\n"
            "time.sleep(60)\n"
        ) % os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE, text=True)
        try:
            name = proc.stdout.readline().strip()
            assert _shm_entries(name) or not os.path.isdir(SHM_DIR)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
        for _ in range(100):  # tracker cleanup is async; allow 10s
            if not _shm_entries(name):
                break
            time.sleep(0.1)
        assert not _shm_entries(name)


class TestPipelineSegmentHygiene:
    def test_batch_releases_every_segment(self, batch):
        _reference, _versions, jobs = batch
        with DeltaPipeline(PipelineConfig(executor="process-shm",
                                          diff_workers=2)) as pipe:
            result = pipe.run(jobs)
            assert result.ok_jobs == len(jobs)
            arena = pipe._arena
            assert arena is not None and len(arena) == 0
            prefix = arena._prefix
            assert not _shm_entries(prefix)
        assert not _shm_entries(prefix)

    def test_quarantined_batch_leaves_no_orphans(self, batch):
        _reference, _versions, jobs = batch
        plan = FaultPlan([FaultSpec(site="diff.worker", count=99)])
        with DeltaPipeline(PipelineConfig(executor="process-shm",
                                          diff_workers=2,
                                          fault_plan=plan)) as pipe:
            result = pipe.run(jobs)
            assert len(result.quarantined) == len(jobs)
            arena = pipe._arena
            assert len(arena) == 0
            prefix = arena._prefix
            assert not _shm_entries(prefix)

    def test_close_sweeps_arena(self, batch):
        _reference, _versions, jobs = batch
        pipe = DeltaPipeline(PipelineConfig(executor="process-shm",
                                            diff_workers=2))
        pipe.run(jobs)
        prefix = pipe._arena._prefix
        pipe.close()
        assert pipe._arena is None
        assert not _shm_entries(prefix)


class TestExecutorMatrix:
    def test_all_executors_byte_identical(self, batch):
        reference, versions, jobs = batch
        payloads = {}
        for executor in EXECUTORS:
            with DeltaPipeline(PipelineConfig(executor=executor,
                                              diff_workers=2,
                                              convert_workers=2)) as pipe:
                result = pipe.run(jobs)
            assert result.ok_jobs == len(jobs), (executor,
                                                 result.quarantined)
            assert [r.report.executor for r in result.results] == \
                [executor] * len(jobs)
            payloads[executor] = [r.payload for r in result.results]
        baseline = payloads["serial"]
        for executor, got in payloads.items():
            assert got == baseline, executor
        assert not _shm_entries("ipd-")

    def test_process_shm_cache_hits_across_batches(self, batch):
        _reference, _versions, jobs = batch
        # One diff worker so every job lands on the same worker cache.
        with DeltaPipeline(PipelineConfig(executor="process-shm",
                                          diff_workers=1)) as pipe:
            pipe.run(jobs)
            # Worker caches key on the descriptor digest, which is
            # stable across batches even though the segment is new.
            again = pipe.run(jobs)
        assert again.cache_hits == len(jobs)


class TestWorkerCounterAggregation:
    @pytest.mark.parametrize("executor", ["process", "process-shm"])
    def test_worker_counters_reach_parent_recorder(self, executor, batch):
        _reference, _versions, jobs = batch
        with DeltaPipeline(PipelineConfig(executor=executor,
                                          diff_workers=2)) as pipe:
            with perf.recording() as recorder:
                result = pipe.run(jobs)
        assert result.ok_jobs == len(jobs)
        counters = recorder.counters
        # Stage counters recorded inside the worker processes must have
        # been merged back, not silently dropped.
        assert counters["pipeline.diff.jobs"] == len(jobs)
        assert counters["diff.correcting.calls"] == len(jobs)
        assert counters["pipeline.diff.seconds"] > 0
        # Parent-side stages still record directly.
        assert counters["pipeline.convert.seconds"] > 0

    def test_thread_executor_unchanged(self, batch):
        _reference, _versions, jobs = batch
        with DeltaPipeline(PipelineConfig(executor="thread",
                                          diff_workers=2)) as pipe:
            with perf.recording() as recorder:
                pipe.run(jobs)
        assert recorder.counters["pipeline.diff.jobs"] == len(jobs)
