"""Cross-validation of the graph algorithms against networkx.

Our CRWI digraph, cycle detection, topological sort, and feedback-vertex
solvers are all hand-rolled; these tests rebuild the same graphs in
networkx and check every structural claim against an independent
implementation.
"""

import random

import networkx as nx
import pytest

from repro.analysis.adversarial import figure2_case, figure3_case, rotation_medley
from repro.core.crwi import build_crwi_digraph
from repro.core.policies import (
    ConstantTimePolicy,
    LocallyMinimumPolicy,
    exact_minimum_evictions,
    greedy_evictions,
)
from repro.core.toposort import cycle_breaking_toposort, plain_toposort
from repro.delta import correcting_delta
from repro.workloads import mutate


def to_networkx(graph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.vertex_count))
    g.add_edges_from(graph.edges())
    return g


def realistic_graph(seed: int):
    rng = random.Random(seed)
    ref = rng.randbytes(3_000)
    ver = mutate(ref, rng)
    return build_crwi_digraph(correcting_delta(ref, ver))


CASES = [
    lambda: build_crwi_digraph(figure2_case(3).script),
    lambda: build_crwi_digraph(figure3_case(8).script),
    lambda: build_crwi_digraph(rotation_medley(8, [2, 4, 8]).script),
    lambda: realistic_graph(0),
    lambda: realistic_graph(1),
    lambda: realistic_graph(2),
]


@pytest.mark.parametrize("make", CASES)
class TestStructuralAgreement:
    def test_acyclicity_agrees(self, make):
        graph = make()
        assert graph.is_acyclic() == nx.is_directed_acyclic_graph(to_networkx(graph))

    def test_edge_counts_agree(self, make):
        graph = make()
        assert graph.edge_count == to_networkx(graph).number_of_edges()

    def test_eviction_leaves_nx_acyclic(self, make):
        graph = make()
        for policy in (ConstantTimePolicy(), LocallyMinimumPolicy()):
            result = cycle_breaking_toposort(graph, policy, graph.costs())
            g = to_networkx(graph)
            g.remove_nodes_from(result.evicted)
            assert nx.is_directed_acyclic_graph(g), policy.name

    def test_our_order_is_valid_for_nx(self, make):
        graph = make()
        result = cycle_breaking_toposort(graph, ConstantTimePolicy(), graph.costs())
        g = to_networkx(graph)
        g.remove_nodes_from(result.evicted)
        position = {v: i for i, v in enumerate(result.order)}
        for u, v in g.edges():
            assert position[u] < position[v]

    def test_greedy_and_exact_are_fvs_per_nx(self, make):
        graph = make()
        for solver in (greedy_evictions,):
            evicted = solver(graph)
            g = to_networkx(graph)
            g.remove_nodes_from(evicted)
            assert nx.is_directed_acyclic_graph(g)


class TestExactSolverAgainstNxEnumeration:
    @pytest.mark.parametrize("seed", range(5))
    def test_optimal_cost_matches_exhaustive_subsets(self, seed):
        """On tiny graphs, enumerate every vertex subset with itertools and
        keep the cheapest whose removal makes the nx graph acyclic."""
        from itertools import combinations

        rng = random.Random(seed)
        n = rng.randint(3, 8)
        from repro.core.commands import CopyCommand
        from repro.core.crwi import CRWIDigraph

        graph = CRWIDigraph(
            vertices=[CopyCommand(0, i * 100, rng.randint(5, 60)) for i in range(n)],
            successors=[[] for _ in range(n)],
            predecessors=[[] for _ in range(n)],
        )
        for _ in range(rng.randint(n, 3 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v and v not in graph.successors[u]:
                graph.successors[u].append(v)
                graph.predecessors[v].append(u)

        costs = graph.costs()
        best_exhaustive = sum(costs)
        base = to_networkx(graph)
        for k in range(n + 1):
            for subset in combinations(range(n), k):
                g = base.copy()
                g.remove_nodes_from(subset)
                if nx.is_directed_acyclic_graph(g):
                    cost = sum(costs[v] for v in subset)
                    best_exhaustive = min(best_exhaustive, cost)
        ours = exact_minimum_evictions(graph, costs)
        assert sum(costs[v] for v in ours) == best_exhaustive

    def test_plain_toposort_matches_nx_on_dag(self):
        graph = build_crwi_digraph(figure3_case(6).script)
        evicted = greedy_evictions(graph)
        order = plain_toposort(graph, excluding=evicted)
        g = to_networkx(graph)
        g.remove_nodes_from(evicted)
        position = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert position[u] < position[v]


class TestCRWIClassProperties:
    def test_no_large_complete_digraphs(self):
        """Section 5: 'the CRWI class does not include any complete
        digraphs with more than two vertices.'  Check that none of our
        generated digraphs contains a complete subgraph on 3 vertices
        with all 6 directed edges... between mutually-conflicting copies
        this would need 3 disjoint write intervals each intersecting the
        other two commands' read intervals — verify on real corpora that
        complete triangles never appear."""
        for make in CASES:
            graph = make()
            g = to_networkx(graph)
            for u, v in g.edges():
                if g.has_edge(v, u):
                    # 2-cycles exist; extend to any third vertex.
                    for w in g.successors(u):
                        if w in (u, v):
                            continue
                        complete = (
                            g.has_edge(u, w) and g.has_edge(w, u)
                            and g.has_edge(v, w) and g.has_edge(w, v)
                        )
                        assert not complete, (u, v, w)
