"""Tests for the size optimizer (repro.core.optimize)."""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.apply import apply_delta, apply_in_place
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.optimize import (
    add_codeword_size,
    copy_codeword_size,
    optimize_script,
)
from repro.core.verify import is_in_place_safe
from repro.delta import FORMAT_INPLACE, FORMAT_SEQUENTIAL, encoded_size


class TestCostModel:
    def test_copy_codeword_size(self):
        cmd = CopyCommand(0, 0, 1)
        assert copy_codeword_size(cmd) == 4  # op + 3 one-byte varints
        assert copy_codeword_size(cmd, with_offsets=False) == 3

    def test_add_codeword_size(self):
        assert add_codeword_size(1, 0) == 4  # op + dst varint + len byte + data
        assert add_codeword_size(1, 0, with_offsets=False) == 3
        assert add_codeword_size(300, 0) == (1 + 1 + 1 + 255) + (1 + 2 + 1 + 45)


class TestOptimize:
    def test_inlines_tiny_copies(self):
        ref = b"0123456789"
        script = DeltaScript(
            [CopyCommand(4, 0, 1), AddCommand(1, b"xy")], version_length=3
        )
        optimized, report = optimize_script(script, ref)
        assert report.inlined_copies == 1
        # The inlined byte fuses with the following add.
        assert optimized.commands == [AddCommand(0, b"4xy")]
        assert apply_delta(optimized, ref) == apply_delta(script, ref)

    def test_keeps_profitable_copies(self):
        ref = bytes(100)
        script = DeltaScript([CopyCommand(0, 0, 50)], version_length=50)
        optimized, report = optimize_script(script, ref)
        assert report.inlined_copies == 0
        assert optimized.commands == script.commands

    def test_coalesces_contiguous_copies(self):
        ref = bytes(range(100))
        script = DeltaScript(
            [CopyCommand(10, 0, 20), CopyCommand(30, 20, 20)], version_length=40
        )
        optimized, report = optimize_script(script, ref)
        assert report.coalesced == 1
        assert optimized.commands == [CopyCommand(10, 0, 40)]

    def test_merges_adds(self):
        script = DeltaScript(
            [AddCommand(0, b"ab"), AddCommand(2, b"cd")], version_length=4
        )
        optimized, report = optimize_script(script)
        assert report.merged_adds == 1
        assert optimized.commands == [AddCommand(0, b"abcd")]

    def test_without_reference_only_structure(self):
        script = DeltaScript(
            [CopyCommand(4, 0, 1), CopyCommand(5, 1, 1)], version_length=2
        )
        optimized, report = optimize_script(script)  # no reference
        assert report.inlined_copies == 0
        assert optimized.commands == [CopyCommand(4, 0, 2)]  # still coalesces

    def test_scratch_scripts_untouched(self):
        from repro.core.commands import FillCommand, SpillCommand

        script = DeltaScript(
            [SpillCommand(0, 0, 4), CopyCommand(4, 0, 4), FillCommand(0, 4, 4)],
            version_length=8,
        )
        optimized, report = optimize_script(script, bytes(8))
        assert optimized is script
        assert report.total_rewrites == 0

    def test_never_grows_encoding(self, sample_pair):
        ref, ver = sample_pair
        script = repro.diff(ref, ver)
        optimized, _report = optimize_script(script, ref,
                                             with_offsets=False)
        assert encoded_size(optimized, FORMAT_SEQUENTIAL) <= \
            encoded_size(script, FORMAT_SEQUENTIAL)
        assert apply_delta(optimized, ref) == ver

    def test_preserves_in_place_safety(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        optimized, _report = optimize_script(result.script, ref)
        assert is_in_place_safe(optimized)
        buf = bytearray(ref)
        apply_in_place(optimized, buf, strict=True)
        assert bytes(buf) == ver

    def test_optimize_before_convert_shrinks_digraph(self, rng):
        from repro.core.crwi import build_crwi_digraph
        from repro.delta import tichy_delta

        ref = rng.randbytes(2_000)
        ver = rng.randbytes(300) + ref[100:1800]
        # tichy at min_match=1 floods the script with tiny copies.
        script = tichy_delta(ref, ver, min_match=1)
        optimized, report = optimize_script(script, ref)
        assert report.inlined_copies > 0
        before = build_crwi_digraph(script).vertex_count
        after = build_crwi_digraph(optimized).vertex_count
        assert after < before
        assert apply_delta(optimized, ref) == ver

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, seed):
        import random

        from repro.workloads import mutate

        rng = random.Random(seed)
        ref = rng.randbytes(rng.randint(16, 1_200))
        ver = mutate(ref, rng)
        script = repro.diff(ref, ver)
        for with_offsets in (False, True):
            optimized, _ = optimize_script(script, ref, with_offsets=with_offsets)
            assert apply_delta(optimized, ref) == ver
            optimized.validate(reference_length=len(ref))
