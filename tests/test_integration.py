"""Cross-module integration tests: the paper's pipeline end to end.

Each test exercises a complete scenario through the public API — server
diffs, wire encoding, channel transfer, constrained-device in-place
reconstruction — rather than any single module.
"""

import random

import pytest

import repro
from repro.analysis import aggregate, measure_pair
from repro.core.verify import count_wr_conflicts
from repro.delta import FORMAT_INPLACE, encode_delta, version_checksum
from repro.device import ConstrainedDevice, UpdateServer, get_channel, run_update
from repro.workloads import Corpus


@pytest.fixture(scope="module")
def corpus():
    return Corpus(seed=42, packages=2, releases=3, scale=0.15)


class TestCorpusPipeline:
    def test_every_pair_full_pipeline(self, corpus):
        """Diff -> convert -> encode -> decode -> in-place apply, per file."""
        for pair in corpus.pairs():
            result = repro.diff_in_place(pair.reference, pair.version)
            payload = encode_delta(
                result.script, FORMAT_INPLACE,
                version_crc32=version_checksum(pair.version),
            )
            buf = bytearray(pair.reference)
            repro.patch_in_place(buf, payload)
            assert bytes(buf) == pair.version, pair.name

    def test_conversion_drives_conflicts_to_zero(self, corpus):
        before = after = 0
        for pair in corpus.pairs():
            script = repro.diff(pair.reference, pair.version)
            before += count_wr_conflicts(script)
            after += count_wr_conflicts(
                repro.make_in_place(script, pair.reference).script
            )
        assert after == 0
        assert before >= 0  # sequential scripts are often conflict-free

    def test_table1_shape(self, corpus):
        """The qualitative Table 1 ordering must hold on any corpus:
        seq <= offsets <= in-place(local-min) <= in-place(constant)."""
        summary = aggregate(
            measure_pair(p.name, p.reference, p.version) for p in corpus.pairs()
        )
        assert summary.compression_sequential <= summary.compression_offsets
        assert summary.compression_offsets <= \
            summary.compression_in_place["local-min"] + 1e-9
        assert summary.compression_in_place["local-min"] <= \
            summary.compression_in_place["constant"] + 1e-9
        assert summary.encoding_loss >= 0
        assert summary.cycle_loss["local-min"] >= 0


class TestDeviceFleet:
    def test_mixed_fleet_update(self, corpus):
        """Distribute one package's new release to devices of varying RAM."""
        pair = next(p for p in corpus.pairs() if p.kind == "binary")
        server = UpdateServer()
        server.publish("app", pair.reference)
        server.publish("app", pair.version)
        channel = get_channel("modem-28.8k")

        # RAM below the new version's size, but enough for the payload
        # plus the in-place copy window.
        tiny = ConstrainedDevice(pair.reference, ram=len(pair.version) - 1024,
                                 copy_window=2048, name="tiny")
        roomy = ConstrainedDevice(
            pair.reference, ram=len(pair.version) * 2 + 64 * 1024, name="roomy"
        )
        # Tiny device: only the in-place strategy works.
        assert not run_update(server, tiny, channel, "app", have=0,
                              strategy="delta").succeeded
        assert run_update(server, tiny, channel, "app", have=0,
                          strategy="in-place").succeeded
        assert tiny.image == pair.version
        # Roomy device: both work.
        assert run_update(server, roomy, channel, "app", have=0,
                          strategy="delta").succeeded

    def test_transfer_time_savings(self, corpus):
        """Intro claim: delta transfer is several times faster than full."""
        server = UpdateServer()
        pair = max(corpus.pairs(), key=lambda p: len(p.version))
        server.publish("pkg", pair.reference)
        server.publish("pkg", pair.version)
        channel = get_channel("cellular-9.6k")
        device = ConstrainedDevice(pair.reference, ram=64 * 1024)
        outcome = run_update(server, device, channel, "pkg", have=0,
                             strategy="in-place")
        full_time = channel.transfer_time(len(pair.version))
        assert outcome.succeeded
        assert outcome.transfer_seconds < full_time / 2


class TestCrossAlgorithmConsistency:
    def test_all_engines_reconstruct_identically(self, corpus):
        pair = next(corpus.pairs())
        outputs = set()
        for algorithm in repro.ALGORITHMS:
            script = repro.diff(pair.reference, pair.version, algorithm=algorithm)
            outputs.add(repro.apply_delta(script, pair.reference))
        assert outputs == {pair.version}

    def test_greedy_never_adds_more_than_onepass(self, corpus):
        """Greedy's exhaustive index should never lose to the FCFS tables
        by a wide margin across a whole corpus (aggregate, not per file)."""
        greedy_total = onepass_total = 0
        for pair in corpus.pairs():
            greedy_total += repro.diff(pair.reference, pair.version,
                                       algorithm="greedy").added_bytes
            onepass_total += repro.diff(pair.reference, pair.version,
                                        algorithm="onepass").added_bytes
        assert greedy_total <= onepass_total * 1.05


class TestGrowShrinkInPlace:
    @pytest.mark.parametrize("delta_len", [-500, 0, 700])
    def test_version_length_changes(self, delta_len, rng):
        reference = rng.randbytes(3_000)
        if delta_len >= 0:
            version = reference[:1500] + rng.randbytes(delta_len) + reference[1500:]
        else:
            version = reference[:1500 + delta_len] + reference[1500:]
        result = repro.diff_in_place(reference, version)
        buf = bytearray(reference)
        repro.apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == version
        assert len(buf) == len(version)
