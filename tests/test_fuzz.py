"""Failure injection: corrupted payloads must fail safely.

A device in the field receives bytes from a hostile world.  Whatever
arrives, the stack must either (a) raise a typed :class:`ReproError`
subtype, or (b) complete and be caught by the end-to-end checksum — it
must never crash with an untyped exception and never report success
with a wrong image.
"""

import random

import pytest

import repro
from repro.delta import (
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    decode_delta,
    encode_delta,
    version_checksum,
)
from repro.delta.stream import iter_delta_commands
from repro.device import ConstrainedDevice
from repro.exceptions import ReproError
from repro.workloads import make_binary_blob, mutate

ROUNDS = 120


@pytest.fixture(scope="module")
def update_case():
    rng = random.Random(99)
    old = make_binary_blob(rng, 12_000)
    new = mutate(old, rng)
    result = repro.diff_in_place(old, new)
    payload = encode_delta(result.script, FORMAT_INPLACE,
                           version_crc32=version_checksum(new))
    return old, new, payload


def _corrupt(payload: bytes, rng: random.Random) -> bytes:
    """One of: bit flip, byte overwrite, deletion, insertion, splice."""
    mode = rng.randrange(5)
    data = bytearray(payload)
    if not data:
        return b"\x00"
    pos = rng.randrange(len(data))
    if mode == 0:
        data[pos] ^= 1 << rng.randrange(8)
    elif mode == 1:
        data[pos] = rng.randrange(256)
    elif mode == 2:
        del data[pos:pos + rng.randint(1, 16)]
    elif mode == 3:
        data[pos:pos] = rng.randbytes(rng.randint(1, 16))
    else:
        cut = rng.randrange(len(data))
        data = data[cut:] + data[:cut]
    return bytes(data)


class TestCorruptedPayloads:
    def test_decode_never_crashes_untyped(self, update_case):
        _old, _new, payload = update_case
        rng = random.Random(1)
        for _ in range(ROUNDS):
            mangled = _corrupt(payload, rng)
            try:
                decode_delta(mangled)
            except ReproError:
                pass  # typed failure: fine

    def test_streaming_decode_never_crashes_untyped(self, update_case):
        _old, _new, payload = update_case
        rng = random.Random(2)
        for _ in range(ROUNDS):
            mangled = _corrupt(payload, rng)
            try:
                _header, commands = iter_delta_commands(mangled)
                for _ in commands:
                    pass
            except ReproError:
                pass

    def test_device_never_accepts_wrong_image(self, update_case):
        old, new, payload = update_case
        rng = random.Random(3)
        accepted_correct = 0
        for _ in range(ROUNDS):
            mangled = _corrupt(payload, rng)
            device = ConstrainedDevice(old, ram=len(payload) * 2 + 64 * 1024,
                                       storage_limit=len(old) * 4)
            try:
                device.apply_delta_in_place(mangled)
            except ReproError:
                continue  # typed rejection
            # Applied without error: the checksum must have held, which
            # means the image is exactly the intended new version.
            assert device.image == new
            accepted_correct += 1
        # Sanity: an unchanged payload still works after all that.
        device = ConstrainedDevice(old, ram=len(payload) * 2 + 64 * 1024)
        device.apply_delta_in_place(payload)
        assert device.image == new

    def test_two_space_device_image_never_corrupted(self, update_case):
        """Two-space application must leave the image untouched on failure."""
        old, new, payload = update_case
        seq_script = repro.diff(old, new)
        seq_payload = encode_delta(seq_script, FORMAT_SEQUENTIAL,
                                   version_crc32=version_checksum(new))
        rng = random.Random(4)
        for _ in range(ROUNDS):
            mangled = _corrupt(seq_payload, rng)
            device = ConstrainedDevice(old, ram=len(old) * 8 + 1 << 20,
                                       storage_limit=len(old) * 8)
            try:
                device.apply_delta_two_space(mangled)
            except ReproError:
                assert device.image == old  # nothing committed
            else:
                assert device.image == new

    def test_ram_accounting_survives_failures(self, update_case):
        """Every failure path must release all device RAM."""
        old, _new, payload = update_case
        rng = random.Random(5)
        device = ConstrainedDevice(old, ram=len(payload) * 2 + 64 * 1024,
                                   storage_limit=len(old) * 4)
        for _ in range(ROUNDS):
            try:
                device.apply_delta_in_place(_corrupt(payload, rng))
            except ReproError:
                pass
            assert device.ram.in_use == 0


class TestHostileScripts:
    def test_decoded_scripts_validate_or_raise(self, update_case):
        """decode + validate rejects structurally broken scripts with
        typed errors, whatever the bytes were."""
        _old, _new, payload = update_case
        rng = random.Random(6)
        for _ in range(ROUNDS):
            mangled = _corrupt(payload, rng)
            try:
                script, header = decode_delta(mangled)
                script.validate(reference_length=1 << 20)
            except ReproError:
                pass

    def test_giant_version_length_is_bounded_by_storage(self, update_case):
        """A corrupted header demanding a huge version must be rejected
        before allocation, not attempted."""
        old, _new, payload = update_case
        script, _ = decode_delta(payload)
        huge = encode_delta(
            repro.DeltaScript(script.commands, (1 << 40)), FORMAT_INPLACE
        )
        device = ConstrainedDevice(old, ram=1 << 20, storage_limit=1 << 20)
        with pytest.raises(ReproError):
            device.apply_delta_in_place(huge)
