"""Unit tests for the delta wire formats (repro.delta.encode)."""

import pytest

from repro.core.apply import apply_delta
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.delta import correcting_delta
from repro.delta.encode import (
    ALL_FORMATS,
    FORMAT_INPLACE,
    FORMAT_INPLACE_FIXED,
    FORMAT_SEQUENTIAL,
    FORMAT_SEQUENTIAL_FIXED,
    MAX_ADD_CHUNK,
    decode_delta,
    encode_delta,
    encoded_size,
    version_checksum,
)
from repro.exceptions import DeltaFormatError
from repro.workloads import mutate


def sample_script() -> DeltaScript:
    return DeltaScript(
        [CopyCommand(100, 0, 40), AddCommand(40, b"A" * 10), CopyCommand(0, 50, 30)],
        version_length=80,
    )


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_sample_script(self, fmt):
        script = sample_script()
        payload = encode_delta(script, fmt)
        decoded, header = decode_delta(payload)
        assert header.format == fmt
        assert header.version_length == 80
        assert decoded.version_length == 80
        # Command-for-command equality modulo add splitting (none here).
        assert decoded.commands == script.commands

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_real_delta(self, fmt, sample_pair):
        ref, ver = sample_pair
        script = correcting_delta(ref, ver)
        payload = encode_delta(script, fmt, version_crc32=version_checksum(ver))
        decoded, header = decode_delta(payload)
        assert apply_delta(decoded, ref) == ver
        assert header.version_crc32 == version_checksum(ver)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_long_add_split_and_reassembled(self, fmt):
        script = DeltaScript([AddCommand(0, bytes(1000))], version_length=1000)
        payload = encode_delta(script, fmt)
        decoded, _ = decode_delta(payload)
        adds = decoded.adds()
        assert len(adds) == 4  # 255 + 255 + 255 + 235
        assert all(a.length <= MAX_ADD_CHUNK for a in adds)
        assert apply_delta(decoded, b"") == bytes(1000)

    def test_inplace_preserves_command_order(self):
        # The converter's permutation is the whole point: out-of-write-order
        # command sequences must survive serialization exactly.
        script = DeltaScript(
            [CopyCommand(0, 50, 30), CopyCommand(100, 0, 40), AddCommand(40, b"x" * 10)],
            version_length=80,
        )
        decoded, _ = decode_delta(encode_delta(script, FORMAT_INPLACE))
        assert [c.dst for c in decoded.commands] == [50, 0, 40]

    def test_sequential_requires_contiguous_tiling(self):
        gappy = DeltaScript([CopyCommand(0, 10, 5)], version_length=20)
        with pytest.raises(DeltaFormatError):
            encode_delta(gappy, FORMAT_SEQUENTIAL)

    def test_sequential_sorts_for_you(self):
        script = DeltaScript(
            [CopyCommand(0, 50, 30), CopyCommand(100, 0, 50)], version_length=80
        )
        decoded, _ = decode_delta(encode_delta(script, FORMAT_SEQUENTIAL))
        assert [c.dst for c in decoded.commands] == [0, 50]


class TestEncodedSize:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_matches_encoder(self, fmt, sample_pair):
        ref, ver = sample_pair
        script = correcting_delta(ref, ver)
        assert encoded_size(script, fmt) == len(encode_delta(script, fmt))

    def test_offsets_cost_more(self):
        script = sample_script()
        assert encoded_size(script, FORMAT_INPLACE) > encoded_size(script, FORMAT_SEQUENTIAL)
        assert encoded_size(script, FORMAT_INPLACE_FIXED) > \
            encoded_size(script, FORMAT_SEQUENTIAL_FIXED)

    def test_fixed_costs_more_than_varint(self):
        script = sample_script()
        assert encoded_size(script, FORMAT_SEQUENTIAL_FIXED) > \
            encoded_size(script, FORMAT_SEQUENTIAL)

    def test_unknown_format(self):
        with pytest.raises(DeltaFormatError):
            encoded_size(sample_script(), 99)


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(DeltaFormatError):
            decode_delta(b"NOPE" + bytes(20))

    def test_unknown_format_byte(self):
        payload = bytearray(encode_delta(sample_script(), FORMAT_INPLACE))
        payload[4] = 42
        with pytest.raises(DeltaFormatError):
            decode_delta(bytes(payload))

    def test_truncated_everywhere(self):
        payload = encode_delta(sample_script(), FORMAT_INPLACE)
        for cut in range(len(payload) - 1):
            with pytest.raises(DeltaFormatError):
                decode_delta(payload[:cut])

    def test_missing_end_opcode(self):
        payload = encode_delta(sample_script(), FORMAT_INPLACE)
        with pytest.raises(DeltaFormatError):
            decode_delta(payload[:-1])

    def test_unknown_opcode(self):
        payload = bytearray(encode_delta(DeltaScript([], 0), FORMAT_INPLACE))
        payload[-1] = 0x77  # replace OP_END with junk
        payload.append(0x00)
        with pytest.raises(DeltaFormatError):
            decode_delta(bytes(payload))

    def test_zero_length_commands_rejected(self):
        # Hand-craft a copy with length 0.
        good = encode_delta(DeltaScript([], 4), FORMAT_INPLACE)
        body = good[:-1] + bytes([0x02, 0, 0, 0]) + b"\x00"
        with pytest.raises(DeltaFormatError):
            decode_delta(body)

    def test_fixed_value_overflow(self):
        script = DeltaScript([CopyCommand(1 << 33, 0, 4)], version_length=4)
        with pytest.raises(DeltaFormatError):
            encode_delta(script, FORMAT_INPLACE_FIXED)


class TestChecksum:
    def test_checksum_stability(self):
        assert version_checksum(b"abc") == version_checksum(b"abc")
        assert version_checksum(b"abc") != version_checksum(b"abd")
