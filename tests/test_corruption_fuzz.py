"""Corruption fuzz: every truncation and bit flip must be *diagnosed*.

The contract under test: feeding a damaged delta to the decoder raises
:class:`~repro.exceptions.DeltaFormatError` or
:class:`~repro.exceptions.IntegrityError` — never ``IndexError``,
never silent acceptance of wrong bytes.  For the self-verifying
``IPD2`` container the guarantee is total (the trailer CRC covers the
whole file); for legacy ``IPD1`` it covers structure only, so the flip
matrix there asserts "raises cleanly or decodes" rather than "raises".

All randomness is seeded so a failure reproduces exactly; the failing
offset is carried in the assertion message.
"""

import io
import random

import pytest

from repro.delta import correcting_delta
from repro.delta.encode import (
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    decode_delta,
    encode_delta,
    version_checksum,
)
from repro.delta.stream import iter_delta_commands
from repro.core.convert import make_in_place
from repro.exceptions import DeltaFormatError, IntegrityError
from repro.workloads import make_binary_blob, mutate

SEED = 19980601
OK_ERRORS = (DeltaFormatError, IntegrityError)


def _payloads():
    rng = random.Random(SEED)
    old = make_binary_blob(rng, 5_000)
    new = mutate(old, rng)
    script = correcting_delta(old, new)
    in_place = make_in_place(script, old).script
    crc = version_checksum(new)
    return {
        "v1-sequential": encode_delta(script, FORMAT_SEQUENTIAL,
                                      version_crc32=crc),
        "v1-inplace": encode_delta(in_place, FORMAT_INPLACE,
                                   version_crc32=crc),
        "v2-sequential": encode_delta(script, FORMAT_SEQUENTIAL,
                                      version_crc32=crc, reference=old),
        "v2-inplace": encode_delta(in_place, FORMAT_INPLACE,
                                   version_crc32=crc, reference=old),
    }


PAYLOADS = _payloads()


def _drain(data):
    """Stream-decode ``data`` completely, discarding the commands."""
    _header, commands = iter_delta_commands(io.BytesIO(data))
    for _ in commands:
        pass


@pytest.mark.parametrize("name", sorted(PAYLOADS))
class TestTruncation:
    def test_every_strict_prefix_raises(self, name):
        payload = PAYLOADS[name]
        for cut in range(len(payload)):
            with pytest.raises(OK_ERRORS):
                decode_delta(payload[:cut])
                pytest.fail("prefix of %d/%d bytes decoded silently (%s, "
                            "seed %d)" % (cut, len(payload), name, SEED))

    def test_every_strict_prefix_raises_streaming(self, name):
        payload = PAYLOADS[name]
        # Sampled (every 7th cut) to keep the streaming pass fast; the
        # buffered pass above is exhaustive.
        for cut in range(0, len(payload), 7):
            with pytest.raises(OK_ERRORS):
                _drain(payload[:cut])
                pytest.fail("streamed prefix of %d/%d bytes accepted (%s, "
                            "seed %d)" % (cut, len(payload), name, SEED))

    def test_trailing_garbage_raises(self, name):
        payload = PAYLOADS[name]
        with pytest.raises(OK_ERRORS):
            decode_delta(payload + b"\x00")


@pytest.mark.parametrize("name", ["v2-sequential", "v2-inplace"])
class TestBitFlipsV2:
    def test_every_byte_flip_is_detected(self, name):
        payload = PAYLOADS[name]
        rng = random.Random(SEED)
        blob = bytearray(payload)
        for offset in range(len(blob)):
            original = blob[offset]
            blob[offset] ^= 1 << rng.randrange(8)
            try:
                with pytest.raises(OK_ERRORS):
                    decode_delta(bytes(blob))
            except BaseException:
                pytest.fail("flip at offset %d not diagnosed (%s, seed %d)"
                            % (offset, name, SEED))
            finally:
                blob[offset] = original

    def test_flips_are_detected_streaming(self, name):
        payload = PAYLOADS[name]
        rng = random.Random(SEED + 1)
        blob = bytearray(payload)
        for offset in range(0, len(blob), 5):
            original = blob[offset]
            blob[offset] ^= 1 << rng.randrange(8)
            try:
                with pytest.raises(OK_ERRORS):
                    _drain(bytes(blob))
            except BaseException:
                pytest.fail("streamed flip at offset %d not diagnosed "
                            "(%s, seed %d)" % (offset, name, SEED))
            finally:
                blob[offset] = original


@pytest.mark.parametrize("name", ["v1-sequential", "v1-inplace"])
class TestBitFlipsV1:
    def test_flips_never_crash_the_decoder(self, name):
        # IPD1 has no trailer, so a flip may legitimately decode (e.g.
        # inside add data) — but it must never escape as IndexError,
        # ValueError or the like.
        payload = PAYLOADS[name]
        rng = random.Random(SEED + 2)
        blob = bytearray(payload)
        for offset in range(len(blob)):
            original = blob[offset]
            blob[offset] ^= 1 << rng.randrange(8)
            try:
                decode_delta(bytes(blob))
            except OK_ERRORS:
                pass
            except BaseException as exc:
                pytest.fail("flip at offset %d escaped as %r (%s, seed %d)"
                            % (offset, exc, name, SEED))
            finally:
                blob[offset] = original


class TestSegmentGranularity:
    def test_body_flip_reports_segment_with_offset(self):
        rng = random.Random(SEED)
        old = make_binary_blob(rng, 20_000)
        new = mutate(old, rng)
        payload = encode_delta(correcting_delta(old, new), FORMAT_SEQUENTIAL,
                               version_crc32=version_checksum(new),
                               reference=old)
        blob = bytearray(payload)
        mid = len(blob) // 2
        blob[mid] ^= 0x04
        # Streaming cannot see the trailer first, so detection happens
        # at the next segment checkpoint, with a wire offset.
        with pytest.raises(IntegrityError) as info:
            _drain(bytes(blob))
        assert info.value.kind == "segment"
        assert info.value.offset >= 0
