"""Property fuzz for the CRWI digraph's dual representation.

PR 9 made the CSR arrays the construction-time representation while the
adjacency lists stay the canonical public API, derived lazily.  That
dual bookkeeping is only safe if every derived view — ``csr()`` /
``pred_csr()``, ``flat_successors()``, ``pred_row_reader()``,
``edges()``, ``edge_count``, ``outdegrees()`` / ``indegrees()`` — always
agrees with the lists, in both orientations, before and after the two
mutation paths (``without_vertices`` subgraphs and direct list edits
followed by ``invalidate_caches``).  This suite fuzzes exactly that, in
both fast and scalar modes, and keeps the Lemma 1 edge bounds honest
along the way.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.adversarial import figure3_case, rotation_medley
from repro.core import _kernels as core_kernels
from repro.core.crwi import (
    build_crwi_digraph,
    lemma1_bound,
    read_bytes_bound,
)
from repro.delta import greedy_delta
from repro.delta.rolling import use_fast_paths

needs_numpy = pytest.mark.skipif(not core_kernels.HAVE_NUMPY,
                                 reason="numpy unavailable")


@pytest.fixture(params=[True, False], ids=["fast", "scalar"])
def mode(request):
    """Run the test once per fast-path mode, restoring afterwards."""
    previous = use_fast_paths(request.param)
    yield request.param
    use_fast_paths(previous)


def _scripts():
    rng = random.Random(0x9A7C)
    cases = []
    for trial in range(4):
        base = rng.randbytes(rng.randrange(4000, 16000))
        version = bytearray(base)
        for _ in range(rng.randrange(3, 12)):
            at = rng.randrange(max(1, len(version) - 128))
            version[at:at + rng.randrange(0, 128)] = \
                rng.randbytes(rng.randrange(0, 128))
        cases.append(("fuzz%d" % trial, greedy_delta(base, bytes(version))))
    fig3 = figure3_case(5)
    cases.append(("figure3", fig3.script))
    medley = rotation_medley(48, [2, 4, 7])
    cases.append(("rotation", medley.script))
    return cases


SCRIPTS = _scripts()
SCRIPT_IDS = [label for label, _ in SCRIPTS]


def _check_views_consistent(graph):
    """Every derived view must agree with the canonical adjacency lists.

    Order matters: on a kernel-built graph ``flat_successors`` and
    ``pred_row_reader`` are exercised *before* the property accessors
    materialize the lists, so the CSR-slicing branches get covered; the
    same calls are then repeated list-side and must return the same rows.
    """
    n = graph.vertex_count

    flat, bounds = graph.flat_successors()
    assert len(bounds) == n + 1 and bounds[0] == 0
    pred_row = graph.pred_row_reader()
    csr_pred_rows = [list(pred_row(u)) for u in range(n)]

    succ = [list(adj) for adj in graph.successors]
    pred = [list(adj) for adj in graph.predecessors]
    assert len(succ) == len(pred) == n

    # flat/bounds and the row reader are exact row-for-row spellings.
    assert [flat[bounds[u]:bounds[u + 1]] for u in range(n)] == succ
    assert csr_pred_rows == pred
    assert [list(graph.pred_row_reader()(u)) for u in range(n)] == pred

    # The orientations are transposes of each other (same multiset of
    # edges, and within each row the sorted contents must agree).
    forward = sorted((u, v) for u, adj in enumerate(succ) for v in adj)
    backward = sorted((u, v) for v, adj in enumerate(pred) for u in adj)
    assert forward == backward

    # edges() and edge_count read whichever spelling is live.
    assert sorted(graph.edges()) == forward
    assert graph.edge_count == len(forward)
    assert graph.outdegrees() == [len(adj) for adj in succ]
    assert graph.indegrees() == [len(adj) for adj in pred]

    if core_kernels.HAVE_NUMPY:
        indptr, indices = graph.csr()
        assert core_kernels.rows_from_csr(indptr, indices) == succ
        assert int(indptr[-1]) == graph.edge_count
        pred_indptr, pred_indices = graph.pred_csr()
        assert core_kernels.rows_from_csr(pred_indptr, pred_indices) == pred


def _fingerprint(graph):
    return ([list(adj) for adj in graph.successors],
            [list(adj) for adj in graph.predecessors],
            list(graph.vertices))


@pytest.mark.parametrize("label,script", SCRIPTS, ids=SCRIPT_IDS)
def test_views_consistent_after_build(label, script, mode):
    graph = build_crwi_digraph(script)
    _check_views_consistent(graph)
    assert graph.edge_count <= read_bytes_bound(script) <= lemma1_bound(script)


@pytest.mark.parametrize("label,script", SCRIPTS, ids=SCRIPT_IDS)
def test_views_consistent_after_without_vertices(label, script, mode):
    rng = random.Random(0xF7 + len(script.commands))
    graph = build_crwi_digraph(script)
    n = graph.vertex_count
    for removed in ([], [0] if n else [],
                    rng.sample(range(n), k=min(n, max(1, n // 3)))):
        sub = graph.without_vertices(removed)
        assert sub.vertex_count == n - len(set(removed))
        assert sub.edge_count <= graph.edge_count
        _check_views_consistent(sub)
        # The CSR masking kernel and the scalar rebuild are one graph.
        reference = graph._without_vertices_reference(set(removed))
        assert _fingerprint(sub) == _fingerprint(reference)
    # Subgraphing never perturbs the original.
    _check_views_consistent(graph)


@pytest.mark.parametrize("label,script", SCRIPTS, ids=SCRIPT_IDS)
def test_views_consistent_after_list_mutation(label, script, mode):
    """Direct list edits + ``invalidate_caches`` refresh every view."""
    rng = random.Random(0xED17 + len(script.commands))
    graph = build_crwi_digraph(script)
    before = graph.edge_count
    # Warm every cache first so stale values would be caught.
    _check_views_consistent(graph)
    edges = list(graph.edges())
    if not edges:
        pytest.skip("no edges to mutate")
    u, v = edges[rng.randrange(len(edges))]
    graph.successors[u].remove(v)
    graph.predecessors[v].remove(u)
    graph.invalidate_caches()
    assert graph.edge_count == before - 1
    assert (u, v) not in set(graph.edges())
    _check_views_consistent(graph)


@pytest.mark.parametrize("label,script", SCRIPTS, ids=SCRIPT_IDS)
def test_setter_assignment_invalidates(label, script, mode):
    """Assigning whole adjacency lists reroutes every derived view."""
    graph = build_crwi_digraph(script)
    n = graph.vertex_count
    if n < 2:
        pytest.skip("needs at least two vertices")
    _check_views_consistent(graph)
    # Collapse to a single chain edge 0 -> 1: a shape the original
    # script almost surely did not have.
    graph.successors = [[1] if u == 0 else [] for u in range(n)]
    graph.predecessors = [[0] if u == 1 else [] for u in range(n)]
    assert graph.edge_count == 1
    assert list(graph.edges()) == [(0, 1)]
    _check_views_consistent(graph)
