"""Unit tests for the constrained-device substrate (repro.device.memory)."""

import pytest

from repro.core.convert import make_in_place
from repro.delta import (
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    correcting_delta,
    encode_delta,
    version_checksum,
)
from repro.device.memory import ConstrainedDevice, RamAccount
from repro.exceptions import (
    OutOfMemoryError,
    StorageBoundsError,
    VerificationError,
    WriteBeforeReadError,
)


class TestRamAccount:
    def test_allocate_and_free(self):
        ram = RamAccount(budget=100)
        ram.allocate("a", 60)
        ram.allocate("b", 40)
        assert ram.in_use == 100
        assert ram.peak == 100
        ram.free("a")
        assert ram.in_use == 40

    def test_over_budget(self):
        ram = RamAccount(budget=100)
        ram.allocate("a", 80)
        with pytest.raises(OutOfMemoryError):
            ram.allocate("b", 21)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            RamAccount(budget=10).free("ghost")

    def test_negative_size(self):
        with pytest.raises(ValueError):
            RamAccount(budget=10).allocate("a", -1)

    def test_peak_tracks_high_water(self):
        ram = RamAccount(budget=100)
        ram.allocate("a", 70)
        ram.free("a")
        ram.allocate("b", 30)
        assert ram.peak == 70


def build_payloads(old: bytes, new: bytes):
    script = correcting_delta(old, new)
    crc = version_checksum(new)
    sequential = encode_delta(script, FORMAT_SEQUENTIAL, version_crc32=crc)
    converted = make_in_place(script, old)
    in_place = encode_delta(converted.script, FORMAT_INPLACE, version_crc32=crc)
    return sequential, in_place


class TestConstrainedDevice:
    def setup_method(self):
        import random

        from repro.workloads import mutate

        rng = random.Random(77)
        self.old = rng.randbytes(20_000)
        self.new = mutate(self.old, rng)
        self.sequential, self.in_place = build_payloads(self.old, self.new)

    def test_two_space_needs_version_scratch(self):
        # RAM smaller than payload + version: conventional apply fails...
        small = ConstrainedDevice(self.old, ram=len(self.sequential) + 1024)
        with pytest.raises(OutOfMemoryError):
            small.apply_delta_two_space(self.sequential)
        assert small.image == self.old  # untouched
        # ...while a roomy host succeeds.
        roomy = ConstrainedDevice(self.old, ram=len(self.new) + len(self.sequential) + 4096)
        roomy.apply_delta_two_space(self.sequential)
        assert roomy.image == self.new

    def test_in_place_succeeds_in_small_ram(self):
        device = ConstrainedDevice(self.old, ram=len(self.in_place) + 8192)
        device.apply_delta_in_place(self.in_place)
        assert device.image == self.new
        assert device.updates_applied == 1

    def test_in_place_peak_ram_below_version_size(self):
        device = ConstrainedDevice(self.old, ram=len(self.in_place) + 8192)
        device.apply_delta_in_place(self.in_place)
        assert device.ram.peak < len(self.new)

    def test_unsafe_delta_rejected_by_strict_engine(self):
        # Feed the *sequential* (unconverted) commands through the
        # in-place engine: conflicts must raise, not corrupt silently.
        from repro.delta import decode_delta

        script, _ = decode_delta(self.sequential)
        unsafe = encode_delta(script, FORMAT_INPLACE,
                              version_crc32=version_checksum(self.new))
        device = ConstrainedDevice(self.old, ram=len(unsafe) + 8192)
        try:
            device.apply_delta_in_place(unsafe)
        except WriteBeforeReadError:
            pass  # expected for conflicting scripts
        else:
            # Some deltas happen to be conflict-free in write order; then
            # the apply must have been correct.
            assert device.image == self.new

    def test_checksum_verification(self):
        corrupted = bytearray(self.in_place)
        corrupted[-10] ^= 0xFF  # flip a data byte near the end
        device = ConstrainedDevice(self.old, ram=len(self.in_place) + 8192)
        with pytest.raises((VerificationError, Exception)):
            device.apply_delta_in_place(bytes(corrupted))

    def test_storage_limit_enforced(self):
        with pytest.raises(StorageBoundsError):
            ConstrainedDevice(b"x" * 100, storage_limit=50)

    def test_full_install(self):
        device = ConstrainedDevice(self.old, ram=len(self.new) + 4096)
        device.install_full_image(self.new)
        assert device.image == self.new

    def test_full_install_oom(self):
        device = ConstrainedDevice(self.old, ram=1024)
        with pytest.raises(OutOfMemoryError):
            device.install_full_image(self.new)

    def test_ram_released_after_update(self):
        device = ConstrainedDevice(self.old, ram=len(self.in_place) + 8192)
        device.apply_delta_in_place(self.in_place)
        assert device.ram.in_use == 0

    def test_image_crc(self):
        import zlib

        device = ConstrainedDevice(b"hello")
        assert device.image_crc32() == zlib.crc32(b"hello") & 0xFFFFFFFF
