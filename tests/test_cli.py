"""Tests for the ipdelta command-line interface (repro.cli)."""

import json
import random

import pytest

from repro.cli import main
from repro.workloads import make_source_file, mutate


@pytest.fixture
def files(tmp_path):
    rng = random.Random(31)
    ref = make_source_file(rng, 6_000)
    ver = mutate(ref, rng)
    ref_path = tmp_path / "old.bin"
    ver_path = tmp_path / "new.bin"
    ref_path.write_bytes(ref)
    ver_path.write_bytes(ver)
    return tmp_path, ref_path, ver_path, ref, ver


class TestDiffApply:
    def test_sequential_round_trip(self, files, capsys):
        tmp, ref_path, ver_path, ref, ver = files
        delta = tmp / "out.delta"
        rebuilt = tmp / "rebuilt.bin"
        assert main(["diff", str(ref_path), str(ver_path), str(delta)]) == 0
        assert "sequential" in capsys.readouterr().out
        assert main(["apply", str(ref_path), str(delta), str(rebuilt)]) == 0
        assert rebuilt.read_bytes() == ver

    def test_in_place_round_trip(self, files):
        tmp, ref_path, ver_path, ref, ver = files
        delta = tmp / "out.ipdelta"
        rebuilt = tmp / "rebuilt.bin"
        assert main(["diff", "--in-place", str(ref_path), str(ver_path),
                     str(delta)]) == 0
        assert main(["apply", "--in-place", str(ref_path), str(delta),
                     str(rebuilt)]) == 0
        assert rebuilt.read_bytes() == ver

    @pytest.mark.parametrize("algorithm", ["greedy", "onepass", "correcting"])
    def test_algorithms(self, files, algorithm):
        tmp, ref_path, ver_path, ref, ver = files
        delta = tmp / "d"
        rebuilt = tmp / "r"
        assert main(["diff", "--algorithm", algorithm, str(ref_path),
                     str(ver_path), str(delta)]) == 0
        assert main(["apply", str(ref_path), str(delta), str(rebuilt)]) == 0
        assert rebuilt.read_bytes() == ver

    def test_missing_file_is_error(self, tmp_path, capsys):
        rc = main(["diff", str(tmp_path / "none"), str(tmp_path / "none2"),
                   str(tmp_path / "out")])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestConvertInspect:
    def test_convert_then_apply_in_place(self, files, capsys):
        tmp, ref_path, ver_path, ref, ver = files
        seq = tmp / "seq.delta"
        conv = tmp / "conv.delta"
        rebuilt = tmp / "rebuilt"
        main(["diff", str(ref_path), str(ver_path), str(seq)])
        assert main(["convert", str(ref_path), str(seq), str(conv),
                     "--policy", "constant"]) == 0
        out = capsys.readouterr().out
        assert "policy" in out and "constant" in out
        assert main(["apply", "--in-place", str(ref_path), str(conv),
                     str(rebuilt)]) == 0
        assert rebuilt.read_bytes() == ver

    def test_inspect_reports_safety(self, files, capsys):
        tmp, ref_path, ver_path, ref, ver = files
        delta = tmp / "d"
        main(["diff", "--in-place", str(ref_path), str(ver_path), str(delta)])
        assert main(["inspect", str(delta)]) == 0
        out = capsys.readouterr().out
        assert "in-place safe" in out
        assert "yes" in out
        assert "CRWI edges" in out


class TestCorpusCommand:
    def test_materializes_tree(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        assert main(["corpus", str(out_dir), "--packages", "2",
                     "--releases", "2", "--scale", "0.1", "--seed", "3"]) == 0
        r0_files = list((out_dir / "r0").rglob("*"))
        r1_files = list((out_dir / "r1").rglob("*"))
        assert any(p.is_file() for p in r0_files)
        assert len([p for p in r0_files if p.is_file()]) == \
            len([p for p in r1_files if p.is_file()])
        assert "release" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["--version"])
        assert "ipdelta" in capsys.readouterr().out


class TestComposeCommand:
    def test_compose_chain(self, tmp_path):
        import random

        from repro.workloads import make_source_file, mutate

        rng = random.Random(8)
        v0 = make_source_file(rng, 4_000)
        v1 = mutate(v0, rng)
        v2 = mutate(v1, rng)
        paths = {}
        for name, data in (("v0", v0), ("v1", v1), ("v2", v2)):
            paths[name] = tmp_path / name
            paths[name].write_bytes(data)
        d1, d2, dc = tmp_path / "d1", tmp_path / "d2", tmp_path / "dc"
        out = tmp_path / "out"
        assert main(["diff", str(paths["v0"]), str(paths["v1"]), str(d1)]) == 0
        assert main(["diff", str(paths["v1"]), str(paths["v2"]), str(d2)]) == 0
        assert main(["compose", str(d1), str(d2), str(dc)]) == 0
        assert main(["apply", str(paths["v0"]), str(dc), str(out)]) == 0
        assert out.read_bytes() == v2


class TestTreeCommands:
    def test_tree_diff_and_patch(self, tmp_path, capsys):
        import random

        from repro.workloads import make_source_file, mutate

        rng = random.Random(12)
        old_root = tmp_path / "old"
        new_root = tmp_path / "new"
        for root in (old_root, new_root):
            (root / "src").mkdir(parents=True)
        base = make_source_file(rng, 4_000)
        (old_root / "src/app.c").write_bytes(base)
        (old_root / "LICENSE").write_bytes(b"MIT\n" * 20)
        (new_root / "src/app.c").write_bytes(mutate(base, rng))
        (new_root / "COPYING").write_bytes(b"MIT\n" * 20)  # rename
        (new_root / "src/extra.c").write_bytes(make_source_file(rng, 1_000))

        bundle = tmp_path / "up.bundle"
        assert main(["tree-diff", str(old_root), str(new_root), str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "1 delta" in out and "1 rename" in out

        assert main(["tree-patch", str(old_root), str(bundle)]) == 0
        # The old tree now equals the new tree.
        for path in new_root.rglob("*"):
            if path.is_file():
                rel = path.relative_to(new_root)
                assert (old_root / rel).read_bytes() == path.read_bytes(), rel
        assert not (old_root / "LICENSE").exists()


class TestReportCommand:
    def test_report_runs_and_mentions_every_section(self, capsys):
        assert main(["report", "--scale", "0.08", "--packages", "2",
                     "--releases", "2"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Figure 2", "Figure 3", "runtime",
                       "compression factors", "paper"):
            assert marker in out, marker


class TestPipelineCommand:
    def test_batch_encode_and_round_trip(self, tmp_path, capsys):
        import random

        from repro.workloads import make_source_file, mutate

        rng = random.Random(44)
        reference = make_source_file(rng, 5_000)
        ref_path = tmp_path / "base.bin"
        ref_path.write_bytes(reference)
        versions = []
        for i in range(3):
            data = mutate(reference, rng)
            path = tmp_path / ("v%d.bin" % i)
            path.write_bytes(data)
            versions.append((path, data))

        out_dir = tmp_path / "deltas"
        argv = ["pipeline", str(ref_path)]
        argv += [str(p) for p, _ in versions]
        argv += ["--output-dir", str(out_dir), "--workers", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache hit rate 100%" in out
        assert "encoded 3 deltas" in out

        for path, data in versions:
            payload = (out_dir / (path.name + ".ipd")).read_bytes()
            rebuilt = tmp_path / (path.name + ".out")
            assert main(["apply", "--in-place", str(ref_path),
                         str(out_dir / (path.name + ".ipd")),
                         str(rebuilt)]) == 0
            assert rebuilt.read_bytes() == data
            assert payload  # non-empty delta written

    def test_duplicate_basenames_get_serial_suffixes(self, tmp_path, capsys):
        import random

        from repro.workloads import make_source_file, mutate

        rng = random.Random(45)
        reference = make_source_file(rng, 3_000)
        ref_path = tmp_path / "base.bin"
        ref_path.write_bytes(reference)
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        for d in (a_dir, b_dir):
            d.mkdir()
            (d / "same.bin").write_bytes(mutate(reference, rng))

        out_dir = tmp_path / "deltas"
        assert main(["pipeline", str(ref_path), str(a_dir / "same.bin"),
                     str(b_dir / "same.bin"), "--output-dir", str(out_dir),
                     "--executor", "serial"]) == 0
        assert (out_dir / "same.bin.ipd").exists()
        assert (out_dir / "same.bin.2.ipd").exists()


class TestPipelineResilienceCLI:
    def _make_inputs(self, tmp_path, count=3, seed=46):
        rng = random.Random(seed)
        reference = make_source_file(rng, 4_000)
        ref_path = tmp_path / "base.bin"
        ref_path.write_bytes(reference)
        paths = []
        for i in range(count):
            path = tmp_path / ("v%d.bin" % i)
            path.write_bytes(mutate(reference, rng))
            paths.append(path)
        return ref_path, paths

    def test_fault_plan_quarantine_exits_nonzero(self, tmp_path, capsys):
        ref_path, paths = self._make_inputs(tmp_path)
        out_dir = tmp_path / "deltas"
        argv = (["pipeline", str(ref_path)] + [str(p) for p in paths]
                + ["--output-dir", str(out_dir), "--executor", "serial",
                   "--retries", "1", "--fallback", "greedy,raw",
                   "--fault-plan", "convert.evict:count=99"])
        assert main(argv) == 1
        captured = capsys.readouterr()
        assert "resilience: 0 ok" in captured.out
        assert "quarantined" in captured.err
        # No partial payloads for quarantined jobs.
        assert not list(out_dir.glob("*.ipd"))

    def test_fallback_recovers_and_round_trips(self, tmp_path, capsys):
        ref_path, paths = self._make_inputs(tmp_path)
        out_dir = tmp_path / "deltas"
        argv = (["pipeline", str(ref_path)] + [str(p) for p in paths]
                + ["--output-dir", str(out_dir), "--executor", "serial",
                   "--fallback", "raw",
                   "--fault-plan", "diff.worker:count=99"])
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resilience: 3 ok" in out
        assert "3 fell back" in out
        for path in paths:
            rebuilt = tmp_path / (path.name + ".out")
            assert main(["apply", "--in-place", str(ref_path),
                         str(out_dir / (path.name + ".ipd")),
                         str(rebuilt)]) == 0
            assert rebuilt.read_bytes() == path.read_bytes()

    def test_retry_summary_counts_retried_jobs(self, tmp_path, capsys):
        ref_path, paths = self._make_inputs(tmp_path)
        out_dir = tmp_path / "deltas"
        argv = (["pipeline", str(ref_path)] + [str(p) for p in paths]
                + ["--output-dir", str(out_dir), "--executor", "serial",
                   "--retries", "1", "--fault-plan", "diff.worker:nth=1"])
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resilience: 3 ok, 3 retried, 0 fell back, 0 quarantined" in out

    def test_bad_fault_plan_is_a_usage_error(self, tmp_path, capsys):
        ref_path, paths = self._make_inputs(tmp_path, count=1)
        argv = (["pipeline", str(ref_path), str(paths[0]),
                 "--output-dir", str(tmp_path / "d"),
                 "--fault-plan", "diff.worker:banana=1"])
        assert main(argv) == 1
        assert "error:" in capsys.readouterr().err


class TestPipelineJson:
    def test_json_artifact_shares_batch_schema(self, tmp_path, capsys):
        rng = random.Random(7)
        ref = make_source_file(rng, 4_000)
        ref_path = tmp_path / "ref.bin"
        ref_path.write_bytes(ref)
        paths = []
        for i in range(3):
            path = tmp_path / ("v%d.bin" % i)
            path.write_bytes(mutate(ref, rng))
            paths.append(path)
        out_json = tmp_path / "summary.json"
        argv = (["pipeline", str(ref_path)] + [str(p) for p in paths]
                + ["--output-dir", str(tmp_path / "deltas"),
                   "--executor", "serial", "--json", str(out_json)])
        assert main(argv) == 0
        assert str(out_json) in capsys.readouterr().out
        data = json.loads(out_json.read_text())
        assert data["schema"] == "repro.pipeline.batch/1"
        assert data["jobs"] == 3
        assert data["ok"] == 3
        assert data["quarantined"] == []
        assert data["delta_bytes"] > 0

    def test_json_records_faults(self, tmp_path):
        rng = random.Random(8)
        ref = make_source_file(rng, 4_000)
        ref_path = tmp_path / "ref.bin"
        ref_path.write_bytes(ref)
        ver_path = tmp_path / "v.bin"
        ver_path.write_bytes(mutate(ref, rng))
        out_json = tmp_path / "summary.json"
        argv = ["pipeline", str(ref_path), str(ver_path),
                "--output-dir", str(tmp_path / "deltas"),
                "--executor", "serial", "--retries", "1",
                "--fault-plan", "diff.worker:nth=1",
                "--json", str(out_json)]
        assert main(argv) == 0
        data = json.loads(out_json.read_text())
        assert data["ok"] == 1
        assert data["fault_events"] == 1
        assert len(data["retried"]) == 1


class TestCampaignCLI:
    def test_smoke_with_faults_writes_artifact(self, tmp_path, capsys):
        art = tmp_path / "campaign.json"
        argv = ["campaign", "--devices", "40", "--size", "2048",
                "--releases", "3", "--seed", "5", "--executor", "serial",
                "--fault-plan",
                "device.power:p=0.1:fuel=600; delta.bitflip:p=0.1",
                "--fault-seed", "11", "--out", str(art)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "campaign: 40 devices" in out
        assert "bandwidth:" in out
        data = json.loads(art.read_text())
        assert data["schema"] == "repro.fleet.campaign/1"
        counters = data["counters"]
        assert counters["devices"] == 40
        assert (counters["updated"] + counters["quarantined"]
                + counters["deferred"]) == 40
        assert data["stages"]

    def test_include_devices_lists_every_terminal_state(self, tmp_path):
        art = tmp_path / "campaign.json"
        argv = ["campaign", "--devices", "10", "--size", "1024",
                "--releases", "2", "--seed", "1", "--out", str(art),
                "--include-devices"]
        assert main(argv) == 0
        data = json.loads(art.read_text())
        assert len(data["devices"]) == 10
        assert all(d["status"] == "updated" for d in data["devices"])

    def test_quarantine_reasons_go_to_stderr(self, tmp_path, capsys):
        argv = ["campaign", "--devices", "8", "--size", "1024",
                "--releases", "2", "--seed", "2",
                "--fault-plan", "storage.bitflip:p=1.0",
                "--retry-budget", "0"]
        assert main(argv) == 0  # quarantines are structured, not silent
        err = capsys.readouterr().err
        assert "quarantined (corruption" in err

    def test_bad_fault_plan_is_a_usage_error(self, capsys):
        argv = ["campaign", "--devices", "4", "--size", "1024",
                "--releases", "2", "--fault-plan", "nonsense.site:p=1"]
        assert main(argv) == 1
        assert "error" in capsys.readouterr().err
