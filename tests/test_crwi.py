"""Unit tests for CRWI digraph construction (repro.core.crwi)."""

import random

import pytest

from repro.analysis.adversarial import figure3_case
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.crwi import (
    CRWIDigraph,
    build_crwi_digraph,
    lemma1_bound,
    read_bytes_bound,
)
from repro.workloads import mutate


def two_cycle_script() -> DeltaScript:
    """Two copies that swap blocks: the smallest cyclic CRWI digraph."""
    return DeltaScript(
        [CopyCommand(4, 0, 4), CopyCommand(0, 4, 4)], version_length=8
    )


class TestBuildDigraph:
    def test_empty_script(self):
        graph = build_crwi_digraph(DeltaScript([], 0))
        assert graph.vertex_count == 0
        assert graph.edge_count == 0

    def test_adds_excluded(self):
        script = DeltaScript(
            [AddCommand(0, b"ab"), CopyCommand(0, 2, 2)], version_length=4
        )
        graph = build_crwi_digraph(script)
        assert graph.vertex_count == 1

    def test_vertices_sorted_by_write_offset(self):
        script = DeltaScript(
            [CopyCommand(0, 10, 2), CopyCommand(5, 0, 2)], version_length=12
        )
        graph = build_crwi_digraph(script)
        assert [v.dst for v in graph.vertices] == [0, 10]

    def test_two_cycle(self):
        graph = build_crwi_digraph(two_cycle_script())
        assert graph.vertex_count == 2
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert not graph.is_acyclic()

    def test_no_self_edges(self):
        # A self-overlapping copy must not produce a self-loop.
        script = DeltaScript([CopyCommand(0, 2, 6)], version_length=8)
        graph = build_crwi_digraph(script)
        assert graph.edge_count == 0

    def test_edge_direction_matches_paper(self):
        # u reads what v writes => edge u -> v (u must run first).
        script = DeltaScript(
            [CopyCommand(8, 0, 4),   # vertex 0: reads [8,11]
             CopyCommand(0, 8, 4)],  # vertex 1: writes [8,11]
            version_length=12,
        )
        graph = build_crwi_digraph(script)
        assert graph.has_edge(0, 1)
        # vertex 1 reads [0,3] which vertex 0 writes: edge 1 -> 0 too.
        assert graph.has_edge(1, 0)

    def test_acyclic_chain(self):
        # Each command reads strictly to the right of everything written
        # after it: shift-left scripts are conflict-free in write order.
        script = DeltaScript(
            [CopyCommand(2, 0, 2), CopyCommand(4, 2, 2), CopyCommand(6, 4, 2)],
            version_length=6,
        )
        graph = build_crwi_digraph(script)
        assert graph.is_acyclic()

    def test_predecessors_mirror_successors(self):
        graph = build_crwi_digraph(figure3_case(8).script)
        for u in range(graph.vertex_count):
            for v in graph.successors[u]:
                assert u in graph.predecessors[v]
        count_via_pred = sum(len(p) for p in graph.predecessors)
        assert count_via_pred == graph.edge_count


class TestCosts:
    def test_cost_model(self):
        graph = build_crwi_digraph(
            DeltaScript([CopyCommand(0, 0, 100)], version_length=100)
        )
        assert graph.cost(0) == 96  # l - |f| with |f| = 4
        assert graph.cost(0, offset_encoding_size=10) == 90

    def test_cost_clamped_positive(self):
        graph = build_crwi_digraph(
            DeltaScript([CopyCommand(0, 0, 2)], version_length=2)
        )
        assert graph.cost(0) == 1

    def test_costs_vector(self):
        graph = build_crwi_digraph(two_cycle_script())
        assert graph.costs() == [1, 1]


class TestSubgraph:
    def test_without_vertices(self):
        graph = build_crwi_digraph(two_cycle_script())
        sub = graph.without_vertices([0])
        assert sub.vertex_count == 1
        assert sub.edge_count == 0
        assert sub.is_acyclic()

    def test_without_nothing(self):
        graph = build_crwi_digraph(figure3_case(6).script)
        sub = graph.without_vertices([])
        assert sub.vertex_count == graph.vertex_count
        assert sub.edge_count == graph.edge_count


class TestLemma1:
    def test_figure3_meets_bound_exactly(self):
        case = figure3_case(12)
        graph = build_crwi_digraph(case.script)
        assert graph.edge_count == lemma1_bound(case.script) == 144

    @pytest.mark.parametrize("seed", range(5))
    def test_bound_on_realistic_deltas(self, seed):
        from repro.delta import correcting_delta

        rng = random.Random(seed)
        ref = rng.randbytes(4_000)
        ver = mutate(ref, rng)
        script = correcting_delta(ref, ver)
        graph = build_crwi_digraph(script)
        assert graph.edge_count <= read_bytes_bound(script)
        assert read_bytes_bound(script) <= lemma1_bound(script)
