"""Tests for the statistical helpers (repro.analysis.stats)."""

import math
import random

import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    fit_power_law,
    paired_sign_test,
)


class TestBootstrapCI:
    def test_point_estimate_is_ratio_of_totals(self):
        ci = bootstrap_ci([10, 20], [100, 100])
        assert ci.estimate == pytest.approx(0.15)

    def test_interval_brackets_estimate(self):
        rng = random.Random(1)
        nums = [rng.uniform(10, 20) for _ in range(50)]
        dens = [100.0] * 50
        ci = bootstrap_ci(nums, dens)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.contains(ci.estimate)

    def test_tighter_with_more_data(self):
        rng = random.Random(2)
        small_n = [rng.uniform(10, 20) for _ in range(8)]
        large_n = [rng.uniform(10, 20) for _ in range(200)]
        small = bootstrap_ci(small_n, [100.0] * 8)
        large = bootstrap_ci(large_n, [100.0] * 200)
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic(self):
        args = ([1, 2, 3, 4], [10, 10, 10, 10])
        assert bootstrap_ci(*args) == bootstrap_ci(*args)

    def test_degenerate_data_gives_point_interval(self):
        ci = bootstrap_ci([5, 5, 5], [50, 50, 50])
        assert ci.low == pytest.approx(0.1)
        assert ci.high == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], [])
        with pytest.raises(ValueError):
            bootstrap_ci([1, 2], [1])
        with pytest.raises(ValueError):
            bootstrap_ci([1], [0])


class TestPowerLawFit:
    def test_recovers_exact_quadratic(self):
        x = [2, 4, 8, 16, 32]
        y = [xi ** 2 for xi in x]
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.scale == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_linear_with_scale(self):
        x = [1, 10, 100, 1000]
        y = [3 * xi for xi in x]
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.0)
        assert fit.scale == pytest.approx(3.0)

    def test_noisy_fit_reports_r_squared(self):
        rng = random.Random(3)
        x = [float(v) for v in range(10, 200, 10)]
        y = [5 * xi ** 1.5 * rng.uniform(0.9, 1.1) for xi in x]
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5, abs=0.1)
        assert fit.r_squared > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])


class TestSignTest:
    def test_clear_winner(self):
        a = [1.0] * 20
        b = [2.0] * 20
        result = paired_sign_test(a, b)
        assert result.wins == 20
        assert result.p_value < 1e-4

    def test_no_difference(self):
        rng = random.Random(4)
        a = [rng.random() for _ in range(100)]
        b = list(a)
        rng.shuffle(b)
        result = paired_sign_test(a, b)
        assert result.p_value > 0.01

    def test_ties_discarded(self):
        result = paired_sign_test([1, 1, 1, 0], [1, 1, 1, 1])
        assert result.ties == 3
        assert result.wins == 1
        assert result.n == 1

    def test_all_ties(self):
        result = paired_sign_test([1, 2], [1, 2])
        assert result.p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_sign_test([], [])
        with pytest.raises(ValueError):
            paired_sign_test([1], [1, 2])


class TestOnRealMeasurements:
    def test_figure3_scaling_fit(self):
        """The Figure 3 family's edges grow quadratically in |C| and
        linearly in L_V — confirmed by exponent fits on real digraphs."""
        from repro.analysis.adversarial import figure3_case
        from repro.core.crwi import build_crwi_digraph

        commands, lengths, edges = [], [], []
        for block in (4, 8, 16, 32, 64):
            case = figure3_case(block)
            graph = build_crwi_digraph(case.script)
            commands.append(len(case.script.commands))
            lengths.append(case.script.version_length)
            edges.append(graph.edge_count)
        vs_commands = fit_power_law(commands, edges)
        vs_length = fit_power_law(lengths, edges)
        assert vs_commands.exponent == pytest.approx(2.0, abs=0.1)
        assert vs_length.exponent == pytest.approx(1.0, abs=0.05)

    def test_policy_sign_test_on_corpus(self, tiny_corpus):
        """Local-min's per-file eviction cost never exceeds... rather,
        wins or ties against constant across the corpus."""
        import repro

        costs_local, costs_const = [], []
        for pair in tiny_corpus.pairs():
            script = repro.diff(pair.reference, pair.version)
            local = repro.make_in_place(script, pair.reference, policy="local-min")
            const = repro.make_in_place(script, pair.reference, policy="constant")
            costs_local.append(local.report.eviction_cost)
            costs_const.append(const.report.eviction_cost)
        result = paired_sign_test(costs_local, costs_const)
        # Local-min must never lose to constant by much more often than
        # it wins; on most corpora it simply never loses.
        assert result.losses <= result.wins + 1
