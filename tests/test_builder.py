"""Unit tests for the shared differencing emitter (repro.delta.builder)."""

import pytest

from repro.core.commands import AddCommand, CopyCommand
from repro.delta.builder import ScriptBuilder


class TestScriptBuilder:
    def test_all_literal(self):
        script = ScriptBuilder(b"hello").finish()
        assert script.commands == [AddCommand(0, b"hello")]
        assert script.version_length == 5

    def test_empty_version(self):
        script = ScriptBuilder(b"").finish()
        assert script.commands == []
        assert script.version_length == 0

    def test_copy_flushes_pending_add(self):
        builder = ScriptBuilder(b"abXXcd")
        builder.emit_copy(10, 2, 2)
        script = builder.finish()
        assert script.commands == [
            AddCommand(0, b"ab"),
            CopyCommand(10, 2, 2),
            AddCommand(4, b"cd"),
        ]

    def test_adjacent_copies(self):
        builder = ScriptBuilder(b"abcd")
        builder.emit_copy(0, 0, 2)
        builder.emit_copy(7, 2, 2)
        script = builder.finish()
        assert script.commands == [CopyCommand(0, 0, 2), CopyCommand(7, 2, 2)]

    def test_backward_extension_into_pending(self):
        # A copy may begin inside the pending literal region.
        builder = ScriptBuilder(b"abcdef")
        builder.cursor = 4
        builder.emit_copy(20, 2, 4)  # dst=2 < cursor but >= add_start
        script = builder.finish()
        assert script.commands == [AddCommand(0, b"ab"), CopyCommand(20, 2, 4)]

    def test_copy_into_committed_region_rejected(self):
        builder = ScriptBuilder(b"abcdef")
        builder.emit_copy(0, 0, 4)
        with pytest.raises(ValueError):
            builder.emit_copy(0, 2, 2)

    def test_pending_length(self):
        builder = ScriptBuilder(b"abcdef")
        assert builder.pending_length(4) == 4
        builder.emit_copy(0, 2, 2)
        assert builder.pending_length(4) == 0
        assert builder.pending_length(6) == 2

    def test_result_is_valid_script(self):
        builder = ScriptBuilder(b"0123456789")
        builder.emit_copy(50, 3, 4)
        script = builder.finish()
        script.validate(reference_length=100)
