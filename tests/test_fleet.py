"""Tests for repro.fleet: campaign driver, crash-point checker, fleet
synthesis — plus the adversarial workload generators and deterministic
backoff jitter that ride along with them."""

import json
import random

import pytest

from repro import diff, make_in_place
from repro.core.apply import apply_delta
from repro.faults import FaultPlan, jitter_draw
from repro.fleet import (
    CAMPAIGN_SCHEMA,
    CampaignReport,
    DeviceOutcome,
    RolloutPolicy,
    check_crash_points,
    check_double_cut,
    check_torn_journal,
    count_write_boundaries,
    make_fleet,
    make_release_train,
    percentile,
    run_campaign,
)
from repro.workloads import (
    ADVERSARIAL_GENERATORS,
    InDelProcess,
    ReplicaSyncProcess,
    indel_arbitrary,
    indel_random,
    replica_sync,
)


# ---------------------------------------------------------------------------
# Adversarial workload generators (Wang et al. InDel, replica-sync)
# ---------------------------------------------------------------------------


class TestInDelWorkloads:
    def test_deterministic_given_rng(self):
        data = random.Random(1).randbytes(4096)
        for name, generator in sorted(ADVERSARIAL_GENERATORS.items()):
            a = generator(data, random.Random(7))
            b = generator(data, random.Random(7))
            assert a == b, name
            assert a != data, name

    def test_round_trips_through_delta(self):
        data = random.Random(2).randbytes(4096)
        for name, generator in sorted(ADVERSARIAL_GENERATORS.items()):
            edited = generator(data, random.Random(9))
            script = diff(data, edited)
            assert bytes(apply_delta(script, data)) == edited, name

    def test_indel_changes_length(self):
        # Insertions and deletions shift the file, unlike the
        # block-rewrite corpus mutators.
        data = random.Random(3).randbytes(4096)
        out = indel_random(data, random.Random(3), edits=200, p_insert=1.0)
        assert len(out) == len(data) + 200
        out = indel_random(data, random.Random(3), edits=200, p_insert=0.0)
        # A deletion drawn at the very end of the file is a no-op, so
        # the shrink is bounded, not exact.
        assert len(data) - 200 <= len(out) < len(data)

    def test_arbitrary_regime_clusters_edits(self):
        data = bytes(4096)  # all zeros: edited bytes are visible
        out = indel_arbitrary(data, random.Random(4), edits=64,
                              p_insert=1.0, window_fraction=0.05)
        touched = [i for i, b in enumerate(out) if b != 0]
        assert touched
        # Every random insertion landed inside one narrow window.
        span = max(touched) - min(touched)
        assert span <= int(len(out) * 0.05) + 64

    def test_replica_sync_is_block_sparse(self):
        process = ReplicaSyncProcess(block_size=256, sparsity=0.05,
                                     parity_blocks=0)
        data = random.Random(5).randbytes(64 * 256)
        out = process.apply(data, random.Random(5))
        assert len(out) == len(data)
        dirty = [
            b for b in range(64)
            if out[b * 256:(b + 1) * 256] != data[b * 256:(b + 1) * 256]
        ]
        assert 1 <= len(dirty) <= 8  # sparse, not a rewrite

    def test_replica_sync_parity_fan_out(self):
        # stripe = 4 data + 1 parity; a data rewrite must recompute its
        # stripe's parity block as the XOR of the stripe's data blocks.
        block, width = 128, 4
        data = random.Random(6).randbytes(block * 10)
        out = replica_sync(data, random.Random(6), block_size=block,
                           sparsity=0.3, stripe_width=width, parity_blocks=1)
        stripe_bytes = block * (width + 1)
        for s in range(len(out) // stripe_bytes):
            base = s * stripe_bytes
            parity = bytearray(block)
            for d in range(width):
                chunk = out[base + d * block: base + (d + 1) * block]
                for i, byte in enumerate(chunk):
                    parity[i] ^= byte
            stored = out[base + width * block: base + stripe_bytes]
            if stored != data[base + width * block: base + stripe_bytes]:
                # Parity was rewritten, so it must equal the stripe XOR.
                assert bytes(parity) == stored

    def test_validation(self):
        with pytest.raises(ValueError):
            InDelProcess(regime="chaotic")
        with pytest.raises(ValueError):
            InDelProcess(p_insert=1.5)
        with pytest.raises(ValueError):
            ReplicaSyncProcess(sparsity=0.0)


# ---------------------------------------------------------------------------
# Fleet synthesis
# ---------------------------------------------------------------------------


class TestFleetSynthesis:
    def test_deterministic(self):
        train = make_release_train(("app",), releases=3, size=1024, seed=4)
        assert make_fleet(50, train, seed=9) == make_fleet(50, train, seed=9)
        assert make_fleet(50, train, seed=9) != make_fleet(50, train, seed=10)

    def test_release_train_deterministic_and_distinct(self):
        a = make_release_train(("app", "kernel"), releases=4, size=2048, seed=1)
        b = make_release_train(("app", "kernel"), releases=4, size=2048, seed=1)
        assert a == b
        for chain in a.values():
            assert len(chain) == 4
            assert len(set(chain)) == 4  # every release differs

    def test_staleness_skew(self):
        train = make_release_train(("app",), releases=6, size=512, seed=2)
        fleet = make_fleet(600, train, seed=2)
        latest = 5
        skips = [latest - d.have for d in fleet]
        assert all(1 <= s <= 5 for s in skips)
        # 1-behind dominates; the deep tail exists but is small.
        assert skips.count(1) > skips.count(5) > 0

    def test_max_skip_cap(self):
        train = make_release_train(("app",), releases=6, size=512, seed=2)
        fleet = make_fleet(100, train, seed=2, max_skip=2)
        assert all(5 - d.have <= 2 for d in fleet)


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

_FAULTY_PLAN = (
    "device.power:p=0.06:fuel=1500; delta.truncate:p=0.04; "
    "delta.bitflip:p=0.04; channel.transmit:p=0.05; storage.bitflip:p=0.01"
)


def _small_campaign(devices=300, seed=7, executor="serial", policy=None,
                    plan=_FAULTY_PLAN, fault_seed=42, **kwargs):
    train = make_release_train(("app", "kernel"), releases=4, size=4096,
                               seed=1)
    fleet = make_fleet(devices, train, seed=1)
    fault_plan = FaultPlan.parse(plan, seed=fault_seed) if plan else None
    return run_campaign(train, fleet, policy=policy or RolloutPolicy(),
                        fault_plan=fault_plan, seed=seed, executor=executor,
                        **kwargs)


class TestCampaign:
    def test_ten_thousand_devices_no_silent_failures(self):
        """The acceptance bar: a seeded 10^4-device campaign with power
        cuts and corrupted downloads ends with every device verified
        byte-exact or quarantined with a structured reason."""
        train = make_release_train(("app", "kernel"), releases=3, size=2048,
                                   seed=3)
        fleet = make_fleet(10_000, train, seed=3)
        plan = FaultPlan.parse(_FAULTY_PLAN, seed=13)
        report = run_campaign(train, fleet, policy=RolloutPolicy(),
                              fault_plan=plan, seed=13, executor="serial")
        assert report.devices == 10_000
        assert report.silent_failures() == []
        counters = report.counters
        assert counters["updated"] + counters["quarantined"] \
            + counters["deferred"] == 10_000
        # The fault plan actually bit: cuts and corrupt downloads fired.
        assert counters["power_cuts"] > 50
        assert counters["fault_events"] > 500
        assert counters["updated"] > 9_000
        # Success in run_journaled_session requires the reconstructed
        # image to equal the release bytes, so "updated" == byte-exact;
        # every other status must carry a structured reason.
        for outcome in report.outcomes:
            if outcome.status != "updated":
                assert outcome.reason
                assert outcome.kind in ("corruption", "transient", "")
        # Serialization re-enforces the same invariant.
        artifact = report.to_dict()
        assert artifact["schema"] == CAMPAIGN_SCHEMA
        assert artifact["counters"] == counters

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_counters_identical_across_executors(self, executor):
        baseline = _small_campaign(devices=240, executor="serial")
        other = _small_campaign(devices=240, executor=executor, workers=4)
        assert baseline.counters == other.counters
        assert baseline.bandwidth == other.bandwidth
        # Per-device terminal states match, not just the sums.
        key = lambda r: sorted((o.device, o.status, o.reason)
                               for o in r.outcomes)
        assert key(baseline) == key(other)

    def test_abort_threshold_defers_remainder(self):
        report = _small_campaign(
            devices=200, plan="channel.transmit:p=1.0",
            policy=RolloutPolicy(retry_budget=0))
        counters = report.counters
        assert counters["updated"] == 0
        assert report.stages[0].aborted
        assert counters["deferred"] > 0
        assert counters["quarantined"] + counters["deferred"] == 200
        for outcome in report.outcomes:
            if outcome.status == "deferred":
                assert "aborted at stage 1" in outcome.reason
            elif outcome.status == "quarantined":
                assert outcome.kind == "transient"
                assert "retry budget exhausted" in outcome.reason
        assert report.silent_failures() == []

    def test_bandwidth_and_latency_accounting(self):
        report = _small_campaign(devices=120, plan=None)
        bandwidth = report.bandwidth
        assert bandwidth["full_image_bytes"] > 0
        assert 0.0 < bandwidth["savings_ratio"] < 1.0
        assert bandwidth["saved_bytes"] == (
            bandwidth["full_image_bytes"] - bandwidth["delta_bytes_sent"])
        latency = report.latency
        assert 0.0 < latency["p50_seconds"] <= latency["p99_seconds"]

    def test_chain_composition_payloads_cover_skips(self):
        # Devices more than one release behind get a composed payload,
        # and the cohort map shows one entry per (package, have).
        report = _small_campaign(devices=150, plan=None)
        assert any("@0->" in key for key in report.cohorts)
        assert all(size > 0 for size in report.cohorts.values())

    def test_direct_encode_shares_pipeline_schema(self):
        report = _small_campaign(
            devices=100, plan=None, policy=RolloutPolicy(encode="direct"))
        assert report.counters["updated"] == 100
        assert len(report.encode_batches) == 1
        summary = report.encode_batches[0]
        assert summary["schema"] == "repro.pipeline.batch/1"
        assert summary["ok"] == summary["jobs"] == len(report.cohorts)

    def test_compose_and_direct_both_install_exact_bytes(self):
        compose = _small_campaign(devices=80, plan=None)
        direct = _small_campaign(devices=80, plan=None,
                                 policy=RolloutPolicy(encode="direct"))
        assert compose.counters["updated"] == 80
        assert direct.counters["updated"] == 80

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RolloutPolicy(stages=(0.5, 0.1, 1.0)).validate()
        with pytest.raises(ValueError):
            RolloutPolicy(stages=(0.5,)).validate()
        with pytest.raises(ValueError):
            RolloutPolicy(encode="magic").validate()
        with pytest.raises(ValueError):
            _small_campaign(devices=10, executor="quantum")

    def test_artifact_round_trip(self, tmp_path):
        report = _small_campaign(devices=60)
        path = tmp_path / "campaign.json"
        report.write(str(path), include_devices=True)
        data = json.loads(path.read_text())
        assert data["schema"] == CAMPAIGN_SCHEMA
        assert len(data["devices"]) == 60
        assert data["counters"] == report.counters


class TestReportInvariants:
    def test_silent_failure_refuses_serialization(self):
        outcome = DeviceOutcome(device="d", package="p", have=0, want=1,
                                status="quarantined", reason="")
        with pytest.raises(ValueError, match="silent failure"):
            outcome.to_dict()
        outcome.reason = "why"
        assert outcome.to_dict()["reason"] == "why"

    def test_unknown_status_refused(self):
        outcome = DeviceOutcome(device="d", package="p", have=0, want=1,
                                status="mystery", reason="r")
        with pytest.raises(ValueError, match="unknown status"):
            outcome.to_dict()

    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0
        assert percentile([], 50.0) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 150.0)


# ---------------------------------------------------------------------------
# Crash-point recovery checker
# ---------------------------------------------------------------------------


def _overlap_script():
    """Multi-segment update with self-overlapping copies (backup records)."""
    r = random.Random(5)
    old = bytearray(r.randbytes(2400))
    new = bytearray(old)
    new[0:500] = old[150:650]       # overlapping copy
    new[700:1100] = old[800:1200]   # another shifted region
    new[1200:1350] = r.randbytes(150)
    old, new = bytes(old), bytes(new)
    result = make_in_place(diff(old, new), old)
    return result.script, old, new


def _scratch_script():
    """Swap cycle routed through scratch (spill/fill records)."""
    r = random.Random(6)
    old = bytearray(r.randbytes(1536))
    new = bytearray(old)
    new[0:384] = old[384:768]
    new[384:768] = old[0:384]
    new[900:940] = r.randbytes(40)
    old, new = bytes(old), bytes(new)
    result = make_in_place(diff(old, new), old, scratch_budget=512)
    assert result.script.scratch_length > 0
    return result.script, old, new


class TestCrashPoints:
    def test_exhaustive_enumeration_passes_every_boundary(self):
        """Acceptance: every journal write boundary of a multi-segment
        update resumes to the exact bytes."""
        kinds = set()
        for script, old, new in (_overlap_script(), _scratch_script()):
            report = check_crash_points(script, old, new, chunk_size=96)
            assert report.ok, report.failures[:5]
            assert report.checked == report.boundaries > 0
            assert report.exact == report.checked  # byte-exact everywhere
            assert report.halted == 0  # clean cuts never merely "halt"
            kinds.update(report.record_kinds)
        # Across the two scripts every journal record kind was covered.
        assert kinds == {"state", "scratch", "backup"}

    def test_boundary_count_matches_written_bytes(self):
        script, old, new = _overlap_script()
        boundaries = count_write_boundaries(script, old, chunk_size=96)
        assert boundaries >= len(new) - sum(
            1 for a, b in zip(old, new) if a == b
        )  # at least every changed byte is written

    def test_double_cut_recovery_is_exact(self):
        """Satellite: recovery interrupted by a second power cut still
        lands byte-exact at every sampled (first, second) boundary pair."""
        for script, old, new in (_overlap_script(), _scratch_script()):
            report = check_double_cut(script, old, new, chunk_size=96,
                                      first_stride=53, second_stride=47)
            assert report.ok, report.failures[:5]
            assert report.checked > 100
            assert report.exact == report.checked

    def test_torn_journal_contract(self):
        """Every journal-sector truncation either recovers or halts with
        a structured report — wrong bytes are always detected."""
        script, old, new = _overlap_script()
        boundaries = count_write_boundaries(script, old, chunk_size=96)
        for fuel in (1, boundaries // 3, boundaries - 2):
            report = check_torn_journal(script, old, new, fuel=fuel,
                                        chunk_size=96)
            assert report.ok, report.failures[:5]
            assert report.checked == report.boundaries + 1
            assert report.exact + report.halted == report.checked

    def test_checker_rejects_bad_fuel(self):
        script, old, new = _overlap_script()
        with pytest.raises(ValueError):
            check_torn_journal(script, old, new, fuel=10 ** 9)
        with pytest.raises(ValueError):
            check_crash_points(script, old, new, stride=0)


# ---------------------------------------------------------------------------
# Deterministic backoff jitter (satellite)
# ---------------------------------------------------------------------------


class TestDeterministicJitter:
    def test_jitter_draw_is_pure(self):
        assert jitter_draw(7, "job-1", 3) == jitter_draw(7, "job-1", 3)
        assert 0.0 <= jitter_draw(7, "job-1", 3) < 1.0
        assert jitter_draw(7, "job-1", 3) != jitter_draw(7, "job-1", 4)
        assert jitter_draw(7, "job-1", 3) != jitter_draw(7, "job-2", 3)
        assert jitter_draw(7, "job-1", 3) != jitter_draw(8, "job-1", 3)

    def test_pipeline_backoff_derives_from_fault_seed(self, monkeypatch):
        from repro.pipeline import DeltaPipeline, PipelineConfig, PipelineJob
        import repro.pipeline.executor as executor_module

        r = random.Random(0)
        reference = r.randbytes(2048)
        version = reference[:1000] + r.randbytes(64) + reference[1000:]
        plan_text = "diff.worker:count=2"

        def run_once(executor):
            delays = []
            monkeypatch.setattr(executor_module.time, "sleep", delays.append)
            config = PipelineConfig(
                executor=executor, retries=3, backoff_base=0.25,
                backoff_factor=2.0, backoff_jitter=0.5,
                fault_plan=FaultPlan.parse(plan_text, seed=99),
            )
            with DeltaPipeline(config) as pipeline:
                batch = pipeline.run(
                    [PipelineJob(reference, version, "job-a")])
            assert batch.ok_jobs == 1
            assert batch.results[0].report.attempts == 3
            return delays

        serial = run_once("serial")
        threaded = run_once("thread")
        assert serial and serial == threaded
        # The delays are exactly the pure-function schedule.
        expected = [
            min(1.0, 0.25 * (2.0 ** (attempt - 1)))
            * (1.0 + 0.5 * jitter_draw(99, "job-a", attempt))
            for attempt in (1, 2)
        ]
        assert serial == pytest.approx(expected)

    def test_updater_backoff_derives_from_fault_seed(self, monkeypatch):
        import repro.device.updater as updater_module
        from repro.device import UpdateServer, get_channel, \
            run_journaled_update

        server = UpdateServer()
        r = random.Random(1)
        old = r.randbytes(2048)
        new = old[:512] + r.randbytes(128) + old[512 + 128:]
        server.publish("pkg", old)
        server.publish("pkg", new)

        def run_once():
            delays = []
            monkeypatch.setattr(updater_module.time, "sleep", delays.append)
            outcome = run_journaled_update(
                server, get_channel("modem-56k"), "pkg", have=0,
                fault_plan=FaultPlan.parse(
                    "channel.transmit:count=2", seed=5),
                backoff_base=0.1, backoff_jitter=1.0,
            )
            assert outcome.succeeded
            return delays

        first = run_once()
        assert first == run_once()
        expected = [
            0.1 * (2.0 ** (attempt - 1))
            * (1.0 + 1.0 * jitter_draw(5, "pkg", attempt))
            for attempt in (1, 2)
        ]
        assert first == pytest.approx(expected)
