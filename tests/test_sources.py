"""Unit tests for synthetic content generators (repro.workloads.sources)."""

import random

from repro.workloads.sources import (
    GENERATORS,
    make_binary_blob,
    make_changelog,
    make_source_file,
)


class TestSourceFile:
    def test_size_roughly_met(self):
        data = make_source_file(random.Random(1), 10_000)
        assert 10_000 <= len(data) <= 12_000

    def test_ascii_and_line_structured(self):
        data = make_source_file(random.Random(2), 4_000)
        text = data.decode("ascii")
        assert text.count("\n") > 50
        assert "#include" in text

    def test_deterministic(self):
        assert make_source_file(random.Random(3), 3_000) == \
            make_source_file(random.Random(3), 3_000)

    def test_internal_repetition(self):
        # Real source repeats identifiers; the compressibility the delta
        # algorithms rely on needs repeated 16-byte strings.
        data = make_source_file(random.Random(4), 20_000)
        seeds = {bytes(data[i:i + 16]) for i in range(0, len(data) - 16, 16)}
        assert len(seeds) < (len(data) // 16)  # at least one repeat


class TestBinaryBlob:
    def test_exact_size(self):
        data = make_binary_blob(random.Random(1), 30_000)
        assert len(data) == 30_000

    def test_header_magic(self):
        data = make_binary_blob(random.Random(2), 1_000)
        assert data[:4] == b"\x7fBIN"

    def test_deterministic(self):
        assert make_binary_blob(random.Random(5), 5_000) == \
            make_binary_blob(random.Random(5), 5_000)

    def test_not_trivially_compressible(self):
        import zlib

        data = make_binary_blob(random.Random(6), 40_000)
        # Machine code compresses somewhat but not like text.
        assert len(zlib.compress(data)) > len(data) * 0.3


class TestChangelog:
    def test_newest_first(self):
        data = make_changelog(random.Random(1), 5_000).decode("ascii")
        dates = [line.split()[0] for line in data.splitlines()
                 if line[:4].isdigit()]
        assert dates == sorted(dates, reverse=True)

    def test_grows_by_prepending(self):
        # Regenerating with the same seed and a larger target yields a
        # changelog sharing its old suffix — the realistic diff pattern.
        small = make_changelog(random.Random(2), 2_000)
        large = make_changelog(random.Random(2), 4_000)
        assert large.endswith(small[-500:])


class TestRegistry:
    def test_all_kinds_present(self):
        assert set(GENERATORS) == {"source", "binary", "doc"}
