"""Unit tests for the deterministic fault-injection plane (repro.faults)."""

import pickle

import pytest

from repro.exceptions import (
    InjectedFault,
    StageTimeoutError,
    TransmissionError,
)
from repro.faults import FaultPlan, FaultSpec, describe_failure


class TestFaultSpec:
    def test_nth_fires_exactly_once(self):
        spec = FaultSpec("diff.worker", nth=3)
        fired = [spec.fires(0, "job", i) for i in range(1, 6)]
        assert fired == [False, False, True, False, False]

    def test_count_fires_on_the_prefix(self):
        spec = FaultSpec("diff.worker", count=2)
        fired = [spec.fires(0, "job", i) for i in range(1, 5)]
        assert fired == [True, True, False, False]

    def test_triggers_compose_with_or(self):
        spec = FaultSpec("diff.worker", nth=4, count=1)
        fired = [spec.fires(0, "job", i) for i in range(1, 6)]
        assert fired == [True, False, False, True, False]

    def test_probability_is_deterministic(self):
        spec = FaultSpec("diff.worker", probability=0.5)
        first = [spec.fires(1, "job", i) for i in range(1, 40)]
        second = [spec.fires(1, "job", i) for i in range(1, 40)]
        assert first == second
        assert any(first) and not all(first)

    def test_probability_depends_on_seed_and_scope(self):
        spec = FaultSpec("diff.worker", probability=0.5)
        base = [spec.fires(1, "job", i) for i in range(1, 40)]
        other_seed = [spec.fires(2, "job", i) for i in range(1, 40)]
        other_scope = [spec.fires(1, "other", i) for i in range(1, 40)]
        assert base != other_seed
        assert base != other_scope

    def test_never_firing_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("diff.worker")

    def test_bad_error_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("diff.worker", nth=1, error="gremlins")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("diff.worker", probability=1.5)

    def test_injected_error_carries_site_and_index(self):
        spec = FaultSpec("convert.evict", nth=2)
        exc = spec.build_error("v0", 2)
        assert isinstance(exc, InjectedFault)
        assert exc.site == "convert.evict"
        assert exc.index == 2

    def test_error_kind_selection(self):
        timeout = FaultSpec("diff.worker", nth=1, error="timeout")
        transmit = FaultSpec("channel.transmit", nth=1, error="transmission")
        assert isinstance(timeout.build_error("", 1), StageTimeoutError)
        assert isinstance(transmit.build_error("", 1), TransmissionError)


class TestFaultPlan:
    def test_internal_counter_is_per_site_and_scope(self):
        plan = FaultPlan([FaultSpec("diff.worker", nth=2)])
        plan.check("diff.worker", scope="a")  # call 1: no fire
        with pytest.raises(InjectedFault):
            plan.check("diff.worker", scope="a")  # call 2: fires
        # A different scope has its own counter.
        plan.check("diff.worker", scope="b")
        # A different site too.
        plan.check("convert.evict", scope="a")
        plan.check("convert.evict", scope="a")

    def test_explicit_index_bypasses_the_counter(self):
        plan = FaultPlan([FaultSpec("diff.worker", nth=5)])
        plan.check("diff.worker", scope="a", index=4)
        with pytest.raises(InjectedFault):
            plan.check("diff.worker", scope="a", index=5)

    def test_records_track_fired_faults(self):
        plan = FaultPlan([FaultSpec("diff.worker", count=1)])
        with pytest.raises(InjectedFault):
            plan.check("diff.worker", scope="v0", index=1)
        plan.check("diff.worker", scope="v0", index=2)
        assert len(plan.records) == 1
        record = plan.records[0]
        assert (record.site, record.scope, record.index) == ("diff.worker", "v0", 1)
        assert "diff.worker[v0]" in record.describe()

    def test_reset_clears_counters_and_records(self):
        plan = FaultPlan([FaultSpec("diff.worker", nth=1)])
        with pytest.raises(InjectedFault):
            plan.check("diff.worker")
        plan.reset()
        assert plan.records == []
        with pytest.raises(InjectedFault):
            plan.check("diff.worker")  # counter restarted at 1

    def test_plan_survives_pickling(self):
        plan = FaultPlan(
            [FaultSpec("diff.worker", probability=0.5)], seed=11
        )
        clone = pickle.loads(pickle.dumps(plan))
        decisions = [plan.firing_spec("diff.worker", "v0", i) is not None
                     for i in range(1, 30)]
        cloned = [clone.firing_spec("diff.worker", "v0", i) is not None
                  for i in range(1, 30)]
        assert decisions == cloned

    def test_power_fuel(self):
        plan = FaultPlan([
            FaultSpec("device.power", nth=1, error="power", fuel=300),
            FaultSpec("device.power", nth=2, error="power"),
        ])
        assert plan.power_fuel("pkg", 1) == 300
        assert plan.power_fuel("pkg", 2) == 0  # firing spec without fuel
        assert plan.power_fuel("pkg", 3) is None  # power stays on
        assert len(plan.records) == 2

    def test_describe_lists_every_spec(self):
        plan = FaultPlan([
            FaultSpec("diff.worker", nth=1),
            FaultSpec("channel.transmit", probability=0.25,
                      error="transmission"),
        ])
        lines = plan.describe()
        assert len(lines) == 2
        assert "nth=1" in lines[0]
        assert "p=0.25" in lines[1] and "transmission" in lines[1]


class TestFaultPlanParse:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "diff.worker:nth=2:error=timeout;convert.evict:p=0.5", seed=9
        )
        assert plan.seed == 9
        assert len(plan) == 2
        assert plan.specs[0] == FaultSpec("diff.worker", nth=2, error="timeout")
        assert plan.specs[1].probability == 0.5
        assert plan.specs[1].error == "injected"

    def test_parse_comma_separator_and_fuel(self):
        plan = FaultPlan.parse("device.power:nth=1:fuel=128,diff.worker:count=3")
        assert plan.specs[0].error == "power"
        assert plan.specs[0].fuel == 128
        assert plan.specs[1].count == 3

    def test_parse_defaults_transmission_for_channel_site(self):
        plan = FaultPlan.parse("channel.transmit:count=1")
        assert plan.specs[0].error == "transmission"

    def test_serving_sites_are_known(self):
        from repro.faults.plan import KNOWN_SITES
        for site in ("serve.accept", "serve.frame", "client.recv"):
            assert site in KNOWN_SITES

    def test_parse_defaults_for_serving_sites(self):
        # The network plane mirrors the storage plane's defaults: drops
        # are transmission errors, frame damage is a bit flip.
        plan = FaultPlan.parse(
            "serve.accept:nth=1;client.recv:p=0.5;serve.frame:count=2")
        assert plan.specs[0].error == "transmission"
        assert plan.specs[1].error == "transmission"
        assert plan.specs[2].error == "bitflip"

    def test_serving_sites_fire_deterministically(self):
        plan = FaultPlan.parse("serve.accept:nth=2", seed=5)
        plan.check("serve.accept", scope="serve", index=1)
        with pytest.raises(TransmissionError):
            plan.check("serve.accept", scope="serve", index=2)
        # Same (seed, site, scope, index) -> same decision, always.
        with pytest.raises(TransmissionError):
            plan.check("serve.accept", scope="serve", index=2)

    def test_serve_frame_corruption_spec(self):
        plan = FaultPlan.parse("serve.frame:nth=1", seed=5)
        spec = plan.corruption("serve.frame", "pkg|abc", 1)
        assert spec is not None and spec.error == "bitflip"
        offset = plan.draw_offset("serve.frame", "pkg|abc", 1, 100)
        assert 0 <= offset < 100
        assert offset == plan.draw_offset("serve.frame", "pkg|abc", 1, 100)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("diff.worker")  # no trigger
        with pytest.raises(ValueError):
            FaultPlan.parse("diff.worker:wat=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("diff.worker:nth")  # not key=value
        with pytest.raises(ValueError):
            FaultPlan.parse("")
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("diff.workr:count=1")  # typo'd site


class TestDescribeFailure:
    def test_canonical_format(self):
        assert describe_failure(ValueError("boom")) == "ValueError: boom"
        exc = InjectedFault("fault at diff.worker", site="diff.worker", index=1)
        assert describe_failure(exc) == "InjectedFault: fault at diff.worker"
