"""Tests for the exact block-move differ (repro.delta.tichy)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.apply import apply_delta
from repro.delta.tichy import SuffixAutomaton, tichy_delta
from repro.workloads import mutate


class TestSuffixAutomaton:
    def test_contains_all_substrings(self):
        data = b"abcabxabcd"
        sam = SuffixAutomaton(data)
        for i in range(len(data)):
            for j in range(i + 1, len(data) + 1):
                assert sam.contains(data[i:j]), data[i:j]

    def test_rejects_non_substrings(self):
        sam = SuffixAutomaton(b"banana")
        for needle in (b"bananas", b"nab", b"aa", b"x"):
            assert not sam.contains(needle)

    def test_state_count_bound(self):
        rng = random.Random(1)
        data = rng.randbytes(500)
        sam = SuffixAutomaton(data)
        assert sam.state_count <= 2 * len(data)

    def test_longest_match_exact(self):
        sam = SuffixAutomaton(b"the quick brown fox")
        length, src = sam.longest_match(b"xxquick brownxx", 2)
        assert length == len("quick brown")
        assert b"the quick brown fox"[src:src + length] == b"quick brown"

    def test_longest_match_absent_byte(self):
        sam = SuffixAutomaton(b"aaaa")
        assert sam.longest_match(b"zzz", 0) == (0, -1)

    def test_first_occurrence_reported(self):
        sam = SuffixAutomaton(b"abXab")
        length, src = sam.longest_match(b"ab", 0)
        assert (length, src) == (2, 0)  # first of the two occurrences

    @given(data=st.binary(min_size=1, max_size=120),
           probe=st.binary(min_size=1, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_contains_matches_in_operator(self, data, probe):
        assert SuffixAutomaton(data).contains(probe) == (probe in data)

    @given(data=st.binary(min_size=1, max_size=100),
           start=st.integers(0, 80),
           version=st.binary(min_size=1, max_size=100))
    @settings(max_examples=150, deadline=None)
    def test_longest_match_is_maximal_and_correct(self, data, start, version):
        if start >= len(version):
            return
        sam = SuffixAutomaton(data)
        length, src = sam.longest_match(version, start)
        if length:
            assert bytes(data[src:src + length]) == bytes(version[start:start + length])
        # Maximality: one more byte must not be a substring.
        if start + length < len(version):
            assert not sam.contains(version[start:start + length + 1])


class TestTichyDelta:
    def test_round_trip(self, sample_pair):
        ref, ver = sample_pair
        script = tichy_delta(ref, ver)
        script.validate(reference_length=len(ref))
        assert apply_delta(script, ref) == ver

    def test_pure_copy_covering_when_possible(self):
        # Every version byte occurs in the reference: no adds at all.
        ref = bytes(range(256))
        ver = bytes([5, 200, 17, 3]) * 10
        script = tichy_delta(ref, ver)
        assert script.added_bytes == 0

    def test_adds_only_for_absent_bytes(self):
        ref = b"abcabc"
        ver = b"abcZabc"
        script = tichy_delta(ref, ver)
        assert script.added_bytes == 1  # just the Z

    def test_copy_count_is_minimal_on_known_case(self):
        # Version = two reference blocks swapped; minimal covering is
        # exactly 2 copies, which greedy longest-match must find.
        ref = b"AAAAAAAABBBBBBBB"
        ver = b"BBBBBBBBAAAAAAAA"
        script = tichy_delta(ref, ver)
        assert len(script.copies()) == 2
        assert script.added_bytes == 0

    def test_takes_longest_match(self):
        # A short early match must not shadow the long one.
        ref = b"ab" + b"0123456789abcdefgh"
        ver = b"0123456789abcdefgh"
        script = tichy_delta(ref, ver)
        assert len(script.copies()) == 1
        assert script.copies()[0].src == 2

    def test_min_match_floor(self):
        ref = b"xyxyxy--0123456789"
        ver = b"xy0123456789"
        low = tichy_delta(ref, ver, min_match=1)
        high = tichy_delta(ref, ver, min_match=4)
        assert apply_delta(low, ref) == ver
        assert apply_delta(high, ref) == ver
        # With the floor, the 2-byte "xy" match becomes literals.
        assert high.added_bytes >= 2
        assert low.added_bytes == 0

    def test_min_match_validation(self):
        with pytest.raises(ValueError):
            tichy_delta(b"a", b"a", min_match=0)

    def test_prebuilt_automaton_reuse(self, rng):
        ref = rng.randbytes(2000)
        sam = SuffixAutomaton(ref)
        for _ in range(3):
            ver = mutate(ref, rng)
            script = tichy_delta(ref, ver, automaton=sam)
            assert apply_delta(script, ref) == ver

    def test_empty_inputs(self):
        assert tichy_delta(b"", b"abc").added_bytes == 3
        assert tichy_delta(b"abc", b"").commands == []

    def test_never_more_copies_than_seeded_greedy_on_coverable_input(self, rng):
        # On inputs both engines cover fully by copies, Tichy's command
        # count is minimal, hence no larger than the seeded greedy's.
        from repro.delta import greedy_delta

        a, b = rng.randbytes(800), rng.randbytes(800)
        ref = a + b
        ver = b + a
        tichy = tichy_delta(ref, ver)
        greedy = greedy_delta(ref, ver)
        assert tichy.added_bytes == 0
        if greedy.added_bytes == 0:
            assert len(tichy.copies()) <= len(greedy.copies())

    def test_registered_in_algorithms(self):
        import repro

        assert "tichy" in repro.ALGORITHMS
        script = repro.diff(b"hello world", b"world hello", algorithm="tichy")
        assert apply_delta(script, b"hello world") == b"world hello"
