"""Unit tests for the Equation-2 safety verifier (repro.core.verify)."""

import pytest

from repro.core.apply import apply_in_place
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.verify import (
    adds_are_last,
    check_in_place_safe,
    count_wr_conflicts,
    find_first_conflict,
    is_in_place_safe,
    lint_in_place,
)
from repro.exceptions import WriteBeforeReadError


def conflicting_script() -> DeltaScript:
    """Command 0 writes [0,1]; command 1 then reads [0,1]: WR conflict."""
    return DeltaScript(
        [CopyCommand(4, 0, 2), CopyCommand(0, 2, 2)], version_length=4
    )


def safe_script() -> DeltaScript:
    """The same two commands in the conflict-free order."""
    return DeltaScript(
        [CopyCommand(0, 2, 2), CopyCommand(4, 0, 2)], version_length=4
    )


class TestFindFirstConflict:
    def test_detects(self):
        assert find_first_conflict(conflicting_script()) == (0, 1)

    def test_safe_order(self):
        assert find_first_conflict(safe_script()) is None

    def test_add_can_conflict_as_writer(self):
        # An add writes; a later copy reading those bytes conflicts.
        script = DeltaScript(
            [AddCommand(0, b"xxxx"), CopyCommand(2, 4, 4)], version_length=8
        )
        assert find_first_conflict(script) == (0, 1)

    def test_adds_never_conflict_as_readers(self):
        script = DeltaScript(
            [CopyCommand(4, 0, 4), AddCommand(4, b"yyyy")], version_length=8
        )
        assert find_first_conflict(script) is None

    def test_self_overlap_is_not_a_conflict(self):
        script = DeltaScript([CopyCommand(0, 2, 6)], version_length=8)
        assert find_first_conflict(script) is None

    def test_empty_script(self):
        assert find_first_conflict(DeltaScript([], 0)) is None


class TestCheckers:
    def test_check_raises_with_positions(self):
        with pytest.raises(WriteBeforeReadError) as excinfo:
            check_in_place_safe(conflicting_script())
        assert excinfo.value.writer_index == 0
        assert excinfo.value.reader_index == 1

    def test_check_passes(self):
        check_in_place_safe(safe_script())

    def test_is_in_place_safe(self):
        assert is_in_place_safe(safe_script())
        assert not is_in_place_safe(conflicting_script())

    def test_static_and_dynamic_checks_agree(self):
        # The strict applier and the static verifier must fail on exactly
        # the same scripts.
        for script in (conflicting_script(), safe_script()):
            static_ok = is_in_place_safe(script)
            buf = bytearray(b"01234567")
            try:
                apply_in_place(script, buf, strict=True)
                dynamic_ok = True
            except WriteBeforeReadError:
                dynamic_ok = False
            assert static_ok == dynamic_ok


class TestCountConflicts:
    def test_zero_for_safe(self):
        assert count_wr_conflicts(safe_script()) == 0

    def test_counts_pairs(self):
        assert count_wr_conflicts(conflicting_script()) == 1

    def test_multiple(self):
        # Three copies each writing what the next reads, in the bad order.
        script = DeltaScript(
            [
                CopyCommand(4, 0, 4),   # writes [0,3]
                CopyCommand(0, 4, 4),   # reads [0,3]: conflict with #0
                CopyCommand(2, 8, 4),   # reads [2,5]: conflicts with #0 and #1
            ],
            version_length=12,
        )
        assert count_wr_conflicts(script) == 3


class TestLayoutAndLint:
    def test_adds_are_last(self):
        assert adds_are_last(
            DeltaScript([CopyCommand(0, 0, 2), AddCommand(2, b"x")], 3)
        )
        assert not adds_are_last(
            DeltaScript([AddCommand(2, b"x"), CopyCommand(0, 0, 2)], 3)
        )

    def test_lint_clean(self):
        assert lint_in_place(safe_script(), reference_length=8) == []

    def test_lint_reports_each_problem(self):
        script = DeltaScript(
            [AddCommand(0, b"xxxx"), CopyCommand(2, 4, 4)], version_length=8
        )
        problems = lint_in_place(script)
        assert any("safety" in p for p in problems)
        assert any("layout" in p for p in problems)

    def test_lint_structure(self):
        script = DeltaScript([CopyCommand(0, 0, 4)], version_length=10)
        problems = lint_in_place(script)
        assert any("structure" in p for p in problems)
