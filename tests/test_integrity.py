"""End-to-end integrity plane tests: the ``IPD2`` container, the
verify-then-mutate apply gate, journal torn-state recovery, and the
corruption-vs-transient fault matrix for journaled updates."""

import random
import zlib

import pytest

from repro import patch, patch_in_place
from repro.core.apply import (
    preflight_in_place,
    storage_crc32,
    verify_reference,
)
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.convert import make_in_place
from repro.delta import correcting_delta
from repro.delta.encode import (
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    MAGIC,
    MAGIC_V2,
    WIRE_V1,
    WIRE_V2,
    decode_delta,
    encode_delta,
    encoded_size,
    version_checksum,
)
from repro.device.channel import get_channel
from repro.device.flash import FlashArray
from repro.device.journal import CrashingStorage, Journal, JournaledApplier
from repro.device.memory import ConstrainedDevice
from repro.device.updater import UpdateServer, run_journaled_update
from repro.exceptions import DeltaFormatError, DeltaRangeError, IntegrityError
from repro.faults import FaultPlan, FaultSpec
from repro.workloads import make_binary_blob, mutate


def _pair(seed=7, size=9_000):
    rng = random.Random(seed)
    old = make_binary_blob(rng, size)
    new = mutate(old, rng)
    return old, new


def _v2_payload(old, new, **kwargs):
    script = correcting_delta(old, new)
    result = make_in_place(script, old, **kwargs)
    return encode_delta(result.script, FORMAT_INPLACE,
                        version_crc32=version_checksum(new), reference=old)


class TestWireV2:
    def test_round_trip_carries_reference_digest(self):
        old, new = _pair()
        payload = _v2_payload(old, new)
        assert payload[:4] == MAGIC_V2
        script, header = decode_delta(payload)
        assert header.magic == WIRE_V2
        assert header.has_checksum
        assert header.has_reference
        assert header.reference_length == len(old)
        assert header.reference_crc32 == zlib.crc32(old) & 0xFFFFFFFF
        assert patch_in_place(bytearray(old), payload) == bytearray(new)

    def test_wire_default_is_v1_without_reference(self):
        old, new = _pair()
        script = correcting_delta(old, new)
        assert encode_delta(script, FORMAT_SEQUENTIAL)[:4] == MAGIC
        assert encode_delta(script, FORMAT_SEQUENTIAL,
                            wire=WIRE_V2)[:4] == MAGIC_V2

    def test_v1_with_reference_is_rejected(self):
        old, new = _pair()
        script = correcting_delta(old, new)
        with pytest.raises(DeltaFormatError):
            encode_delta(script, FORMAT_SEQUENTIAL, wire=WIRE_V1,
                         reference=old)

    def test_encoded_size_prices_v2_exactly(self):
        old, new = _pair()
        script = correcting_delta(old, new)
        payload = encode_delta(script, FORMAT_SEQUENTIAL,
                               version_crc32=version_checksum(new),
                               reference=old)
        assert encoded_size(script, FORMAT_SEQUENTIAL, wire=WIRE_V2,
                            reference_length=len(old)) == len(payload)

    def test_absent_version_checksum_is_explicit(self):
        old, new = _pair()
        script = correcting_delta(old, new)
        payload = encode_delta(script, FORMAT_SEQUENTIAL, reference=old)
        _, header = decode_delta(payload)
        assert header.has_checksum is False
        # IPD1 keeps the legacy heuristic: CRC 0 means "absent".
        _, h1 = decode_delta(encode_delta(script, FORMAT_SEQUENTIAL))
        assert h1.has_checksum is False
        _, h2 = decode_delta(encode_delta(script, FORMAT_SEQUENTIAL,
                                          version_crc32=123))
        assert h2.has_checksum is True

    def test_both_containers_reconstruct_identically(self):
        old, new = _pair(seed=11)
        script = correcting_delta(old, new)
        v1 = encode_delta(script, FORMAT_SEQUENTIAL)
        v2 = encode_delta(script, FORMAT_SEQUENTIAL, reference=old)
        assert patch(old, v1) == patch(old, v2) == new


class TestGoldenBlobs:
    """Pinned wire bytes: the formats are frozen, not merely round-trip
    stable.  A change to either hex string is a breaking format change."""

    REF = bytes(range(10, 42))
    SCRIPT = DeltaScript([CopyCommand(src=4, dst=0, length=8),
                          AddCommand(8, b"delta!"),
                          CopyCommand(src=0, dst=14, length=4)], 18)
    GOLDEN_V1 = bytes.fromhex(
        "49504431021200efbeadde0204000801080664656c74612102000e0400"
    )
    GOLDEN_V2 = bytes.fromhex(
        "4950443202071200efbeadde201b36ec680204000801080664656c7461"
        "2102000e0405898ce194001ab9706d"
    )

    def test_v1_bytes_are_stable(self):
        assert encode_delta(self.SCRIPT, FORMAT_INPLACE,
                            version_crc32=0xDEADBEEF) == self.GOLDEN_V1

    def test_v2_bytes_are_stable(self):
        assert encode_delta(self.SCRIPT, FORMAT_INPLACE,
                            version_crc32=0xDEADBEEF,
                            reference=self.REF) == self.GOLDEN_V2

    def test_golden_blobs_decode(self):
        for blob in (self.GOLDEN_V1, self.GOLDEN_V2):
            script, header = decode_delta(blob)
            assert script == self.SCRIPT
            assert header.version_crc32 == 0xDEADBEEF


class _GuardedBuffer(bytearray):
    """A bytearray that counts every mutation, for abort-before-mutate
    proofs."""

    def __init__(self, data):
        super().__init__(data)
        self.writes = 0

    def __setitem__(self, key, value):
        self.writes += 1
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self.writes += 1
        super().__delitem__(key)

    def extend(self, more):
        self.writes += 1
        super().extend(more)


class TestAbortBeforeMutate:
    def test_wrong_reference_leaves_buffer_untouched(self):
        old, new = _pair(seed=21)
        payload = _v2_payload(old, new)
        wrong = _GuardedBuffer(mutate(old, random.Random(99)))
        before = bytes(wrong)
        with pytest.raises(IntegrityError) as info:
            patch_in_place(wrong, payload)
        assert info.value.kind == "reference"
        assert wrong.writes == 0
        assert bytes(wrong) == before

    def test_same_length_wrong_bytes_also_aborts(self):
        old, new = _pair(seed=22)
        payload = _v2_payload(old, new)
        wrong = _GuardedBuffer(old[:-1] + bytes([old[-1] ^ 0x40]))
        with pytest.raises(IntegrityError):
            patch_in_place(wrong, payload)
        assert wrong.writes == 0

    def test_constrained_device_aborts_with_image_intact(self):
        old, new = _pair(seed=23)
        payload = _v2_payload(old, new)
        device = ConstrainedDevice(mutate(old, random.Random(5)),
                                   ram=64 * 1024)
        before = device.image
        with pytest.raises(IntegrityError):
            device.apply_delta_in_place(payload)
        assert device.image == before

    def test_two_space_patch_checks_reference(self):
        old, new = _pair(seed=24)
        payload = _v2_payload(old, new)
        with pytest.raises(IntegrityError):
            patch(mutate(old, random.Random(6)), payload)

    def test_out_of_bounds_write_caught_preflight(self):
        script = DeltaScript([CopyCommand(src=0, dst=100, length=50)], 18)
        header = decode_delta(encode_delta(script, FORMAT_INPLACE))[1]
        buf = _GuardedBuffer(b"x" * 18)
        with pytest.raises(DeltaRangeError):
            preflight_in_place(script, header, buf)
        assert buf.writes == 0

    def test_read_beyond_reference_caught_preflight(self):
        script = DeltaScript([CopyCommand(src=10, dst=0, length=20)], 20)
        header = decode_delta(encode_delta(script, FORMAT_INPLACE))[1]
        buf = _GuardedBuffer(b"y" * 8)  # far shorter than the reads
        with pytest.raises(DeltaRangeError):
            preflight_in_place(script, header, buf)
        assert buf.writes == 0


class TestVerifyHelpers:
    def test_storage_crc32_matches_zlib(self):
        data = make_binary_blob(random.Random(3), 70_000)
        assert storage_crc32(data) == zlib.crc32(data) & 0xFFFFFFFF
        assert storage_crc32(data, 100) == zlib.crc32(data[:100]) & 0xFFFFFFFF

    def test_verify_reference_is_noop_for_v1(self):
        old, new = _pair(seed=31)
        script = correcting_delta(old, new)
        _, header = decode_delta(encode_delta(script, FORMAT_SEQUENTIAL))
        verify_reference(header, b"anything at all")  # must not raise

    def test_flash_crc32_and_verify_image(self):
        old, new = _pair(seed=32)
        payload = _v2_payload(old, new)
        _, header = decode_delta(payload)
        flash = FlashArray(old, block_size=1024)
        assert flash.crc32() == zlib.crc32(old) & 0xFFFFFFFF
        flash.verify_image(header)  # matches: no raise
        flash[0] = flash[0] ^ 0xFF
        with pytest.raises(IntegrityError):
            flash.verify_image(header)


class TestJournalIntegrity:
    def _journal(self):
        journal = Journal()
        journal.next_index = 3
        journal.applied_crc = 0x1234ABCD
        journal.scratch = bytearray(b"spilled bytes")
        journal.backup_offset = 17
        journal.backup_data = b"saved-run"
        return journal

    def test_round_trip(self):
        journal = self._journal()
        back = Journal.from_bytes(journal.to_bytes())
        assert back == journal
        assert back.torn_tail is False

    def test_torn_tail_recovers_previous_records(self):
        journal = self._journal()
        blob = journal.to_bytes()
        for cut in range(1, len(blob)):
            torn = Journal.from_bytes(blob[:cut])
            # Recovery is write-ahead sound: a cut mid-record drops the
            # torn record and flags it; a cut exactly on a record
            # boundary is indistinguishable from a cleanly shorter
            # journal, whose re-serialization must be the very prefix.
            if not torn.torn_tail:
                assert torn.to_bytes() == blob[:cut]
            assert torn.next_index in (0, journal.next_index)

    def test_mid_stream_rot_raises(self):
        journal = self._journal()
        blob = bytearray(journal.to_bytes())
        blob[2] ^= 0x10  # inside the first record, more records follow
        with pytest.raises(IntegrityError) as info:
            Journal.from_bytes(bytes(blob))
        assert info.value.kind == "journal"

    def test_flipped_final_record_is_torn_not_fatal(self):
        journal = self._journal()
        blob = bytearray(journal.to_bytes())
        blob[-1] ^= 0x01  # the trailing CRC byte of the last record
        back = Journal.from_bytes(bytes(blob))
        assert back.torn_tail is True

    def test_resume_verification_detects_rot(self):
        old, new = _pair(seed=41, size=6_000)
        script = correcting_delta(old, new)
        result = make_in_place(script, old)
        storage = CrashingStorage(old, fuel=len(new) // 2)
        journal = Journal()
        applier = JournaledApplier(result.script, journal)
        with pytest.raises(Exception):  # power cut mid-apply
            applier.run(storage)
        assert journal.next_index > 0
        # Rot lands inside an already-applied region while "powered off".
        interval = result.script.commands[0].write_interval
        storage.flip(interval.start)
        storage.fuel = None
        with pytest.raises(IntegrityError) as info:
            JournaledApplier(result.script, journal).run(storage)
        assert info.value.kind == "resume"


class TestJournaledUpdateIntegrity:
    @pytest.fixture()
    def server(self):
        rng = random.Random(123)
        old = make_binary_blob(rng, 30_000)
        new = mutate(old, rng)
        server = UpdateServer()
        server.publish("firmware", old)
        server.publish("firmware", new)
        return server

    def _plan(self, *specs, seed=0):
        return FaultPlan([FaultSpec(**spec) for spec in specs], seed=seed)

    def test_truncated_delivery_is_retransmitted(self, server):
        plan = self._plan(dict(site="delta.truncate", nth=1, error="truncate"))
        outcome = run_journaled_update(server, get_channel("isdn-128k"),
                                       "firmware", have=0, want=1,
                                       fault_plan=plan)
        assert outcome.succeeded, outcome.failure
        assert outcome.attempts == 2
        assert any("TruncatedDelivery" in f for f in outcome.faults)
        assert any("IntegrityError" in f or "DeltaFormatError" in f
                   for f in outcome.faults)

    def test_preflight_bitflip_halts_with_corruption(self, server):
        # Rot before the very first write: the preflight reference
        # digest fails and nothing is mutated.
        plan = self._plan(dict(site="storage.bitflip", nth=1,
                               error="bitflip", offset=12))
        outcome = run_journaled_update(server, get_channel("isdn-128k"),
                                       "firmware", have=0, want=1,
                                       fault_plan=plan)
        assert not outcome.succeeded
        assert outcome.corruption
        assert "IntegrityError" in outcome.failure

    def test_power_and_bitflip_matrix_never_silent_garbage(self, server):
        # The acceptance sweep: under combined power cuts and flash rot
        # every session either installs the exact version bytes
        # (succeeded => oracle-compared inside run_journaled_update) or
        # halts with an explicit corruption/power report.
        detected = 0
        for seed in range(12):
            plan = self._plan(
                dict(site="device.power", probability=0.5, error="power",
                     fuel=2_000),
                dict(site="storage.bitflip", probability=0.4,
                     error="bitflip"),
                seed=seed,
            )
            outcome = run_journaled_update(server, get_channel("isdn-128k"),
                                           "firmware", have=0, want=1,
                                           max_boots=64, fault_plan=plan)
            if outcome.succeeded:
                continue
            assert outcome.failure, "silent failure with no report"
            if outcome.corruption:
                detected += 1
        assert detected > 0  # the sweep actually exercised detection

    def test_matrix_is_deterministic(self, server):
        def session(seed):
            plan = self._plan(
                dict(site="device.power", probability=0.5, error="power",
                     fuel=2_000),
                dict(site="storage.bitflip", probability=0.4,
                     error="bitflip"),
                seed=seed,
            )
            out = run_journaled_update(server, get_channel("isdn-128k"),
                                       "firmware", have=0, want=1,
                                       max_boots=64, fault_plan=plan)
            return (out.succeeded, out.corruption, out.boots, tuple(out.faults))

        for seed in (1, 4, 9):
            assert session(seed) == session(seed)
