"""Fast paths vs scalar oracles: bit-identity, property-style.

The vectorized differencing core (``repro.delta._kernels`` plus the
block-compare match extension in ``repro.delta.rolling``) promises
*bit-identical* results to the retained scalar reference
implementations.  This suite holds it to that on random, adversarial
(long zero runs, periodic buffers, near-duplicate pairs), and
corpus-style inputs:

* ``seed_fingerprints`` vs ``seed_fingerprints_reference``;
* ``match_length`` / ``match_length_backward`` vs their ``_reference``
  twins, across planted prefix/suffix lengths and limits;
* ``SeedTable.from_fingerprints`` (vectorized FCFS reduction) vs the
  scalar insertion loop, slot for slot;
* ``FullSeedIndex`` / ``FingerprintGroups`` vs ``full_index_reference``,
  bucket for bucket in content and order, plus the one-sided
  ``membership`` prefilter;
* whole differs (greedy, onepass, correcting): encoded deltas with the
  fast paths on must equal the encoded deltas with them pinned off.

The convert plane (``repro.core``) makes the same promise for its array
kernels and this suite holds it to that too:

* ``build_crwi_digraph`` fast vs scalar: vertices, adjacency (both
  orientations), ``edges()``, ``edge_count``, and batch-priced
  ``costs()`` under fixed and varint pricing;
* ``varint_sizes`` vs ``varint_size`` across every codeword boundary;
* the array peel (``toposort_peel``) vs ``_peel_reference``, including
  the narrow-wave scalar handoff forced both ways;
* whole sorts (``cycle_breaking_toposort``, ``plain_toposort``,
  ``locality_toposort``) and whole conversions (``make_in_place``)
  across policies, orderings, and pricings — byte-identical scripts and
  identical reports on random and adversarial (Figure 2, Figure 3,
  rotation) inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.core.apply import apply_delta
from repro.delta import _kernels
from repro.delta import (
    correcting_delta,
    encode_delta,
    greedy_delta,
    onepass_delta,
)
from repro.delta.rolling import (
    DEFAULT_SEED_LENGTH,
    FullSeedIndex,
    SeedTable,
    SparseSeedIndex,
    full_index_reference,
    fast_paths_enabled,
    match_length,
    match_length_backward,
    match_length_backward_reference,
    match_length_reference,
    seed_fingerprints,
    seed_fingerprints_reference,
    sparse_index_reference,
    use_fast_paths,
)

needs_numpy = pytest.mark.skipif(not _kernels.HAVE_NUMPY,
                                 reason="numpy unavailable")


@pytest.fixture
def fast_on():
    """Run the test with the fast paths pinned on, restoring after."""
    previous = use_fast_paths(True)
    yield
    use_fast_paths(previous)


def _inputs():
    """(label, data) corpus: random, adversarial, and corpus-style."""
    rng = random.Random(0x1998)
    text = (b"int reconstruct(struct delta *d, char *buf, size_t len);\n"
            b"/* in-place: copies before adds, cycles broken */\n")
    return [
        ("empty", b""),
        ("short", b"delta"),
        ("exact_seed", bytes(range(DEFAULT_SEED_LENGTH))),
        ("random", rng.randbytes(5000)),
        ("zero_run", b"\x00" * 4096 + rng.randbytes(128)),
        ("periodic", (b"abcdefgh" * 700)[:5000]),
        ("low_entropy", bytes(rng.choice(b"ab") for _ in range(3000))),
        ("corpus_style", text * 60),
    ]


INPUTS = _inputs()
SEED_LENGTHS = [4, DEFAULT_SEED_LENGTH, 32]


# ---------------------------------------------------------------------------
# seed_fingerprints
# ---------------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("label,data", INPUTS, ids=[l for l, _ in INPUTS])
@pytest.mark.parametrize("seed_length", SEED_LENGTHS)
def test_kernel_fingerprints_match_reference(label, data, seed_length):
    expected = seed_fingerprints_reference(data, seed_length)
    got = _kernels.seed_fingerprints(data, seed_length).tolist()
    assert got == expected


@pytest.mark.parametrize("label,data", INPUTS, ids=[l for l, _ in INPUTS])
def test_dispatching_fingerprints_match_reference(label, data, fast_on):
    assert seed_fingerprints(data) == seed_fingerprints_reference(
        data, DEFAULT_SEED_LENGTH)


@needs_numpy
def test_kernel_fingerprints_accept_buffer_views():
    data = random.Random(7).randbytes(2048)
    for view in (bytearray(data), memoryview(data)):
        assert _kernels.seed_fingerprints(view, 16).tolist() == \
            seed_fingerprints_reference(data, 16)


# ---------------------------------------------------------------------------
# match_length / match_length_backward
# ---------------------------------------------------------------------------

def _planted_pairs():
    """Buffer pairs with known common prefix lengths at chosen offsets."""
    rng = random.Random(0xC0FFEE)
    cases = []
    for common in [0, 1, 15, 16, 17, 255, 512, 513, 4096, 10000]:
        a_pre = rng.randbytes(rng.randrange(64))
        b_pre = rng.randbytes(rng.randrange(64))
        shared = rng.randbytes(common)
        # Distinct trailing bytes guarantee the match stops at `common`
        # (when neither side runs out first).
        a = a_pre + shared + b"\x01" + rng.randbytes(8)
        b = b_pre + shared + b"\x02" + rng.randbytes(8)
        cases.append((a, len(a_pre), b, len(b_pre)))
    # Boundary shapes: match running to the very end of either buffer.
    tail = rng.randbytes(300)
    cases.append((tail, 0, tail, 0))
    cases.append((b"xy" + tail, 2, tail, 0))
    cases.append((b"", 0, b"abc", 0))
    return cases


@pytest.mark.parametrize("limit", [None, 0, 1, 7, 16, 100, 1 << 20])
def test_match_length_matches_reference(limit, fast_on):
    for a, a_start, b, b_start in _planted_pairs():
        expected = match_length_reference(a, a_start, b, b_start, limit)
        assert match_length(a, a_start, b, b_start, limit) == expected


@pytest.mark.parametrize("limit", [None, 0, 1, 7, 16, 100, 1 << 20])
def test_match_length_backward_matches_reference(limit, fast_on):
    for a, a_start, b, b_start in _planted_pairs():
        # Mirror the planted-prefix cases into suffix cases by aligning
        # the ends just past the shared region.
        a_end, b_end = len(a), len(b)
        expected = match_length_backward_reference(a, a_end, b, b_end, limit)
        assert match_length_backward(a, a_end, b, b_end, limit) == expected
        shared = match_length_reference(a, a_start, b, b_start)
        a_end = a_start + shared
        b_end = b_start + shared
        expected = match_length_backward_reference(a, a_end, b, b_end, limit)
        assert match_length_backward(a, a_end, b, b_end, limit) == expected


def test_match_length_fuzz(fast_on):
    rng = random.Random(31337)
    for _ in range(300):
        n = rng.randrange(1, 400)
        a = bytes(rng.choice(b"\x00\x01") for _ in range(n))
        b = bytes(rng.choice(b"\x00\x01") for _ in range(rng.randrange(1, 400)))
        a_start = rng.randrange(len(a) + 1)
        b_start = rng.randrange(len(b) + 1)
        limit = rng.choice([None, rng.randrange(0, 64)])
        assert match_length(a, a_start, b, b_start, limit) == \
            match_length_reference(a, a_start, b, b_start, limit)
        a_end = rng.randrange(len(a) + 1)
        b_end = rng.randrange(len(b) + 1)
        assert match_length_backward(a, a_end, b, b_end, limit) == \
            match_length_backward_reference(a, a_end, b, b_end, limit)


# ---------------------------------------------------------------------------
# SeedTable FCFS construction
# ---------------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("label,data", INPUTS, ids=[l for l, _ in INPUTS])
@pytest.mark.parametrize("size", [64, 1 << 10, 1 << 16])
def test_fcfs_table_matches_insert_loop(label, data, size, fast_on):
    fingerprints = seed_fingerprints_reference(data, DEFAULT_SEED_LENGTH)
    fast = SeedTable.from_fingerprints(fingerprints, size)
    oracle = SeedTable(size)
    for offset, fingerprint in enumerate(fingerprints):
        oracle.insert(fingerprint, offset)
    assert fast._slots == oracle._slots
    assert fast.occupied == oracle.occupied
    for fingerprint in fingerprints:
        assert fast.lookup(fingerprint) == oracle.lookup(fingerprint)


# ---------------------------------------------------------------------------
# FullSeedIndex / FingerprintGroups
# ---------------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("label,data", INPUTS, ids=[l for l, _ in INPUTS])
@pytest.mark.parametrize("max_positions", [1, 2, 64])
def test_full_index_matches_reference(label, data, max_positions, fast_on):
    index = FullSeedIndex(data, DEFAULT_SEED_LENGTH, max_positions)
    oracle = full_index_reference(data, DEFAULT_SEED_LENGTH, max_positions)
    if len(data) >= DEFAULT_SEED_LENGTH:
        assert index.groups is not None
    assert len(index) == sum(len(v) for v in oracle.values())
    for fingerprint, offsets in oracle.items():
        assert index.candidates(fingerprint) == offsets
    # Absent fingerprints yield empty candidate lists on both paths.
    absent = max(oracle, default=0) + 1
    assert index.candidates(absent) == []
    assert oracle.get(absent, []) == []


@needs_numpy
def test_membership_prefilter_is_one_sided(fast_on):
    rng = random.Random(5150)
    reference = rng.randbytes(4000)
    version = reference[:1500] + rng.randbytes(800) + reference[2000:]
    index = FullSeedIndex(reference, DEFAULT_SEED_LENGTH, 64)
    fps = _kernels.seed_fingerprints(version, DEFAULT_SEED_LENGTH)
    maybe = index.groups.membership(fps)
    assert len(maybe) == len(fps)
    stored = set(full_index_reference(reference, DEFAULT_SEED_LENGTH, 64))
    for flag, fingerprint in zip(maybe, fps.tolist()):
        if fingerprint in stored:
            # No false negatives: every stored fingerprint must pass.
            assert flag
        if not flag:
            # A negative must mean the fingerprint is truly absent.
            assert fingerprint not in stored
            assert index.candidates(fingerprint) == []


@needs_numpy
def test_groups_lookup_after_flatten_threshold(fast_on, monkeypatch):
    """The hybrid lookup is identical before and after list flattening."""
    monkeypatch.setattr(_kernels.FingerprintGroups, "_FLATTEN_AFTER", 4)
    data = random.Random(99).randbytes(2000)
    index = FullSeedIndex(data, DEFAULT_SEED_LENGTH, 8)
    oracle = full_index_reference(data, DEFAULT_SEED_LENGTH, 8)
    queries = list(oracle) * 2 + [max(oracle) + 1]
    for fingerprint in queries:  # crosses the flatten threshold mid-loop
        assert index.candidates(fingerprint) == oracle.get(fingerprint, [])


# ---------------------------------------------------------------------------
# SparseSeedIndex vs the dict oracle
# ---------------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("label,data", INPUTS, ids=[l for l, _ in INPUTS])
@pytest.mark.parametrize("stride", [1, 3, 16, 101])
@pytest.mark.parametrize("max_positions", [1, 64])
def test_sparse_index_matches_reference(label, data, stride, max_positions,
                                        fast_on):
    index = SparseSeedIndex(data, DEFAULT_SEED_LENGTH,
                            max_positions=max_positions, stride=stride)
    oracle = sparse_index_reference(data, DEFAULT_SEED_LENGTH,
                                    stride=stride,
                                    max_positions=max_positions)
    assert len(index) == sum(len(v) for v in oracle.values())
    for fingerprint, offsets in oracle.items():
        assert index.candidates(fingerprint) == offsets
    absent = max(oracle, default=0) + 1
    assert index.candidates(absent) == []


@needs_numpy
@pytest.mark.parametrize("stride", [2, 7, 16])
def test_sparse_index_build_identical_fast_vs_scalar(stride):
    data = random.Random(0x5EED).randbytes(6000)
    previous = use_fast_paths(True)
    try:
        fast = SparseSeedIndex(data, stride=stride)
        use_fast_paths(False)
        slow = SparseSeedIndex(data, stride=stride)
    finally:
        use_fast_paths(previous)
    fps = seed_fingerprints_reference(data, DEFAULT_SEED_LENGTH)
    for fingerprint in set(fps[::stride]) | {fps[1] if len(fps) > 1 else 0}:
        assert fast.candidates(fingerprint) == slow.candidates(fingerprint)


def test_sparse_index_rejects_bad_stride():
    with pytest.raises(ValueError):
        SparseSeedIndex(b"x" * 64, stride=0)


@needs_numpy
@pytest.mark.parametrize("stride", [3, 29])
def test_greedy_over_sparse_index_identical_fast_vs_scalar(stride):
    rng = random.Random(0xDE17A)
    reference = rng.randbytes(20000)
    version = bytearray(reference)
    for _ in range(10):
        at = rng.randrange(len(version) - 128)
        version[at:at + rng.randrange(1, 128)] = \
            rng.randbytes(rng.randrange(1, 128))
    version = bytes(version)
    previous = use_fast_paths(True)
    try:
        fast = greedy_delta(
            reference, version,
            index=SparseSeedIndex(reference, stride=stride))
        use_fast_paths(False)
        slow = greedy_delta(
            reference, version,
            index=SparseSeedIndex(reference, stride=stride))
    finally:
        use_fast_paths(previous)
    assert encode_delta(fast) == encode_delta(slow)
    assert apply_delta(fast, reference) == version


# ---------------------------------------------------------------------------
# Seed-table probe kernels (the correcting/onepass scan building blocks)
# ---------------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("label,data", INPUTS, ids=[l for l, _ in INPUTS])
@pytest.mark.parametrize("size", [7, 64, 1 << 10])
def test_probe_table_matches_scalar_probe(label, data, size, fast_on):
    """probe_table returns exactly the scalar occupied-and-equal hits."""
    fingerprints = seed_fingerprints_reference(data, DEFAULT_SEED_LENGTH)
    table = SeedTable.from_fingerprints(fingerprints, size)
    arrays = table.probe_arrays()
    if not fingerprints:
        return
    assert arrays is not None
    slots_array, slot_fps = arrays
    queries = fingerprints + [f + 1 for f in fingerprints[:32]]
    hits, cands = _kernels.probe_table(slots_array, slot_fps, queries)
    expected = []
    for position, fingerprint in enumerate(queries):
        stored = table._slots[fingerprint % size]
        if stored >= 0 and fingerprints[stored] == fingerprint:
            expected.append((position, stored))
    assert list(zip(hits, cands)) == expected


@needs_numpy
def test_scan_arrays_slots_and_fingerprints():
    data = random.Random(17).randbytes(3000)
    fingerprints = seed_fingerprints_reference(data, DEFAULT_SEED_LENGTH)
    for source in (fingerprints,
                   _kernels.seed_fingerprints(data, DEFAULT_SEED_LENGTH)):
        for size in (7, 64, 1 << 16):
            slots, fps = _kernels.scan_arrays(source, size)
            assert fps.tolist() == fingerprints
            assert slots.tolist() == [f % size for f in fingerprints]


# ---------------------------------------------------------------------------
# Whole differs: fast on == fast off, byte for byte
# ---------------------------------------------------------------------------

def _pairs():
    rng = random.Random(0xD1FF)
    pairs = []
    base = rng.randbytes(30000)
    mutated = bytearray(base)
    for _ in range(12):
        at = rng.randrange(len(mutated) - 64)
        mutated[at:at + rng.randrange(1, 64)] = rng.randbytes(rng.randrange(1, 64))
    pairs.append(("random_edits", base, bytes(mutated)))
    pairs.append(("zero_runs", b"\x00" * 9000 + base[:2000],
                  b"\x00" * 8500 + base[:2500]))
    period = (b"0123456789abcdef" * 1200)
    pairs.append(("periodic", period, period[:7000] + b"SPLICE" + period[7000:]))
    pairs.append(("disjoint", rng.randbytes(4000), rng.randbytes(4000)))
    pairs.append(("identical", base[:8000], base[:8000]))
    return pairs


@pytest.mark.parametrize("differ", [greedy_delta, onepass_delta,
                                    correcting_delta],
                         ids=["greedy", "onepass", "correcting"])
@pytest.mark.parametrize("label,reference,version", _pairs(),
                         ids=[p[0] for p in _pairs()])
def test_differ_output_identical_fast_vs_reference(differ, label, reference,
                                                   version):
    previous = use_fast_paths(True)
    try:
        fast = differ(reference, version)
        use_fast_paths(False)
        slow = differ(reference, version)
    finally:
        use_fast_paths(previous)
    assert encode_delta(fast) == encode_delta(slow)


def _mutated(rng, base, mutator):
    """Apply one named adversarial mutator to ``base``."""
    version = bytearray(base)
    if mutator == "edits":
        for _ in range(8):
            at = rng.randrange(max(1, len(version) - 64))
            version[at:at + rng.randrange(1, 64)] = \
                rng.randbytes(rng.randrange(0, 64))
    elif mutator == "transpose":
        third = len(version) // 3
        version = version[third:2 * third] + version[:third] + \
            version[2 * third:]
    elif mutator == "prepend":
        version = bytearray(rng.randbytes(rng.randrange(1, 500))) + version
    elif mutator == "truncate":
        version = version[:max(1, len(version) // 2)]
    elif mutator == "zero_inject":
        at = rng.randrange(max(1, len(version)))
        version[at:at] = b"\x00" * rng.randrange(64, 512)
    return bytes(version)


MUTATORS = ["edits", "transpose", "prepend", "truncate", "zero_inject"]


@pytest.mark.parametrize("differ", [greedy_delta, onepass_delta,
                                    correcting_delta],
                         ids=["greedy", "onepass", "correcting"])
@pytest.mark.parametrize("mutator", MUTATORS)
def test_differ_fuzz_identical_across_params(differ, mutator):
    """Property fuzz: fast == scalar across seed lengths and table sizes.

    Small tables force dense slot collisions (the onepass/correcting
    fast scans' hardest case: every position probes an occupied slot);
    large tables exercise the sparse-event path.  Every script must
    also reconstruct the version exactly.
    """
    rng = random.Random(0xFA57 + MUTATORS.index(mutator))
    for trial in range(3):
        reference = _mutated(rng, rng.randbytes(rng.randrange(2000, 25000)),
                             "edits")
        version = _mutated(rng, reference, mutator)
        seed_length = rng.choice([4, DEFAULT_SEED_LENGTH, 32])
        kwargs = {"seed_length": seed_length}
        if differ is not greedy_delta:
            kwargs["table_size"] = rng.choice([5, 64, 1 << 10, 1 << 16])
        previous = use_fast_paths(True)
        try:
            fast = differ(reference, version, **kwargs)
            use_fast_paths(False)
            slow = differ(reference, version, **kwargs)
        finally:
            use_fast_paths(previous)
        assert encode_delta(fast) == encode_delta(slow), \
            (mutator, trial, seed_length, kwargs)
        assert apply_delta(fast, reference) == version


def test_use_fast_paths_round_trips():
    original = fast_paths_enabled()
    try:
        assert use_fast_paths(False) == original
        assert fast_paths_enabled() is False
        assert use_fast_paths(True) is False
        assert fast_paths_enabled() is True
    finally:
        use_fast_paths(original)


# ---------------------------------------------------------------------------
# Convert plane: CRWI construction, pricing, peel, sorts, conversions
# ---------------------------------------------------------------------------

from repro.analysis.adversarial import (  # noqa: E402
    figure2_case,
    figure3_case,
    rotation_medley,
)
from repro.core import _kernels as core_kernels  # noqa: E402
from repro.core.convert import make_in_place  # noqa: E402
from repro.core.crwi import (  # noqa: E402
    build_crwi_digraph,
    lemma1_bound,
    read_bytes_bound,
)
from repro.core.policies import LocallyMinimumPolicy  # noqa: E402
from repro.core.toposort import (  # noqa: E402
    _peel,
    _peel_reference,
    cycle_breaking_toposort,
    locality_toposort,
    order_respects_edges,
    plain_toposort,
)
from repro.delta.varint import varint_size  # noqa: E402


def _convert_cases():
    """(label, script, reference) corpus for the convert-plane oracles.

    Random mutated pairs exercise the shift-chain shapes real deltas
    produce; the adversarial constructions pin the all-core (Figure 2),
    wide-wave (Figure 3), and pure-cycle (rotation) extremes.
    """
    rng = random.Random(0xC0DE)
    cases = []
    for mutator in MUTATORS:
        base = _mutated(rng, rng.randbytes(12000), "edits")
        version = _mutated(rng, base, mutator)
        cases.append(("greedy_" + mutator, greedy_delta(base, version), base))
    fig2 = figure2_case(4)
    cases.append(("figure2", fig2.script, fig2.reference))
    fig3 = figure3_case(6)
    cases.append(("figure3", fig3.script, fig3.reference))
    medley = rotation_medley(64, [2, 3, 5, 9])
    cases.append(("rotation_medley", medley.script, medley.reference))
    return cases


CONVERT_CASES = _convert_cases()
CONVERT_IDS = [label for label, _, _ in CONVERT_CASES]


def _graph_fingerprint(graph):
    """Everything the public surface exposes, in canonical form."""
    return {
        "vertices": list(graph.vertices),
        "successors": [list(adj) for adj in graph.successors],
        "predecessors": [list(adj) for adj in graph.predecessors],
        "edges": list(graph.edges()),
        "edge_count": graph.edge_count,
        "costs_fixed": graph.costs(4),
        "costs_varint": graph.costs(varint_size),
    }


@needs_numpy
@pytest.mark.parametrize("label,script,reference", CONVERT_CASES,
                         ids=CONVERT_IDS)
def test_build_crwi_digraph_identical_fast_vs_scalar(label, script, reference):
    previous = use_fast_paths(True)
    try:
        fast = build_crwi_digraph(script)
        use_fast_paths(False)
        slow = build_crwi_digraph(script)
    finally:
        use_fast_paths(previous)
    assert _graph_fingerprint(fast) == _graph_fingerprint(slow), label


@needs_numpy
@pytest.mark.parametrize("label,script,reference", CONVERT_CASES,
                         ids=CONVERT_IDS)
def test_crwi_lemma1_bounds(label, script, reference, fast_on):
    graph = build_crwi_digraph(script)
    assert graph.edge_count <= read_bytes_bound(script) <= lemma1_bound(script)


@needs_numpy
def test_crwi_costs_arbitrary_callable_falls_back(fast_on):
    """A non-identity pricing callable must price like ``varint_size``."""
    _, script, _ = CONVERT_CASES[0]
    graph = build_crwi_digraph(script)
    assert graph.costs(lambda off: varint_size(off)) == graph.costs(varint_size)


@needs_numpy
def test_varint_sizes_kernel_matches_scalar():
    np = core_kernels.np
    boundaries = [0, 1]
    for width in range(1, 9):
        edge = 1 << (7 * width)
        boundaries.extend([edge - 1, edge])
    values = np.array(boundaries, dtype=np.int64)
    assert core_kernels.varint_sizes(values).tolist() == \
        [varint_size(v) for v in boundaries]


@needs_numpy
@pytest.mark.parametrize("narrow_wave", [0, 1 << 30],
                         ids=["pure_numpy", "scalar_handoff"])
@pytest.mark.parametrize("label,script,reference", CONVERT_CASES,
                         ids=CONVERT_IDS)
def test_toposort_peel_matches_reference(label, script, reference,
                                         narrow_wave, fast_on, monkeypatch):
    """Kernel peel == scalar peel, with the hybrid forced both ways.

    ``NARROW_WAVE = 0`` keeps every wave in numpy; ``1 << 30`` hands the
    very first wave to the scalar finisher — both must replay the
    reference wave sequence exactly.
    """
    monkeypatch.setattr(core_kernels, "ARRAY_PEEL_MIN", 0)
    monkeypatch.setattr(core_kernels, "NARROW_WAVE", narrow_wave)
    graph = build_crwi_digraph(script)
    expected = _peel_reference(graph)
    prefix, core, suffix, used_fast = _peel(graph)
    assert used_fast
    assert (prefix, core, suffix) == expected, label


@needs_numpy
@pytest.mark.parametrize("label,script,reference", CONVERT_CASES,
                         ids=CONVERT_IDS)
def test_cycle_breaking_toposort_identical_fast_vs_scalar(
        label, script, reference, monkeypatch):
    monkeypatch.setattr(core_kernels, "ARRAY_PEEL_MIN", 0)
    previous = use_fast_paths(True)
    try:
        graph = build_crwi_digraph(script)
        fast = cycle_breaking_toposort(graph, LocallyMinimumPolicy(),
                                       graph.costs(varint_size))
        use_fast_paths(False)
        graph = build_crwi_digraph(script)
        slow = cycle_breaking_toposort(graph, LocallyMinimumPolicy(),
                                       graph.costs(varint_size))
    finally:
        use_fast_paths(previous)
    assert fast.order == slow.order, label
    assert fast.evicted == slow.evicted, label
    assert fast.cycles_found == slow.cycles_found, label
    assert fast.peeled == slow.peeled, label
    assert order_respects_edges(graph, fast)


@needs_numpy
@pytest.mark.parametrize("sort", [plain_toposort, locality_toposort],
                         ids=["plain", "locality"])
def test_acyclic_sorts_identical_fast_vs_scalar(sort, monkeypatch):
    monkeypatch.setattr(core_kernels, "ARRAY_PEEL_MIN", 0)
    monkeypatch.setattr(core_kernels, "ARRAY_SETUP_MIN", 0)
    for label, script, reference in CONVERT_CASES:
        previous = use_fast_paths(True)
        try:
            graph = build_crwi_digraph(script)
            evicted = cycle_breaking_toposort(
                graph, LocallyMinimumPolicy()).evicted
            fast = sort(graph, excluding=evicted)
            use_fast_paths(False)
            graph = build_crwi_digraph(script)
            slow = sort(graph, excluding=evicted)
        finally:
            use_fast_paths(previous)
        assert fast == slow, (sort.__name__, label)


@needs_numpy
@pytest.mark.parametrize("policy,ordering,pricing",
                         [("local-min", "dfs", 4),
                          ("local-min", "locality", varint_size),
                          ("constant", "dfs", varint_size),
                          ("greedy-global", "dfs", 4)],
                         ids=["localmin_dfs_fixed", "localmin_loc_varint",
                              "constant_dfs_varint", "global_dfs_fixed"])
@pytest.mark.parametrize("label,script,reference", CONVERT_CASES,
                         ids=CONVERT_IDS)
def test_make_in_place_identical_fast_vs_scalar(label, script, reference,
                                                policy, ordering, pricing,
                                                monkeypatch):
    monkeypatch.setattr(core_kernels, "ARRAY_PEEL_MIN", 0)
    monkeypatch.setattr(core_kernels, "ARRAY_SETUP_MIN", 0)
    previous = use_fast_paths(True)
    try:
        fast = make_in_place(script, reference, policy=policy,
                             ordering=ordering, offset_encoding_size=pricing)
        use_fast_paths(False)
        slow = make_in_place(script, reference, policy=policy,
                             ordering=ordering, offset_encoding_size=pricing)
    finally:
        use_fast_paths(previous)
    assert encode_delta(fast.script) == encode_delta(slow.script), label
    for field in ("evicted_count", "evicted_bytes", "eviction_cost",
                  "cycles_found", "peeled"):
        assert getattr(fast.report, field) == getattr(slow.report, field), \
            (label, field)
