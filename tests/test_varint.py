"""Unit tests for LEB128 varints (repro.delta.varint)."""

import pytest

from repro.delta.varint import decode_varint, encode_varint, varint_size
from repro.exceptions import DeltaFormatError


class TestEncode:
    def test_single_byte_values(self):
        assert encode_varint(0) == b"\x00"
        assert encode_varint(1) == b"\x01"
        assert encode_varint(127) == b"\x7f"

    def test_multi_byte_values(self):
        assert encode_varint(128) == b"\x80\x01"
        assert encode_varint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)


class TestDecode:
    def test_round_trip_boundaries(self):
        for value in [0, 1, 127, 128, 16383, 16384, 2097151, 2097152,
                      (1 << 32) - 1, 1 << 32, (1 << 63) - 1]:
            encoded = encode_varint(value)
            decoded, offset = decode_varint(encoded)
            assert decoded == value
            assert offset == len(encoded)

    def test_decode_at_offset(self):
        data = b"\xff" + encode_varint(300)
        value, offset = decode_varint(data, 1)
        assert value == 300
        assert offset == 3

    def test_truncated(self):
        with pytest.raises(DeltaFormatError):
            decode_varint(b"\x80")

    def test_empty(self):
        with pytest.raises(DeltaFormatError):
            decode_varint(b"")

    def test_overlong(self):
        with pytest.raises(DeltaFormatError):
            decode_varint(b"\x80" * 11)


class TestSize:
    def test_matches_encoding(self):
        for value in [0, 1, 127, 128, 300, 16383, 16384, 1 << 20, 1 << 40]:
            assert varint_size(value) == len(encode_varint(value))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_size(-5)
