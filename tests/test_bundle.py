"""Tests for package-level distribution (repro.bundle)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bundle import (
    Bundle,
    BundleEntry,
    Manifest,
    OP_ADD,
    OP_DELTA,
    OP_REMOVE,
    OP_RENAME,
    apply_bundle,
    build_bundle,
    classify_changes,
    decode_bundle,
    encode_bundle,
    upgrade_and_verify,
)
from repro.bundle.manifest import FileEntry
from repro.exceptions import DeltaFormatError, ReproError, VerificationError
from repro.workloads import Corpus, make_source_file, mutate


@pytest.fixture
def trees(rng):
    old = {
        "src/main.c": make_source_file(rng, 5_000),
        "src/util.c": make_source_file(rng, 3_000),
        "README": b"read me\n" * 50,
        "data/table.bin": rng.randbytes(2_000),
    }
    new = dict(old)
    new["src/main.c"] = mutate(old["src/main.c"], rng)          # modify
    new["docs/README"] = new.pop("README")                       # rename
    new["src/new_module.c"] = make_source_file(rng, 2_000)       # add
    del new["data/table.bin"]                                    # remove
    return old, new


class TestManifest:
    def test_from_tree_and_verify(self, trees):
        old, _new = trees
        manifest = Manifest.from_tree("pkg", 0, old)
        assert manifest.verify_tree(old) == []
        assert manifest.total_bytes == sum(len(v) for v in old.values())

    def test_verify_reports_each_problem(self, trees):
        old, _new = trees
        manifest = Manifest.from_tree("pkg", 0, old)
        broken = dict(old)
        broken["src/main.c"] = b"tampered"
        del broken["README"]
        broken["sneaky.bin"] = b"?"
        problems = manifest.verify_tree(broken)
        assert any("mismatch" in p for p in problems)
        assert any("missing" in p for p in problems)
        assert any("unexpected" in p for p in problems)

    def test_classify_changes(self, trees):
        old, new = trees
        changes = classify_changes(
            Manifest.from_tree("pkg", 0, old), Manifest.from_tree("pkg", 1, new)
        )
        kinds = {c.path: c.kind for c in changes}
        assert kinds["src/main.c"] == "modify"
        assert kinds["src/util.c"] == "unchanged"
        assert kinds["docs/README"] == "rename"
        assert kinds["src/new_module.c"] == "add"
        assert kinds["data/table.bin"] == "remove"
        rename = next(c for c in changes if c.kind == "rename")
        assert rename.from_path == "README"

    def test_rename_detection_is_content_based(self):
        old = {"a": b"same content here", "b": b"other"}
        new = {"c": b"same content here", "b": b"other"}
        changes = classify_changes(
            Manifest.from_tree("p", 0, old), Manifest.from_tree("p", 1, new)
        )
        kinds = {(c.kind, c.path) for c in changes}
        assert ("rename", "c") in kinds
        assert not any(k == "remove" for k, _ in kinds)

    def test_duplicate_content_renames_pair_up(self):
        old = {"a1": b"dup", "a2": b"dup"}
        new = {"b1": b"dup", "b2": b"dup"}
        changes = classify_changes(
            Manifest.from_tree("p", 0, old), Manifest.from_tree("p", 1, new)
        )
        renames = [c for c in changes if c.kind == "rename"]
        assert len(renames) == 2
        assert {c.from_path for c in renames} == {"a1", "a2"}


class TestArchiveCodec:
    def sample(self) -> Bundle:
        return Bundle("pkg", 0, 1, [
            BundleEntry(OP_DELTA, "a.c", payload=b"DELTA-BYTES"),
            BundleEntry(OP_ADD, "b.c", content=b"fresh content"),
            BundleEntry(OP_RENAME, "new/name", payload=b"", from_path="old/name"),
            BundleEntry(OP_REMOVE, "gone.c"),
        ])

    def test_round_trip(self):
        bundle = self.sample()
        decoded = decode_bundle(encode_bundle(bundle))
        assert decoded.package == "pkg"
        assert decoded.from_release == 0 and decoded.to_release == 1
        assert decoded.entries == bundle.entries

    def test_checksum_rejects_corruption(self):
        payload = bytearray(encode_bundle(self.sample()))
        payload[10] ^= 0xFF
        with pytest.raises(DeltaFormatError):
            decode_bundle(bytes(payload))

    def test_bad_magic(self):
        with pytest.raises(DeltaFormatError):
            decode_bundle(b"NOPE" + bytes(30))

    def test_truncation_detected(self):
        payload = encode_bundle(self.sample())
        for cut in (5, len(payload) // 2, len(payload) - 1):
            with pytest.raises(DeltaFormatError):
                decode_bundle(payload[:cut])

    def test_summary(self):
        assert self.sample().summary() == {
            "delta": 1, "add": 1, "remove": 1, "rename": 1,
        }

    def test_unicode_paths(self):
        bundle = Bundle("pkg", 0, 1, [BundleEntry(OP_REMOVE, "señor/ファイル")])
        decoded = decode_bundle(encode_bundle(bundle))
        assert decoded.entries[0].path == "señor/ファイル"


class TestBuildApply:
    def test_end_to_end(self, trees):
        old, new = trees
        bundle = build_bundle("pkg", 0, 1, old, new)
        working = dict(old)
        upgrade_and_verify(working, bundle, Manifest.from_tree("pkg", 1, new))
        assert working == new

    def test_via_wire_format(self, trees):
        old, new = trees
        payload = encode_bundle(build_bundle("pkg", 0, 1, old, new))
        working = dict(old)
        apply_bundle(working, decode_bundle(payload))
        assert working == new

    def test_unchanged_files_cost_nothing(self, trees):
        old, new = trees
        bundle = build_bundle("pkg", 0, 1, old, new)
        assert all(e.path != "src/util.c" for e in bundle.entries)

    def test_exact_rename_carries_no_payload(self, trees):
        old, new = trees
        bundle = build_bundle("pkg", 0, 1, old, new)
        rename = next(e for e in bundle.entries if e.op == OP_RENAME)
        assert rename.payload == b""

    def test_rename_with_modification(self, rng):
        content = make_source_file(rng, 4_000)
        old = {"old/path.c": content}
        new = {"new/path.c": mutate(content, rng)}
        # Content changed too, so rename detection misses (different crc)
        # and this ships as add+remove — unless sizes/crc match.  Build
        # and apply must still round-trip.
        bundle = build_bundle("pkg", 0, 1, old, new)
        working = dict(old)
        apply_bundle(working, bundle)
        assert working == new

    def test_bundle_smaller_than_full_tree(self, trees):
        old, new = trees
        payload = encode_bundle(build_bundle("pkg", 0, 1, old, new))
        full = sum(len(v) for v in new.values())
        assert len(payload) < full

    def test_pathological_churn_falls_back_to_add(self, rng):
        old = {"f": rng.randbytes(1_000)}
        new = {"f": rng.randbytes(1_000)}  # unrelated content
        bundle = build_bundle("pkg", 0, 1, old, new)
        assert bundle.entries[0].op == OP_ADD

    def test_apply_missing_file_raises(self, trees):
        old, new = trees
        bundle = build_bundle("pkg", 0, 1, old, new)
        working = dict(old)
        del working["src/main.c"]
        with pytest.raises(ReproError):
            apply_bundle(working, bundle)

    def test_verify_catches_wrong_target(self, trees):
        old, new = trees
        bundle = build_bundle("pkg", 0, 1, old, new)
        wrong = dict(new)
        wrong["extra"] = b"!"
        with pytest.raises(VerificationError):
            upgrade_and_verify(dict(old), bundle,
                               Manifest.from_tree("pkg", 1, wrong))

    def test_scratch_budget_propagates(self, rng):
        content = rng.randbytes(6_000)
        old = {"img": content}
        new = {"img": content[3_000:] + content[:3_000]}  # big swap: cycles
        plain = encode_bundle(build_bundle("p", 0, 1, old, new))
        scratched = encode_bundle(
            build_bundle("p", 0, 1, old, new, scratch_budget=1 << 14)
        )
        assert len(scratched) < len(plain)
        working = dict(old)
        apply_bundle(working, decode_bundle(scratched))
        assert working == new


class TestCorpusPackages:
    def test_whole_corpus_release_upgrade(self):
        corpus = Corpus(seed=21, packages=2, releases=2, scale=0.15)
        r0, r1 = corpus.releases
        for spec in corpus.specs:
            old = {path: r0[(spec.name, path)] for path, _, _ in spec.files}
            new = {path: r1[(spec.name, path)] for path, _, _ in spec.files}
            bundle = build_bundle(spec.name, 0, 1, old, new)
            working = dict(old)
            upgrade_and_verify(working, bundle,
                               Manifest.from_tree(spec.name, 1, new))
            assert working == new


class TestBundleProperty:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_random_tree_evolution_round_trips(self, seed):
        rng = random.Random(seed)
        old = {
            "f%d" % i: rng.randbytes(rng.randint(1, 800))
            for i in range(rng.randint(1, 6))
        }
        new = {}
        for path, data in old.items():
            roll = rng.random()
            if roll < 0.2:
                continue  # removed
            if roll < 0.4:
                new["moved/" + path] = data  # renamed
            elif roll < 0.8:
                new[path] = mutate(data, rng)  # modified
            else:
                new[path] = data  # unchanged
        if rng.random() < 0.5:
            new["brand-new"] = rng.randbytes(rng.randint(1, 500))
        bundle = build_bundle("pkg", 0, 1, old, new)
        decoded = decode_bundle(encode_bundle(bundle))
        working = dict(old)
        apply_bundle(working, decoded)
        assert working == new
