"""Property-based tests (hypothesis) for the invariants in DESIGN.md section 5.

These are the library's strongest correctness evidence: arbitrary byte
buffers and arbitrary edits, every differencing algorithm, every policy —
the round-trip and safety contracts must hold for all of them.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.apply import apply_delta, apply_in_place
from repro.core.commands import CopyCommand, DeltaScript
from repro.core.crwi import build_crwi_digraph, lemma1_bound
from repro.core.convert import make_in_place
from repro.core.policies import is_feedback_vertex_set
from repro.core.verify import adds_are_last, count_wr_conflicts, is_in_place_safe
from repro.delta import (
    FORMAT_INPLACE,
    FORMAT_INPLACE_FIXED,
    FORMAT_SEQUENTIAL,
    correcting_delta,
    decode_delta,
    encode_delta,
    encoded_size,
    greedy_delta,
    onepass_delta,
)
from repro.delta.varint import decode_varint, encode_varint, varint_size

# -- strategies -------------------------------------------------------------

buffers = st.binary(min_size=0, max_size=2_000)

related_pairs = st.builds(
    lambda base, seed: (bytes(base), _mutated(bytes(base), seed)),
    st.binary(min_size=0, max_size=1_500),
    st.integers(0, 2**31),
)


def _mutated(base: bytes, seed: int) -> bytes:
    from repro.workloads import mutate

    return mutate(base, random.Random(seed))


ALGORITHMS = [greedy_delta, onepass_delta, correcting_delta]
POLICIES = ["constant", "local-min"]


# -- I1: differencing round trip -------------------------------------------


@pytest.mark.parametrize("differ", ALGORITHMS)
@given(pair=related_pairs)
@settings(max_examples=25, deadline=None)
def test_roundtrip_related(differ, pair):
    ref, ver = pair
    script = differ(ref, ver)
    script.validate(reference_length=len(ref))
    assert apply_delta(script, ref) == ver


@pytest.mark.parametrize("differ", ALGORITHMS)
@given(ref=buffers, ver=buffers)
@settings(max_examples=25, deadline=None)
def test_roundtrip_unrelated(differ, ref, ver):
    script = differ(ref, ver)
    assert apply_delta(script, ref) == ver


# -- I2/I3: in-place conversion safety and equivalence ----------------------


@pytest.mark.parametrize("policy", POLICIES)
@given(pair=related_pairs)
@settings(max_examples=25, deadline=None)
def test_in_place_roundtrip(policy, pair):
    ref, ver = pair
    script = correcting_delta(ref, ver)
    result = make_in_place(script, ref, policy=policy)
    assert is_in_place_safe(result.script)          # I3 (Equation 2)
    assert adds_are_last(result.script)
    assert count_wr_conflicts(result.script) == 0
    buf = bytearray(ref)
    apply_in_place(result.script, buf, strict=True)  # dynamic check agrees
    assert bytes(buf) == ver                         # I2


# -- I5/I6: CRWI digraph bounds and eviction correctness --------------------


@given(pair=related_pairs)
@settings(max_examples=25, deadline=None)
def test_lemma1_edge_bound(pair):
    ref, ver = pair
    script = correcting_delta(ref, ver)
    graph = build_crwi_digraph(script)
    assert graph.edge_count <= lemma1_bound(script)  # I5


@pytest.mark.parametrize("policy", POLICIES)
@given(pair=related_pairs)
@settings(max_examples=15, deadline=None)
def test_evictions_are_fvs(policy, pair):
    ref, ver = pair
    script = correcting_delta(ref, ver)
    graph = build_crwi_digraph(script)
    result = make_in_place(script, ref, policy=policy)
    # Map evicted commands back to vertex ids via identity of commands.
    surviving = [c for c in result.script.copies()]
    evicted_ids = [
        i for i, cmd in enumerate(graph.vertices) if cmd not in surviving
    ]
    assert is_feedback_vertex_set(graph, evicted_ids)  # I6


# -- I7: size accounting ----------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES)
@given(pair=related_pairs)
@settings(max_examples=15, deadline=None)
def test_conversion_size_accounting(pair, policy):
    ref, ver = pair
    script = correcting_delta(ref, ver)
    result = make_in_place(script, ref, policy=policy)
    assert result.script.added_bytes == \
        script.added_bytes + result.report.evicted_bytes
    assert result.script.copied_bytes == \
        script.copied_bytes - result.report.evicted_bytes
    assert encoded_size(result.script, FORMAT_INPLACE) >= \
        encoded_size(script, FORMAT_SEQUENTIAL)


# -- I8: directional copies -------------------------------------------------


@given(
    data=st.binary(min_size=1, max_size=300),
    src=st.integers(0, 250),
    dst=st.integers(0, 250),
    length=st.integers(1, 200),
)
@settings(max_examples=100, deadline=None)
def test_directional_copy_matches_buffered(data, src, dst, length):
    from repro.core.apply import _directional_copy

    length = min(length, len(data) - src, len(data) - dst)
    if length <= 0:
        return
    expected = bytearray(data)
    expected[dst:dst + length] = bytes(data[src:src + length])
    for chunk in (1, 7, 4096):
        buf = bytearray(data)
        _directional_copy(buf, src, dst, length, chunk)
        assert buf == expected


# -- I9: codec round trips --------------------------------------------------


@given(value=st.integers(0, 2**63 - 1))
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    assert varint_size(value) == len(encoded)
    decoded, offset = decode_varint(encoded)
    assert decoded == value and offset == len(encoded)


@pytest.mark.parametrize("fmt", [FORMAT_SEQUENTIAL, FORMAT_INPLACE, FORMAT_INPLACE_FIXED])
@given(pair=related_pairs)
@settings(max_examples=20, deadline=None)
def test_delta_codec_roundtrip(fmt, pair):
    ref, ver = pair
    script = correcting_delta(ref, ver)
    payload = encode_delta(script, fmt)
    assert len(payload) == encoded_size(script, fmt)
    decoded, header = decode_delta(payload)
    assert header.version_length == len(ver)
    assert apply_delta(decoded, ref) == ver


# -- I4: write intervals tile the version -----------------------------------


@pytest.mark.parametrize("differ", ALGORITHMS)
@given(pair=related_pairs)
@settings(max_examples=20, deadline=None)
def test_write_intervals_tile(differ, pair):
    ref, ver = pair
    script = differ(ref, ver)
    cursor = 0
    for cmd in script.commands:
        assert cmd.write_interval.start == cursor
        cursor = cmd.write_interval.stop + 1
    assert cursor == len(ver)


# -- arbitrary scripts: conversion never breaks equivalence -----------------


@st.composite
def arbitrary_scripts(draw):
    """Random (possibly highly conflicting) scripts over a random reference."""
    ref_len = draw(st.integers(32, 600))
    rng = random.Random(draw(st.integers(0, 2**31)))
    reference = rng.randbytes(ref_len)
    commands = []
    cursor = 0
    while cursor < ref_len:
        length = min(rng.randint(1, 64), ref_len - cursor)
        if rng.random() < 0.8:
            src = rng.randint(0, ref_len - length)
            commands.append(CopyCommand(src, cursor, length))
        else:
            from repro.core.commands import AddCommand

            commands.append(AddCommand(cursor, rng.randbytes(length)))
        cursor += length
    return reference, DeltaScript(commands, ref_len)


@pytest.mark.parametrize("policy", POLICIES)
@given(case=arbitrary_scripts())
@settings(max_examples=30, deadline=None)
def test_arbitrary_scripts_convert_safely(policy, case):
    reference, script = case
    expected = apply_delta(script, reference)
    result = make_in_place(script, reference, policy=policy)
    assert is_in_place_safe(result.script)
    buf = bytearray(reference)
    apply_in_place(result.script, buf, strict=True)
    assert bytes(buf) == expected
