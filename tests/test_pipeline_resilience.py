"""Fault-matrix tests: the pipeline survives injected faults, deterministically.

The contract under test (ISSUE 2 acceptance criteria):

* a batch of N jobs with injected faults always returns N
  ``PipelineResult`` objects — failures come back structured
  (quarantined), never raised;
* the same fault seed reproduces byte-identical failure/retry traces
  across runs *and* across the serial, thread and process executors.
"""

import random

import pytest

import repro
from repro.delta import ALGORITHMS
from repro.faults import FaultPlan, FaultSpec
from repro.pipeline import DeltaPipeline, PipelineJob
from repro.workloads import make_source_file, mutate

EXECUTORS_UNDER_TEST = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def small_batch():
    """A small reference/versions set (kept tiny: the matrix reruns it a lot)."""
    rng = random.Random(0xFA11)
    reference = make_source_file(rng, 2_500)
    versions = [mutate(reference, rng) for _ in range(3)]
    return reference, versions


def _jobs(small_batch):
    reference, versions = small_batch
    return [PipelineJob(reference, v, "v%d" % i)
            for i, v in enumerate(versions)]


def _run(small_batch, executor, specs, seed=0, **kwargs):
    """One pipeline run under a fresh plan built from ``specs``."""
    kwargs.setdefault("diff_workers", 2)
    kwargs.setdefault("convert_workers", 2)
    plan = FaultPlan([FaultSpec(**spec) for spec in specs], seed=seed)
    with DeltaPipeline(executor=executor, fault_plan=plan, **kwargs) as pipe:
        return pipe.run(_jobs(small_batch))


# Scenario -> (fault specs, pipeline kwargs, expectation checker).  Each
# exercises one leg of the resilience triad: retry, fallback, quarantine.
SCENARIOS = {
    "retry": dict(
        specs=[dict(site="diff.worker", nth=1)],
        kwargs=dict(retries=1),
        check=lambda b: (b.ok_jobs == b.jobs and len(b.retried) == b.jobs
                         and not b.fallbacks and not b.quarantined),
    ),
    "fallback": dict(
        specs=[dict(site="diff.worker", count=2)],
        kwargs=dict(retries=1, fallback=["greedy", "raw"]),
        check=lambda b: (b.ok_jobs == b.jobs and b.fallbacks
                         and not b.quarantined),
    ),
    "quarantine": dict(
        specs=[dict(site="convert.evict", count=99)],
        kwargs=dict(retries=1, fallback=["greedy", "raw"]),
        check=lambda b: (b.ok_jobs == 0 and len(b.quarantined) == b.jobs),
    ),
}


class TestFaultMatrix:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_matrix_is_deterministic_across_runs_and_executors(
            self, scenario, small_batch):
        cfg = SCENARIOS[scenario]
        traces = []
        for executor in EXECUTORS_UNDER_TEST:
            for _rerun in range(2):
                batch = _run(small_batch, executor, cfg["specs"],
                             seed=42, **cfg["kwargs"])
                # N jobs in -> N structured results out, regardless of faults.
                assert batch.jobs == 3
                assert cfg["check"](batch), (scenario, executor)
                traces.append(batch.trace)
        assert all(t == traces[0] for t in traces), (
            "trace diverged across runs/executors for %r" % scenario)

    @pytest.mark.parametrize("executor", EXECUTORS_UNDER_TEST)
    def test_quarantined_results_are_structured(self, executor, small_batch):
        batch = _run(small_batch, executor,
                     [dict(site="diff.worker", count=99)])
        assert len(batch.results) == 3
        for result in batch.results:
            assert not result.ok
            assert result.payload == b""
            assert result.report.quarantined
            assert result.report.attempts == 1  # no retries configured
            assert "InjectedFault" in result.report.failure
            assert result.report.trace[-1].startswith(
                "%s: quarantined" % result.report.name)

    def test_probabilistic_plan_same_seed_same_trace(self, small_batch):
        spec = [dict(site="diff.worker", probability=0.5)]
        kwargs = dict(retries=2, fallback=["raw"])
        first = _run(small_batch, "serial", spec, seed=1, **kwargs)
        second = _run(small_batch, "thread", spec, seed=1, **kwargs)
        assert first.trace == second.trace
        assert first.fault_events > 0  # seed 1 does fire for these jobs
        assert first.ok_jobs == first.jobs  # raw floor always lands

    def test_different_seed_changes_the_trace(self, small_batch):
        spec = [dict(site="diff.worker", probability=0.5)]
        kwargs = dict(retries=2, fallback=["raw"])
        a = _run(small_batch, "serial", spec, seed=1, **kwargs)
        b = _run(small_batch, "serial", spec, seed=2, **kwargs)
        assert a.trace != b.trace


class TestDegradationChain:
    def test_fallback_to_second_differ(self, small_batch):
        # Only the first diff call fails: the primary's lone attempt dies,
        # the first fallback link (greedy) succeeds.
        batch = _run(small_batch, "serial",
                     [dict(site="diff.worker", nth=1)],
                     fallback=["greedy", "raw"])
        reference, versions = small_batch
        for i, result in enumerate(batch.results):
            assert result.ok
            assert result.report.fallback == "greedy"
            assert result.report.attempts == 2
            buf = bytearray(reference)
            assert bytes(repro.patch_in_place(buf, result.payload)) == versions[i]

    def test_raw_floor_survives_total_differ_failure(self, small_batch):
        # Every differ call fails, for every algorithm: only the raw
        # full-rewrite floor can serve the job — and it round-trips.
        batch = _run(small_batch, "serial",
                     [dict(site="diff.worker", count=999)],
                     retries=1, fallback=["greedy", "raw"])
        reference, versions = small_batch
        assert batch.ok_jobs == batch.jobs
        for i, result in enumerate(batch.results):
            assert result.report.fallback == "raw"
            # A raw rewrite carries the whole version as literals.
            assert result.report.delta_bytes > len(versions[i])
            buf = bytearray(reference)
            assert bytes(repro.patch_in_place(buf, result.payload)) == versions[i]

    def test_unknown_fallback_rejected(self):
        with pytest.raises(ValueError):
            DeltaPipeline(fallback=["sorcery"])

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            DeltaPipeline(retries=-1)


class TestCacheDegrade:
    def test_cache_fault_degrades_without_failing_the_job(self, small_batch):
        batch = _run(small_batch, "serial",
                     [dict(site="cache.lookup", count=99)])
        reference, versions = small_batch
        assert batch.ok_jobs == batch.jobs
        assert batch.cache_hits == 0  # every lookup was bypassed
        for result in batch.results:
            assert result.report.attempts == 1
            assert any("cache bypassed" in line for line in result.report.trace)
            assert result.report.faults  # recorded, not fatal


class TestTimeouts:
    def test_injected_timeout_is_retryable(self, small_batch):
        batch = _run(small_batch, "serial",
                     [dict(site="diff.worker", nth=1, error="timeout")],
                     retries=1)
        assert batch.ok_jobs == batch.jobs
        for result in batch.results:
            assert result.report.attempts == 2
            assert any("StageTimeoutError" in f for f in result.report.faults)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_watchdog_flags_real_overruns(self, executor, small_batch):
        # A budget no real diff can meet: every attempt times out and the
        # job quarantines instead of raising or hanging.
        with DeltaPipeline(executor=executor, stage_timeout=1e-9,
                           diff_workers=2, convert_workers=2) as pipe:
            batch = pipe.run(_jobs(small_batch))
        assert len(batch.results) == 3
        for result in batch.results:
            assert result.report.quarantined
            assert "stage exceeded" in result.report.failure

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            DeltaPipeline(stage_timeout=0)


class TestFaultIsolationBugfixes:
    """Regression tests for the PR-1 executor bugs (bare fut.result())."""

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_raising_differ_never_escapes_run(self, executor, small_batch,
                                              monkeypatch):
        calls = {"n": 0}
        real = ALGORITHMS["correcting"]

        def flaky(reference, version, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:  # poison exactly one mid-batch job
                raise RuntimeError("differ exploded")
            return real(reference, version, **kwargs)

        monkeypatch.setitem(ALGORITHMS, "correcting", flaky)
        pipe = DeltaPipeline(executor=executor, diff_workers=2,
                             convert_workers=2)
        batch = pipe.run(_jobs(small_batch))  # must not raise
        assert len(batch.results) == 3
        failed = [r for r in batch.results if not r.ok]
        assert len(failed) == 1
        assert failed[0].report.failure == "RuntimeError: differ exploded"
        assert sum(1 for r in batch.results if r.ok) == 2
        # The pools survived the failure: a clean batch still works, and
        # close() after the failed batch neither hangs nor raises.
        monkeypatch.setitem(ALGORITHMS, "correcting", real)
        again = pipe.run(_jobs(small_batch))
        assert again.ok_jobs == 3
        pipe.close()

    def test_mid_batch_failure_leaves_no_orphans(self, small_batch,
                                                 monkeypatch):
        def always_boom(reference, version, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setitem(ALGORITHMS, "correcting", always_boom)
        pipe = DeltaPipeline(executor="thread", diff_workers=2,
                             convert_workers=2)
        batch = pipe.run(_jobs(small_batch))
        assert len(batch.results) == 3
        assert batch.ok_jobs == 0
        pipe.close()  # would hang if queued work leaked
        assert pipe._diff_pool is None and pipe._convert_pool is None
