"""Unit tests for the cycle-breaking topological sort (repro.core.toposort)."""

import random

import pytest

from repro.analysis.adversarial import figure2_case, figure3_case, rotation_medley
from repro.core.commands import CopyCommand, DeltaScript
from repro.core.crwi import CRWIDigraph, build_crwi_digraph
from repro.core.policies import (
    ConstantTimePolicy,
    LocallyMinimumPolicy,
    is_feedback_vertex_set,
)
from repro.core.toposort import (
    cycle_breaking_toposort,
    order_respects_edges,
    plain_toposort,
)
from repro.exceptions import CycleBreakError
from repro.workloads import mutate


def make_graph(n: int, edges, lengths=None) -> CRWIDigraph:
    """Hand-build a digraph; vertex commands are synthetic placeholders."""
    lengths = lengths or [10] * n
    graph = CRWIDigraph(
        vertices=[CopyCommand(0, i * 1000, lengths[i]) for i in range(n)],
        successors=[[] for _ in range(n)],
        predecessors=[[] for _ in range(n)],
    )
    for u, v in edges:
        graph.successors[u].append(v)
        graph.predecessors[v].append(u)
    return graph


class TestAcyclicSort:
    def test_chain(self):
        graph = make_graph(4, [(0, 1), (1, 2), (2, 3)])
        result = cycle_breaking_toposort(graph, ConstantTimePolicy())
        assert result.order == [0, 1, 2, 3]
        assert result.evicted == []
        assert result.cycles_found == 0

    def test_diamond(self):
        graph = make_graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        result = cycle_breaking_toposort(graph, ConstantTimePolicy())
        assert not result.evicted
        assert order_respects_edges(graph, result)

    def test_disconnected(self):
        graph = make_graph(5, [(0, 1), (3, 4)])
        result = cycle_breaking_toposort(graph, ConstantTimePolicy())
        assert sorted(result.order) == [0, 1, 2, 3, 4]
        assert order_respects_edges(graph, result)

    def test_empty(self):
        result = cycle_breaking_toposort(make_graph(0, []), ConstantTimePolicy())
        assert result.order == []


class TestCycleBreaking:
    def test_two_cycle_constant(self):
        graph = make_graph(2, [(0, 1), (1, 0)])
        result = cycle_breaking_toposort(graph, ConstantTimePolicy())
        assert len(result.evicted) == 1
        assert result.cycles_found == 1
        assert is_feedback_vertex_set(graph, result.evicted)
        assert order_respects_edges(graph, result)

    def test_two_cycle_local_min_picks_cheapest(self):
        graph = make_graph(2, [(0, 1), (1, 0)], lengths=[100, 10])
        result = cycle_breaking_toposort(
            graph, LocallyMinimumPolicy(), costs=graph.costs()
        )
        assert result.evicted == [1]

    def test_long_cycle(self):
        n = 50
        edges = [(i, (i + 1) % n) for i in range(n)]
        graph = make_graph(n, edges)
        result = cycle_breaking_toposort(graph, ConstantTimePolicy())
        assert len(result.evicted) == 1
        assert result.total_cycle_length == n
        assert order_respects_edges(graph, result)

    def test_two_overlapping_cycles_one_shared_vertex(self):
        # 0->1->0 and 1->2->1: evicting vertex 1 breaks both.
        graph = make_graph(
            3, [(0, 1), (1, 0), (1, 2), (2, 1)], lengths=[100, 5, 100]
        )
        result = cycle_breaking_toposort(
            graph, LocallyMinimumPolicy(), costs=graph.costs()
        )
        assert result.evicted == [1]
        assert order_respects_edges(graph, result)

    def test_local_min_unwind_and_revisit(self):
        # Cycle 0->1->2->0 where the cheapest vertex (0) is deepest in the
        # DFS path: the sorter must unwind and re-explore 1 and 2.
        graph = make_graph(3, [(0, 1), (1, 2), (2, 0)], lengths=[5, 100, 100])
        result = cycle_breaking_toposort(
            graph, LocallyMinimumPolicy(), costs=graph.costs()
        )
        assert result.evicted == [0]
        assert result.revisits >= 1
        assert sorted(result.order) == [1, 2]
        assert order_respects_edges(graph, result)

    def test_constant_never_revisits(self):
        medley = rotation_medley(16, [3, 5, 9, 17])
        graph = build_crwi_digraph(medley.script)
        result = cycle_breaking_toposort(graph, ConstantTimePolicy())
        assert result.revisits == 0
        assert result.cycles_found == 4

    def test_policy_must_choose_cycle_member(self):
        class RoguePolicy:
            name = "rogue"

            def choose(self, cycle, costs):
                return -1  # not a vertex at all

        graph = make_graph(2, [(0, 1), (1, 0)])
        with pytest.raises(CycleBreakError):
            cycle_breaking_toposort(graph, RoguePolicy())

    @pytest.mark.parametrize("policy_cls", [ConstantTimePolicy, LocallyMinimumPolicy])
    def test_figure_cases_fully_resolved(self, policy_cls):
        for case in (figure2_case(3), figure3_case(8), rotation_medley(8, [2, 4, 8])):
            graph = build_crwi_digraph(case.script)
            result = cycle_breaking_toposort(graph, policy_cls(), graph.costs())
            assert is_feedback_vertex_set(graph, result.evicted)
            assert order_respects_edges(graph, result)
            assert len(result.order) + len(result.evicted) == graph.vertex_count

    @pytest.mark.parametrize("seed", range(8))
    def test_random_digraphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        edges = set()
        for _ in range(rng.randint(0, 3 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add((u, v))
        graph = make_graph(n, sorted(edges),
                           lengths=[rng.randint(5, 500) for _ in range(n)])
        for policy in (ConstantTimePolicy(), LocallyMinimumPolicy()):
            result = cycle_breaking_toposort(graph, policy, graph.costs())
            assert is_feedback_vertex_set(graph, result.evicted), (seed, policy.name)
            assert order_respects_edges(graph, result), (seed, policy.name)
            assert len(result.order) + len(result.evicted) == n
            assert len(set(result.order) | set(result.evicted)) == n


class TestPlainToposort:
    def test_orders_dag(self):
        graph = make_graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = plain_toposort(graph)
        pos = {v: i for i, v in enumerate(order)}
        assert pos[0] < pos[1] < pos[3]
        assert pos[0] < pos[2] < pos[3]

    def test_raises_on_cycle(self):
        graph = make_graph(2, [(0, 1), (1, 0)])
        with pytest.raises(CycleBreakError):
            plain_toposort(graph)

    def test_excluding_breaks_cycle(self):
        graph = make_graph(3, [(0, 1), (1, 0), (1, 2)])
        order = plain_toposort(graph, excluding=[0])
        assert sorted(order) == [1, 2]


class TestLocalityToposort:
    def test_valid_topological_order(self):
        from repro.core.toposort import locality_toposort

        graph = make_graph(6, [(0, 3), (3, 1), (4, 5)])
        order = locality_toposort(graph)
        pos = {v: i for i, v in enumerate(order)}
        assert pos[0] < pos[3] < pos[1]
        assert pos[4] < pos[5]
        assert sorted(order) == list(range(6))

    def test_unconstrained_vertices_stay_sequential(self):
        from repro.core.toposort import locality_toposort

        graph = make_graph(8, [])
        assert locality_toposort(graph) == list(range(8))

    def test_descending_run_emitted_contiguously(self):
        # A right-shift chain forces 3 before 2 before 1; the nearest-
        # neighbor frontier should emit the cascade contiguously rather
        # than interleaving the distant vertices 6 and 7.
        from repro.core.toposort import locality_toposort

        graph = make_graph(8, [(3, 2), (2, 1)])
        order = locality_toposort(graph)
        i = order.index(3)
        assert order[i:i + 3] == [3, 2, 1]

    def test_raises_on_cycles(self):
        from repro.core.toposort import locality_toposort
        from repro.exceptions import CycleBreakError

        graph = make_graph(2, [(0, 1), (1, 0)])
        with pytest.raises(CycleBreakError):
            locality_toposort(graph)

    def test_excluding(self):
        from repro.core.toposort import locality_toposort

        graph = make_graph(3, [(0, 1), (1, 0)])
        order = locality_toposort(graph, excluding=[1])
        assert sorted(order) == [0, 2]

    def test_converter_ordering_flag(self, rng=None):
        import random

        import repro
        from repro.workloads import mutate

        rng = random.Random(4)
        ref = rng.randbytes(3000)
        ver = mutate(ref, rng)
        base = repro.diff(ref, ver)
        for ordering in ("dfs", "locality"):
            result = repro.make_in_place(base, ref, ordering=ordering)
            buf = bytearray(ref)
            repro.apply_in_place(result.script, buf, strict=True)
            assert bytes(buf) == ver, ordering
        with pytest.raises(ValueError):
            repro.make_in_place(base, ref, ordering="sideways")
