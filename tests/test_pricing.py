"""Exact eviction pricing: reported cost must equal encoded-size growth.

The paper prices an eviction at ``l - |f|`` with ``|f|`` a fixed
codeword field width.  This library's default wire format uses varints,
so ``|f|`` depends on the offset value; ``offset_encoding_size`` now
accepts a per-value size function, and in that mode the converter
reports the EXACT number of bytes the encoded delta grows by — the
quantity the paper's cost model approximates.
"""

import pytest

from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.core.convert import make_in_place
from repro.core.crwi import build_crwi_digraph
from repro.core.integrated import InPlaceDeltaBuilder, diff_in_place_integrated
from repro.delta import (
    ALGORITHMS,
    FORMAT_INPLACE,
    FORMAT_INPLACE_FIXED,
    encoded_size,
    varint_size,
)

from .test_roundtrip_fuzz import _scrambled_pair


def two_cycle(length=300):
    """Two copies that swap halves of the file: one forced eviction."""
    script = DeltaScript(
        [CopyCommand(length, 0, length), CopyCommand(0, length, length)],
        2 * length,
    )
    reference = bytes(i % 251 for i in range(2 * length))
    return script, reference


class TestExactGrowth:
    def test_varint_cost_equals_varint_growth(self):
        script, reference = two_cycle()
        result = make_in_place(script, reference,
                               offset_encoding_size=varint_size)
        assert result.report.evicted_count == 1
        growth = (encoded_size(result.script, FORMAT_INPLACE)
                  - encoded_size(script, FORMAT_INPLACE))
        assert result.report.eviction_cost == growth

    def test_fixed_callable_cost_equals_fixed_growth(self):
        script, reference = two_cycle()
        result = make_in_place(script, reference,
                               offset_encoding_size=lambda _value: 4)
        growth = (encoded_size(result.script, FORMAT_INPLACE_FIXED)
                  - encoded_size(script, FORMAT_INPLACE_FIXED))
        assert result.report.eviction_cost == growth

    def test_scratch_spill_cost_equals_growth(self):
        script, reference = two_cycle()
        result = make_in_place(script, reference, scratch_budget=512,
                               offset_encoding_size=varint_size)
        assert result.report.spilled_count == 1
        growth = (encoded_size(result.script, FORMAT_INPLACE)
                  - encoded_size(script, FORMAT_INPLACE))
        assert result.report.eviction_cost == growth

    def test_long_eviction_spans_add_chunks(self):
        # An evicted copy longer than one add codeword's 255-byte data
        # field must be priced across all its chunks.
        script, reference = two_cycle(1000)
        result = make_in_place(script, reference,
                               offset_encoding_size=varint_size)
        growth = (encoded_size(result.script, FORMAT_INPLACE)
                  - encoded_size(script, FORMAT_INPLACE))
        assert result.report.eviction_cost == growth

    @pytest.mark.parametrize("differ", ["greedy", "onepass", "correcting"])
    @pytest.mark.parametrize("scratch", [0, 4096])
    def test_random_scripts_varint_growth(self, differ, scratch):
        for seed, longer in ((21, False), (22, True)):
            reference, version = _scrambled_pair(seed, longer)
            script = ALGORITHMS[differ](reference, version)
            result = make_in_place(script, reference, scratch_budget=scratch,
                                   offset_encoding_size=varint_size)
            growth = (encoded_size(result.script, FORMAT_INPLACE)
                      - encoded_size(script, FORMAT_INPLACE))
            assert result.report.eviction_cost == growth

    def test_legacy_int_model_unchanged(self):
        # The paper's fixed-width cost model is the default and keeps its
        # historical arithmetic (max(1, l - size), spill 2 + 3*size).
        script, reference = two_cycle()
        result = make_in_place(script, reference)
        assert result.report.eviction_cost == 300 - 4


class TestPricingChangesDecisions:
    def make_asymmetric_cycle(self):
        """A 2-cycle whose cheapest victim differs by pricing model.

        Copy X (src=0, len=5): varint cost 5-1=4, fixed-4 cost max(1, 5-4)=1.
        Copy Y (src=200000, len=6): varint cost 6-3=3, fixed-4 cost 6-4=2.
        Local-min evicts Y under varint pricing but X under fixed pricing.
        """
        x = CopyCommand(0, 200001, 5)
        y = CopyCommand(200000, 0, 6)
        script = DeltaScript([y, x], 200006)
        reference = bytes(200006)
        return script, reference

    def test_varint_pricing_flips_victim(self):
        script, reference = self.make_asymmetric_cycle()
        graph = build_crwi_digraph(script)
        assert not graph.is_acyclic()

        fixed = make_in_place(script, reference, policy="local-min")
        varint = make_in_place(script, reference, policy="local-min",
                               offset_encoding_size=varint_size)
        fixed_srcs = {c.src for c in fixed.script.commands
                      if isinstance(c, CopyCommand)}
        varint_srcs = {c.src for c in varint.script.commands
                       if isinstance(c, CopyCommand)}
        assert fixed_srcs == {200000}  # X evicted under fixed pricing
        assert varint_srcs == {0}      # Y evicted under varint pricing

    def test_crwi_cost_accepts_callable(self):
        script, _reference = self.make_asymmetric_cycle()
        graph = build_crwi_digraph(script)
        by_src = {graph.vertices[v].src: v for v in range(graph.vertex_count)}
        assert graph.cost(by_src[0], offset_encoding_size=varint_size) == 4
        assert graph.cost(by_src[200000], offset_encoding_size=varint_size) == 3
        assert graph.costs(varint_size) == [
            graph.cost(v, varint_size) for v in range(graph.vertex_count)
        ]


class TestOrderingValidation:
    def test_bad_ordering_rejected_even_without_cycles(self):
        # Validation must happen up front: an acyclic (even empty) script
        # used to slip past the check because no eviction stage ran.
        script = DeltaScript([AddCommand(0, b"xy")], 2)
        with pytest.raises(ValueError, match="ordering"):
            make_in_place(script, b"ab", ordering="sideways")

    def test_integrated_builder_threads_ordering(self, sample_pair):
        reference, version = sample_pair
        for ordering in ("dfs", "locality"):
            direct = diff_in_place_integrated(reference, version,
                                              ordering=ordering)
            via_convert = make_in_place(
                ALGORITHMS["correcting"](reference, version), reference,
                ordering=ordering,
            )
            assert direct.script.commands == via_convert.script.commands

    def test_integrated_builder_rejects_bad_ordering(self):
        builder = InPlaceDeltaBuilder()
        builder.add_literal(0, b"xy")
        with pytest.raises(ValueError, match="ordering"):
            builder.finish(b"ab", ordering="sideways")

    def test_integrated_builder_varint_pricing(self):
        script, reference = two_cycle()
        builder = InPlaceDeltaBuilder()
        for command in sorted(script.commands, key=lambda c: c.dst):
            builder.feed(command)
        direct = builder.finish(reference, offset_encoding_size=varint_size)
        converted = make_in_place(script, reference,
                                  offset_encoding_size=varint_size)
        assert direct.script.commands == converted.script.commands
        assert direct.report.eviction_cost == converted.report.eviction_cost
