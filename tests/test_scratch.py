"""Tests for the bounded-scratch extension (spill/fill cycle breaking).

The paper's pure algorithm converts cycle-breaking copies into adds,
paying the copied data in delta size.  The extension (anticipated by the
paper's conclusions; realized in the authors' journal follow-up) routes
those copies through a small device scratch buffer instead: a
SpillCommand saves the source bytes before any write clobbers them and
a FillCommand restores them — a few codewords instead of the whole data.
"""

import random

import pytest

import repro
from repro.core.apply import apply_delta, apply_in_place
from repro.core.commands import (
    CopyCommand,
    DeltaScript,
    FillCommand,
    SpillCommand,
)
from repro.core.convert import make_in_place
from repro.core.verify import is_in_place_safe
from repro.delta import (
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    correcting_delta,
    decode_delta,
    encode_delta,
    encoded_size,
)
from repro.delta.stream import apply_delta_stream
from repro.exceptions import (
    DeltaFormatError,
    DeltaRangeError,
    OverlappingWriteError,
)
from repro.workloads import mutate


def swap_script() -> DeltaScript:
    """Block swap: a 2-cycle that must evict one copy."""
    return DeltaScript(
        [CopyCommand(4, 0, 4), CopyCommand(0, 4, 4)], version_length=8
    )


class TestCommandModel:
    def test_spill_intervals(self):
        spill = SpillCommand(src=10, scratch=2, length=5)
        assert spill.read_interval.start == 10
        assert spill.scratch_interval.stop == 6

    def test_fill_intervals(self):
        fill = FillCommand(scratch=2, dst=20, length=5)
        assert fill.scratch_interval.start == 2
        assert fill.write_interval.stop == 24

    def test_rejects_bad_fields(self):
        with pytest.raises(DeltaRangeError):
            SpillCommand(-1, 0, 4)
        with pytest.raises(DeltaRangeError):
            SpillCommand(0, 0, 0)
        with pytest.raises(DeltaRangeError):
            FillCommand(0, -1, 4)

    def test_script_scratch_length(self):
        script = DeltaScript(
            [SpillCommand(0, 10, 6), FillCommand(10, 0, 6), CopyCommand(8, 6, 2)],
            version_length=8,
        )
        assert script.scratch_length == 16
        assert DeltaScript([], 0).scratch_length == 0

    def test_validate_checks_scratch(self):
        overlapping = DeltaScript(
            [SpillCommand(0, 0, 4), SpillCommand(4, 2, 4),
             FillCommand(0, 0, 4), FillCommand(2, 4, 4)],
            version_length=8,
        )
        with pytest.raises(OverlappingWriteError):
            overlapping.validate(require_cover=False)

    def test_validate_fill_needs_spilled_region(self):
        dangling = DeltaScript(
            [SpillCommand(0, 0, 4), FillCommand(2, 0, 4), FillCommand(0, 4, 2)],
            version_length=8,
        )
        with pytest.raises(DeltaRangeError):
            dangling.validate(require_cover=False)


class TestApplyWithScratch:
    def script(self) -> DeltaScript:
        # Swap blocks via scratch: spill [0,3], copy [4,7]->[0,3], fill.
        return DeltaScript(
            [SpillCommand(0, 0, 4), CopyCommand(4, 0, 4), FillCommand(0, 4, 4)],
            version_length=8,
        )

    def test_two_space(self):
        assert apply_delta(self.script(), b"abcdwxyz") == b"wxyzabcd"

    def test_in_place_strict(self):
        buf = bytearray(b"abcdwxyz")
        apply_in_place(self.script(), buf, strict=True)
        assert buf == b"wxyzabcd"

    def test_in_place_equals_two_space(self, rng):
        ref = rng.randbytes(1000)
        ver = mutate(ref, rng)
        base = correcting_delta(ref, ver)
        result = make_in_place(base, ref, scratch_budget=1 << 16)
        expected = apply_delta(result.script, ref)
        buf = bytearray(ref)
        apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == expected == ver

    def test_spill_must_read_unwritten_bytes(self):
        # A spill placed after a write into its read interval conflicts.
        bad = DeltaScript(
            [CopyCommand(4, 0, 4), SpillCommand(0, 0, 4), FillCommand(0, 4, 4)],
            version_length=8,
        )
        assert not is_in_place_safe(bad)


class TestConvertWithScratch:
    def test_swap_spilled_not_added(self):
        result = make_in_place(swap_script(), scratch_budget=16)
        report = result.report
        assert report.evicted_count == 1
        assert report.spilled_count == 1
        assert report.spilled_bytes == 4
        assert report.scratch_used == 4
        assert not result.script.adds()
        assert len(result.script.spills()) == 1
        assert len(result.script.fills()) == 1

    def test_no_reference_needed_when_scratch_suffices(self):
        # Pure spill/fill conversion carries no literal data.
        result = make_in_place(swap_script(), reference=None, scratch_budget=64)
        assert result.report.spilled_count == 1

    def test_budget_zero_matches_paper_algorithm(self):
        with_scratch = make_in_place(swap_script(), b"01234567", scratch_budget=0)
        assert with_scratch.report.spilled_count == 0
        assert with_scratch.report.evicted_count == 1
        assert len(with_scratch.script.adds()) == 1

    def test_partial_budget_prefers_large_evictions(self):
        # Two independent 2-cycles: one large (100-byte blocks), one small
        # (8-byte blocks); budget fits only the large one.
        commands = [
            CopyCommand(100, 0, 100), CopyCommand(0, 100, 100),
            CopyCommand(208, 200, 8), CopyCommand(200, 208, 8),
        ]
        script = DeltaScript(commands, 216)
        ref = bytes(range(216 % 256)) * 2
        ref = (b"x" * 216)
        result = make_in_place(script, ref, scratch_budget=104)
        assert result.report.spilled_count == 1
        assert result.report.spilled_bytes == 100
        assert result.report.evicted_count == 2
        assert len(result.script.adds()) == 1  # the small one fell back

    def test_scratch_reduces_encoded_size(self, rng):
        ref = rng.randbytes(4000)
        # Force cycles: swap two large blocks.
        ver = ref[2000:] + ref[:2000]
        base = correcting_delta(ref, ver)
        plain = make_in_place(base, ref, scratch_budget=0)
        scratched = make_in_place(base, ref, scratch_budget=1 << 16)
        if plain.report.evicted_bytes > 64:
            assert encoded_size(scratched.script, FORMAT_INPLACE) < \
                encoded_size(plain.script, FORMAT_INPLACE)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            make_in_place(swap_script(), scratch_budget=-1)

    @pytest.mark.parametrize("policy", ["constant", "local-min", "greedy-global"])
    def test_all_policies_support_scratch(self, policy, rng):
        ref = rng.randbytes(2000)
        ver = ref[1000:] + ref[:1000]
        base = correcting_delta(ref, ver)
        result = make_in_place(base, ref, policy=policy, scratch_budget=1 << 14)
        buf = bytearray(ref)
        apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == ver


class TestScratchWireFormat:
    def result(self):
        return make_in_place(swap_script(), scratch_budget=16)

    def test_round_trip(self):
        script = self.result().script
        payload = encode_delta(script, FORMAT_INPLACE)
        decoded, header = decode_delta(payload)
        assert header.scratch_length == script.scratch_length == 4
        assert decoded.commands == script.commands

    def test_encoded_size_matches(self):
        script = self.result().script
        assert encoded_size(script, FORMAT_INPLACE) == \
            len(encode_delta(script, FORMAT_INPLACE))

    def test_sequential_format_rejects_scratch(self):
        with pytest.raises(DeltaFormatError):
            encode_delta(self.result().script, FORMAT_SEQUENTIAL)

    def test_streaming_apply(self):
        script = self.result().script
        payload = encode_delta(script, FORMAT_INPLACE)
        buf = bytearray(b"abcdwxyz")
        apply_delta_stream(payload, buf, strict=True)
        assert buf == b"wxyzabcd"


class TestDeviceScratchAccounting:
    def test_device_charges_scratch_ram(self, rng):
        from repro.device import ConstrainedDevice

        ref = rng.randbytes(20_000)
        ver = ref[10_000:] + ref[:10_000]  # big swap: large eviction
        base = correcting_delta(ref, ver)
        result = make_in_place(base, ref, scratch_budget=1 << 14)
        assert result.report.scratch_used > 0
        from repro.delta import version_checksum

        payload = encode_delta(result.script, FORMAT_INPLACE,
                               version_crc32=version_checksum(ver))
        device = ConstrainedDevice(ref, ram=len(payload) + 8192
                                   + result.report.scratch_used)
        device.apply_delta_in_place(payload)
        assert device.image == ver
        assert device.ram.in_use == 0  # scratch freed after the update
        assert device.ram.peak >= result.report.scratch_used

    def test_update_server_scratch_budget(self, rng):
        from repro.device import ConstrainedDevice, UpdateServer, get_channel, run_update

        ref = rng.randbytes(20_000)
        ver = ref[10_000:] + ref[:10_000]
        plain_server = UpdateServer()
        scratch_server = UpdateServer(scratch_budget=1 << 14)
        for server in (plain_server, scratch_server):
            server.publish("pkg", ref)
            server.publish("pkg", ver)
        plain_payload = plain_server.build_payload("pkg", 0, 1, "in-place")
        scratch_payload = scratch_server.build_payload("pkg", 0, 1, "in-place")
        assert len(scratch_payload) < len(plain_payload)

        device = ConstrainedDevice(ref, ram=len(scratch_payload) + (1 << 14) + 8192)
        outcome = run_update(scratch_server, device, get_channel("modem-56k"),
                             "pkg", have=0, strategy="in-place")
        assert outcome.succeeded, outcome.failure
        assert device.image == ver
