"""Unit tests for the two reconstruction engines (repro.core.apply)."""

import pytest

from repro.core.apply import _directional_copy, apply_delta, apply_in_place, reconstruct
from repro.core.commands import AddCommand, CopyCommand, DeltaScript
from repro.exceptions import DeltaRangeError, WriteBeforeReadError


class TestApplyDelta:
    def test_copy_and_add(self):
        ref = b"0123456789"
        script = DeltaScript(
            [CopyCommand(2, 0, 4), AddCommand(4, b"XY")], version_length=6
        )
        assert apply_delta(script, ref) == b"2345XY"

    def test_order_independent(self):
        ref = b"abcdef"
        cmds = [CopyCommand(0, 3, 3), AddCommand(0, b"zzz")]
        forward = apply_delta(DeltaScript(cmds, 6), ref)
        backward = apply_delta(DeltaScript(list(reversed(cmds)), 6), ref)
        assert forward == backward == b"zzzabc"

    def test_read_out_of_range(self):
        script = DeltaScript([CopyCommand(8, 0, 5)], version_length=5)
        with pytest.raises(DeltaRangeError):
            apply_delta(script, b"0123456789"[:10])

    def test_memoryview_reference(self):
        ref = memoryview(b"0123456789")
        script = DeltaScript([CopyCommand(0, 0, 10)], version_length=10)
        assert apply_delta(script, ref) == b"0123456789"

    def test_empty_script(self):
        assert apply_delta(DeltaScript([], 0), b"anything") == b""


class TestDirectionalCopy:
    def test_non_overlapping(self):
        buf = bytearray(b"abcdefgh")
        _directional_copy(buf, 0, 4, 4, chunk=2)
        assert buf == b"abcdabcd"

    def test_overlap_src_before_dst_right_to_left(self):
        # Shift right by 2: src=0, dst=2, overlapping; must copy backwards.
        buf = bytearray(b"abcdef__")
        _directional_copy(buf, 0, 2, 6, chunk=1)
        assert buf == b"ababcdef"

    def test_overlap_src_after_dst_left_to_right(self):
        # Shift left by 2: src=2, dst=0, overlapping; copies forwards.
        buf = bytearray(b"__abcdef")
        _directional_copy(buf, 2, 0, 6, chunk=1)
        assert buf == b"abcdefef"

    @pytest.mark.parametrize("chunk", [1, 2, 3, 5, 4096])
    def test_overlap_matches_buffered_copy(self, chunk):
        base = bytes(range(64))
        for src, dst, length in [(0, 8, 40), (8, 0, 40), (10, 12, 30), (12, 10, 30)]:
            buf = bytearray(base)
            expected = bytearray(base)
            expected[dst:dst + length] = base[src:src + length]  # via temp copy
            _directional_copy(buf, src, dst, length, chunk)
            assert buf == expected, (src, dst, length, chunk)

    def test_same_position_noop(self):
        buf = bytearray(b"abcd")
        _directional_copy(buf, 1, 1, 3, chunk=2)
        assert buf == b"abcd"


class TestApplyInPlace:
    def test_simple(self):
        buf = bytearray(b"0123456789")
        script = DeltaScript(
            [CopyCommand(6, 0, 4), AddCommand(4, b"ABCDEF")], version_length=10
        )
        apply_in_place(script, buf)
        assert buf == b"6789ABCDEF"

    def test_growing_version(self):
        buf = bytearray(b"abc")
        script = DeltaScript(
            [CopyCommand(0, 0, 3), AddCommand(3, b"defgh")], version_length=8
        )
        apply_in_place(script, buf)
        assert buf == b"abcdefgh"

    def test_shrinking_version(self):
        buf = bytearray(b"abcdefgh")
        script = DeltaScript([CopyCommand(4, 0, 3)], version_length=3)
        apply_in_place(script, buf)
        assert buf == b"efg"

    def test_strict_detects_conflict(self):
        # Command 0 writes [0,3]; command 1 then reads [2,5]: WR conflict.
        script = DeltaScript(
            [CopyCommand(4, 0, 4), CopyCommand(2, 4, 4)], version_length=8
        )
        buf = bytearray(b"01234567")
        with pytest.raises(WriteBeforeReadError) as excinfo:
            apply_in_place(script, buf, strict=True)
        assert excinfo.value.reader_index == 1

    def test_unstrict_corrupts_silently(self):
        # The same conflicting script, non-strict: produces *wrong* output
        # (the failure mode the paper's converter prevents).
        ref = b"01234567"
        script = DeltaScript(
            [CopyCommand(4, 0, 4), CopyCommand(2, 4, 4)], version_length=8
        )
        expected = apply_delta(script, ref)
        buf = bytearray(ref)
        apply_in_place(script, buf, strict=False)
        assert bytes(buf) != expected

    def test_self_overlap_allowed_in_strict(self):
        # A single self-overlapping copy is not a WR conflict (section 4.1).
        buf = bytearray(b"abcdef")
        script = DeltaScript([CopyCommand(0, 2, 4)], version_length=6)
        apply_in_place(script, buf, strict=True)
        assert buf == b"ababcd"

    def test_read_beyond_original_reference(self):
        # The version grows, but copies may only read the original bytes.
        buf = bytearray(b"abc")
        script = DeltaScript(
            [AddCommand(0, b"xxx"), CopyCommand(4, 3, 2)], version_length=5
        )
        with pytest.raises(DeltaRangeError):
            apply_in_place(script, buf)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            apply_in_place(DeltaScript([], 0), bytearray(), chunk_size=0)

    @pytest.mark.parametrize("chunk", [1, 3, 7, 4096])
    def test_chunk_size_never_changes_result(self, chunk):
        # In-place safe by construction; includes a left-to-right
        # (src >= dst) and a right-to-left (src < dst) overlapping copy.
        ref = bytes(range(50)) * 2
        script = DeltaScript(
            [CopyCommand(50, 0, 30),
             CopyCommand(32, 30, 40),   # overlaps own write, src >= dst
             CopyCommand(70, 72, 18),   # overlaps own write, src < dst
             AddCommand(70, b"YY"), AddCommand(90, b"Z" * 10)],
            version_length=100,
        )
        expected = apply_delta(script, ref)
        buf = bytearray(ref)
        apply_in_place(script, buf, strict=True, chunk_size=chunk)
        assert bytes(buf) == expected


class TestReconstruct:
    def test_two_space(self):
        ref = b"hello world"
        script = DeltaScript([CopyCommand(6, 0, 5)], version_length=5)
        assert reconstruct(script, ref) == b"world"

    def test_in_place(self):
        ref = b"hello world"
        script = DeltaScript([CopyCommand(6, 0, 5)], version_length=5)
        assert reconstruct(script, ref, in_place=True) == b"world"

    def test_in_place_is_strict(self):
        script = DeltaScript(
            [CopyCommand(4, 0, 4), CopyCommand(2, 4, 4)], version_length=8
        )
        with pytest.raises(WriteBeforeReadError):
            reconstruct(script, b"01234567", in_place=True)
