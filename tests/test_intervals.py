"""Unit tests for repro.core.intervals."""

import pytest

from repro.core.intervals import (
    DynamicIntervalSet,
    Interval,
    IntervalIndex,
    are_disjoint,
    find_gaps,
    merge_intervals,
    total_length,
)


class TestInterval:
    def test_from_length(self):
        iv = Interval.from_length(10, 5)
        assert iv.start == 10 and iv.stop == 14
        assert iv.length == 5

    def test_from_length_zero_is_empty(self):
        iv = Interval.from_length(7, 0)
        assert iv.empty
        assert iv.length == 0

    def test_from_length_negative_raises(self):
        with pytest.raises(ValueError):
            Interval.from_length(0, -1)

    def test_intersects_overlapping(self):
        assert Interval(0, 9).intersects(Interval(9, 20))
        assert Interval(9, 20).intersects(Interval(0, 9))

    def test_intersects_adjacent_not(self):
        # Closed intervals: [0,9] and [10,19] share no byte.
        assert not Interval(0, 9).intersects(Interval(10, 19))

    def test_intersects_nested(self):
        assert Interval(0, 100).intersects(Interval(40, 50))

    def test_empty_never_intersects(self):
        empty = Interval.from_length(5, 0)
        assert not empty.intersects(Interval(0, 10))
        assert not Interval(0, 10).intersects(empty)

    def test_intersection(self):
        assert Interval(0, 10).intersection(Interval(5, 20)) == Interval(5, 10)

    def test_intersection_disjoint_is_empty(self):
        assert Interval(0, 4).intersection(Interval(6, 9)).empty

    def test_contains(self):
        iv = Interval(3, 7)
        assert iv.contains(3) and iv.contains(7)
        assert not iv.contains(2) and not iv.contains(8)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert not Interval(0, 10).contains_interval(Interval(8, 12))
        assert Interval(0, 10).contains_interval(Interval.from_length(5, 0))

    def test_shift(self):
        assert Interval(2, 5).shift(10) == Interval(12, 15)
        assert Interval(12, 15).shift(-12) == Interval(0, 3)

    def test_iter(self):
        assert list(Interval(2, 5)) == [2, 3, 4, 5]


class TestHelpers:
    def test_total_length(self):
        assert total_length([Interval(0, 4), Interval(10, 10)]) == 6

    def test_merge_overlapping(self):
        merged = merge_intervals([Interval(0, 5), Interval(3, 9), Interval(20, 25)])
        assert merged == [Interval(0, 9), Interval(20, 25)]

    def test_merge_adjacent(self):
        merged = merge_intervals([Interval(0, 4), Interval(5, 9)])
        assert merged == [Interval(0, 9)]

    def test_merge_drops_empty(self):
        merged = merge_intervals([Interval.from_length(3, 0), Interval(0, 1)])
        assert merged == [Interval(0, 1)]

    def test_find_gaps(self):
        gaps = find_gaps([Interval(2, 3), Interval(7, 8)], Interval(0, 10))
        assert gaps == [Interval(0, 1), Interval(4, 6), Interval(9, 10)]

    def test_find_gaps_full_cover(self):
        assert find_gaps([Interval(0, 10)], Interval(0, 10)) == []

    def test_find_gaps_empty_input(self):
        assert find_gaps([], Interval(0, 3)) == [Interval(0, 3)]

    def test_are_disjoint(self):
        assert are_disjoint([Interval(0, 4), Interval(5, 9)])
        assert not are_disjoint([Interval(0, 5), Interval(5, 9)])


class TestIntervalIndex:
    def make(self):
        return IntervalIndex([Interval(0, 4), Interval(10, 14), Interval(20, 29)])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            IntervalIndex([Interval(0, 5), Interval(5, 9)])

    def test_stab_hit_and_miss(self):
        idx = self.make()
        assert idx.stab(0) == 0
        assert idx.stab(12) == 1
        assert idx.stab(29) == 2
        assert idx.stab(5) is None
        assert idx.stab(30) is None

    def test_overlapping_middle(self):
        idx = self.make()
        assert idx.overlapping(Interval(3, 11)) == [0, 1]

    def test_overlapping_all(self):
        idx = self.make()
        assert idx.overlapping(Interval(0, 100)) == [0, 1, 2]

    def test_overlapping_none(self):
        idx = self.make()
        assert idx.overlapping(Interval(5, 9)) == []
        assert idx.overlapping(Interval(30, 40)) == []

    def test_overlapping_single_byte(self):
        idx = self.make()
        assert idx.overlapping(Interval(14, 14)) == [1]

    def test_overlapping_empty_query(self):
        idx = self.make()
        assert idx.overlapping(Interval.from_length(0, 0)) == []

    def test_count_matches_list(self):
        idx = self.make()
        for query in [Interval(0, 100), Interval(3, 11), Interval(5, 9),
                      Interval(14, 20), Interval(25, 60)]:
            assert idx.count_overlapping(query) == len(idx.overlapping(query))

    def test_payloads(self):
        idx = IntervalIndex([Interval(10, 14), Interval(0, 4)], payloads=[7, 9])
        # Sorted by start: [0,4] (payload 9) then [10,14] (payload 7).
        assert idx.stab(1) == 9
        assert idx.overlapping(Interval(0, 20)) == [9, 7]


class TestDynamicIntervalSet:
    def test_add_and_intersect(self):
        s = DynamicIntervalSet()
        s.add(Interval(0, 4))
        assert s.intersects(Interval(4, 10))
        assert not s.intersects(Interval(5, 10))

    def test_merge_on_add(self):
        s = DynamicIntervalSet()
        s.add(Interval(0, 4))
        s.add(Interval(10, 14))
        s.add(Interval(5, 9))  # bridges the two
        assert s.intervals() == [Interval(0, 14)]
        assert s.covered_bytes == 15

    def test_overlapping_add(self):
        s = DynamicIntervalSet()
        s.add(Interval(0, 10))
        s.add(Interval(5, 20))
        assert s.intervals() == [Interval(0, 20)]

    def test_first_intersection(self):
        s = DynamicIntervalSet()
        s.add(Interval(10, 14))
        s.add(Interval(20, 24))
        hit = s.first_intersection(Interval(12, 22))
        assert hit == Interval(12, 14)

    def test_first_intersection_none(self):
        s = DynamicIntervalSet()
        s.add(Interval(10, 14))
        assert s.first_intersection(Interval(0, 9)) is None
        assert s.first_intersection(Interval(15, 100)) is None

    def test_empty_add_ignored(self):
        s = DynamicIntervalSet()
        s.add(Interval.from_length(5, 0))
        assert len(s) == 0
        assert not s.intersects(Interval(0, 100))

    def test_many_unordered_adds(self):
        s = DynamicIntervalSet()
        for start in [50, 0, 30, 10, 40, 20]:
            s.add(Interval(start, start + 5))
        # [0,5],[10,15],... with 30/40/50 chains merged where adjacent?
        # 30..35, 40..45, 50..55 are separated by gaps of 4 bytes: no merge.
        assert s.covered_bytes == 36
        assert s.intersects(Interval(33, 33))
        assert not s.intersects(Interval(36, 39))
