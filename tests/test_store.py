"""The ``repro.store`` contract suite.

Covers the pack store end to end: ≥50 versions across ≥3 packages
round-tripping byte-exact through publish/close/reopen, similarity-
grouped base selection with its delta-vs-full fallback and chain-depth
limit, chain collapse (a client K versions behind gets ONE composed
in-place delta, asserted via perf counters), gc/repack semantics, and
the :class:`~repro.store.VersionStore` protocol conformance shared by
:class:`~repro.store.MemoryStore` and
:class:`~repro.store.PackStore` — including the documented
``latest``-ordering contract and the deprecation shims left behind by
the API move (``repro.serve.ReleaseStore``,
``repro.pipeline.shm.content_digest``).

Crash-safety (torn packs, stale indexes, repair) lives in
``tests/test_store_crash.py``.
"""

import asyncio
import random
import warnings

import pytest

import repro
from repro import perf
from repro.exceptions import StoreError
from repro.serve import DeltaServer, ServeConfig, pull_async, run_load_async
from repro.store import (
    MemoryStore,
    PackStore,
    StoreConfig,
    VersionStore,
    content_digest,
)
from repro.store.pack import STORED_DELTA, STORED_FULL
from repro.workloads import make_binary_blob, mutate

SEED = 19980601

#: fsync off: these tests hammer publish in loops and the durability
#: path itself is exercised by tests/test_store_crash.py.
FAST = StoreConfig(fsync=False)


def _publish_chain(store, package, rng, releases, size=8192):
    """Publish a mutate-derived release chain; returns [(digest, bytes)]."""
    image = make_binary_blob(rng, size)
    chain = []
    for _ in range(releases):
        digest = store.publish(package, image)
        chain.append((digest, bytes(image)))
        image = mutate(image, rng)
    return chain


class TestStoreConfig:
    def test_defaults_validate(self):
        StoreConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"algorithm": "magic"},
        {"max_chain_depth": 0},
        {"delta_max_ratio": 0.0},
        {"delta_max_ratio": 1.5},
        {"min_delta_size": -1},
        {"similarity_window": 0},
        {"similarity_threshold": 1.5},
        {"similarity_probes": 0},
        {"cache_bytes": -1},
    ])
    def test_nonsense_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StoreConfig(**kwargs).validate()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            StoreConfig().max_chain_depth = 3


class TestLifecycle:
    def test_init_twice_refuses(self, tmp_path):
        PackStore.init(tmp_path / "s", FAST)
        with pytest.raises(StoreError) as exc:
            PackStore.init(tmp_path / "s", FAST)
        assert exc.value.kind == "pack"

    def test_open_uninitialized_refuses(self, tmp_path):
        with pytest.raises(StoreError) as exc:
            PackStore(tmp_path / "nowhere")
        assert exc.value.kind == "pack"
        assert "store init" in str(exc.value)

    def test_empty_store_shape(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        assert store.packages() == []
        assert "pkg" not in store
        assert store.generation == 1
        assert store.fsck().ok

    def test_unknown_package_and_digest_raise_keyerror(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        store.publish("pkg", b"x" * 512)
        with pytest.raises(KeyError):
            store.latest("nope")
        with pytest.raises(KeyError):
            store.get("pkg", "0" * 40)


class TestRoundTrip:
    """The acceptance bar: ≥50 versions, ≥3 packages, byte-exact."""

    PACKAGES = 3
    RELEASES = 17  # 3 x 17 = 51 versions

    @pytest.fixture(scope="class")
    def populated(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("roundtrip") / "store"
        store = PackStore.init(root, FAST)
        rng = random.Random(SEED)
        chains = {}
        for p in range(self.PACKAGES):
            package = "pkg%02d" % p
            chains[package] = _publish_chain(store, package, rng,
                                             self.RELEASES, size=4096)
        store.close()
        return root, chains

    def test_every_version_survives_reopen_byte_exact(self, populated):
        root, chains = populated
        store = PackStore(root, FAST)
        assert store.damage == []
        for package, chain in chains.items():
            assert store.versions(package) == [d for d, _ in chain]
            for digest, image in chain:
                assert store.get(package, digest) == image
            digest, latest = store.latest(package)
            assert (digest, latest) == chain[-1]

    def test_fsck_verifies_all_versions(self, populated):
        root, chains = populated
        store = PackStore(root, FAST)
        report = store.fsck()
        assert report.ok
        assert report.packages == self.PACKAGES
        assert report.versions == self.PACKAGES * self.RELEASES
        assert report.verified == report.versions
        assert report.versions >= 50

    def test_deltification_actually_compresses(self, populated):
        root, chains = populated
        store = PackStore(root, FAST)
        stats = store.stats()
        assert stats["delta_objects"] > stats["full_objects"]
        assert stats["stored_bytes"] < stats["object_bytes"] // 2
        assert stats["max_depth"] <= store.config.max_chain_depth
        for package in chains:
            for entry in store.log(package)[1:]:
                if entry["stored"] == STORED_DELTA:
                    assert entry["base"]
                    assert entry["depth"] >= 1

    def test_gc_is_byte_stable_and_bumps_generation(self, populated,
                                                    tmp_path):
        root, chains = populated
        import shutil
        work = tmp_path / "store"
        shutil.copytree(root, work)
        store = PackStore(work, FAST)
        old_pack = store.pack_path
        report = store.gc()
        assert report.objects_after == report.objects_before
        assert report.dropped_versions == 0
        assert store.generation == 2
        assert not old_pack.exists()
        for package, chain in chains.items():
            for digest, image in chain:
                assert store.get(package, digest) == image
        assert store.fsck().ok


class TestBaseSelection:
    def test_similar_versions_deltify_dissimilar_store_full(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        rng = random.Random(SEED)
        base = make_binary_blob(rng, 8192)
        with perf.recording() as recorder:
            store.publish("pkg", base)
            store.publish("pkg", mutate(base, rng))
            # An unrelated blob: no probe lands, similarity gating
            # stores it full even though the log has candidates.
            store.publish("pkg", make_binary_blob(rng, 8192))
        log = store.log("pkg")
        assert [e["stored"] for e in log] == [
            STORED_FULL, STORED_DELTA, STORED_FULL]
        assert log[1]["base"] == log[0]["digest"]
        assert recorder.counters["store.publish.delta"] == 1
        assert recorder.counters["store.publish.full"] == 2

    def test_delta_vs_full_ratio_fallback(self, tmp_path):
        # A ratio no real delta beats: similar bytes still store full,
        # through the explicit fallback path (Snippet-1 style).
        cfg = StoreConfig(fsync=False, delta_max_ratio=0.001)
        store = PackStore.init(tmp_path / "s", cfg)
        rng = random.Random(SEED)
        base = make_binary_blob(rng, 8192)
        with perf.recording() as recorder:
            store.publish("pkg", base)
            store.publish("pkg", mutate(base, rng))
        assert recorder.counters["store.publish.fallback"] == 1
        assert [e["stored"] for e in store.log("pkg")] == [
            STORED_FULL, STORED_FULL]

    def test_min_delta_size_stores_small_images_full(self, tmp_path):
        cfg = StoreConfig(fsync=False, min_delta_size=100_000)
        store = PackStore.init(tmp_path / "s", cfg)
        rng = random.Random(SEED)
        base = make_binary_blob(rng, 4096)
        store.publish("pkg", base)
        store.publish("pkg", mutate(base, rng))
        assert all(e["stored"] == STORED_FULL for e in store.log("pkg"))

    def test_chain_depth_limit_bounds_every_chain(self, tmp_path):
        cfg = StoreConfig(fsync=False, max_chain_depth=2,
                          similarity_window=2)
        store = PackStore.init(tmp_path / "s", cfg)
        rng = random.Random(SEED)
        with perf.recording() as recorder:
            _publish_chain(store, "pkg", rng, 10)
        assert store.stats()["max_depth"] <= 2
        assert all(e["depth"] <= 2 for e in store.log("pkg"))
        # The limit actually bit: deep candidates were skipped.
        assert recorder.counters["store.publish.depth_limited"] >= 1
        assert store.fsck().ok

    def test_dedupe_same_bytes_one_object(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        blob = b"shared payload " * 100
        with perf.recording() as recorder:
            d1 = store.publish("alpha", blob)
            d2 = store.publish("beta", blob)
        assert d1 == d2 == content_digest(blob)
        assert recorder.counters["store.publish.dedupe"] == 1
        assert store.stats()["objects"] == 1
        assert store.get("alpha", d1) == store.get("beta", d2) == blob


class TestChainCollapse:
    """A client K versions behind costs ONE composed in-place delta."""

    def test_five_behind_one_payload_counters_pinned(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        rng = random.Random(SEED)
        chain = _publish_chain(store, "pkg", rng, 6)
        have, want = chain[0][0], chain[-1][0]
        with perf.recording() as recorder:
            payload = store.chain("pkg", have, want)
        assert payload is not None
        buf = bytearray(chain[0][1])
        repro.patch_in_place(buf, payload)
        assert bytes(buf) == chain[-1][1]
        assert recorder.counters["store.chain.collapsed"] == 1
        assert recorder.counters["store.chain.hops"] == 5
        # Every hop came from somewhere accountable: the stored pack
        # delta when storage-aligned, a fresh diff otherwise.
        assert (recorder.counters.get("store.chain.stored_hops", 0)
                + recorder.counters.get("store.chain.hop_diffs", 0)) == 5
        # With default config the storage chain is the release chain,
        # so most hops are reused, not re-diffed.
        assert recorder.counters.get("store.chain.stored_hops", 0) >= 3

    def test_one_behind_and_every_intermediate_pair(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        rng = random.Random(SEED)
        chain = _publish_chain(store, "pkg", rng, 4, size=4096)
        for i in range(len(chain)):
            for j in range(i + 1, len(chain)):
                payload = store.chain("pkg", chain[i][0], chain[j][0])
                assert payload is not None
                buf = bytearray(chain[i][1])
                repro.patch_in_place(buf, payload)
                assert bytes(buf) == chain[j][1]

    def test_chain_declines_when_it_cannot_help(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        rng = random.Random(SEED)
        chain = _publish_chain(store, "pkg", rng, 3, size=4096)
        d0, d2 = chain[0][0], chain[2][0]
        assert store.chain("nope", d0, d2) is None
        assert store.chain("pkg", "f" * 40, d2) is None
        assert store.chain("pkg", d0, d0) is None
        assert store.chain("pkg", d2, d0) is None  # backwards

    def test_chain_survives_gc(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        rng = random.Random(SEED)
        chain = _publish_chain(store, "pkg", rng, 5, size=4096)
        store.gc()
        payload = store.chain("pkg", chain[0][0], chain[-1][0])
        buf = bytearray(chain[0][1])
        repro.patch_in_place(buf, payload)
        assert bytes(buf) == chain[-1][1]

    def test_memory_store_always_declines(self):
        store = MemoryStore()
        d1 = store.publish("pkg", b"a" * 512)
        d2 = store.publish("pkg", b"b" * 512)
        assert store.chain("pkg", d1, d2) is None


class TestGc:
    def test_keep_last_trims_and_drops_unreachable(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        rng = random.Random(SEED)
        chain = _publish_chain(store, "pkg", rng, 6, size=4096)
        report = store.gc(keep_last=3)
        assert report.dropped_versions == 3
        assert report.objects_after < report.objects_before
        assert store.versions("pkg") == [d for d, _ in chain[-3:]]
        for digest, image in chain[-3:]:
            assert store.get("pkg", digest) == image
        for digest, _ in chain[:3]:
            with pytest.raises(KeyError):
                store.get("pkg", digest)
        assert store.fsck().ok

    def test_keep_last_validates(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        with pytest.raises(ValueError):
            store.gc(keep_last=0)

    def test_gc_report_schema(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        store.publish("pkg", b"x" * 512)
        data = store.gc().to_json()
        assert data["schema"] == "repro.store.gc/1"
        assert data["objects_after"] == 1
        assert data["repaired"] == []


@pytest.fixture(params=["memory", "pack"])
def any_store(request, tmp_path):
    """Both VersionStore implementations, for the shared conformance bar."""
    if request.param == "memory":
        return MemoryStore()
    return PackStore.init(tmp_path / "conformance", FAST)


class TestVersionStoreConformance:
    """One contract, two implementations (see repro.store.api docs)."""

    def test_satisfies_protocol(self, any_store):
        assert isinstance(any_store, VersionStore)

    def test_publish_get_latest(self, any_store):
        digest = any_store.publish("pkg", b"v1" * 300)
        assert any_store.get("pkg", digest) == b"v1" * 300
        assert any_store.latest("pkg") == (digest, b"v1" * 300)
        assert any_store.packages() == ["pkg"]
        assert "pkg" in any_store and "other" not in any_store
        assert any_store.digest(b"v1" * 300) == digest

    def test_latest_is_publish_order(self, any_store):
        """Satellite: the documented latest-ordering contract."""
        a = any_store.publish("pkg", b"alpha" * 200)
        b = any_store.publish("pkg", b"beta" * 200)
        assert any_store.latest("pkg")[0] == b
        assert any_store.versions("pkg") == [a, b]

    def test_republish_moves_to_head(self, any_store):
        a = any_store.publish("pkg", b"alpha" * 200)
        b = any_store.publish("pkg", b"beta" * 200)
        assert any_store.publish("pkg", b"alpha" * 200) == a
        digest, latest = any_store.latest("pkg")
        assert digest == a and latest == b"alpha" * 200
        # Moved, not duplicated.
        assert any_store.versions("pkg") == [b, a]

    def test_chain_never_lies(self, any_store):
        """chain() either declines or returns a byte-exact payload."""
        rng = random.Random(SEED)
        chain = _publish_chain(any_store, "pkg", rng, 3, size=4096)
        payload = any_store.chain("pkg", chain[0][0], chain[-1][0])
        if payload is not None:
            buf = bytearray(chain[0][1])
            repro.patch_in_place(buf, payload)
            assert bytes(buf) == chain[-1][1]


class TestPersistentOrdering:
    def test_republish_order_survives_reopen(self, tmp_path):
        root = tmp_path / "s"
        store = PackStore.init(root, FAST)
        a = store.publish("pkg", b"alpha" * 200)
        b = store.publish("pkg", b"beta" * 200)
        store.publish("pkg", b"alpha" * 200)
        store.close()
        reopened = PackStore(root, FAST)
        assert reopened.versions("pkg") == [b, a]
        assert reopened.latest("pkg")[0] == a


class TestDeprecationShims:
    def test_release_store_warns_and_is_a_memory_store(self):
        from repro.serve import ReleaseStore
        with pytest.warns(DeprecationWarning, match="MemoryStore"):
            store = ReleaseStore()
        assert isinstance(store, MemoryStore)
        assert isinstance(store, VersionStore)

    def test_shm_content_digest_warns_and_delegates(self):
        from repro.pipeline import shm
        with pytest.warns(DeprecationWarning, match="repro.store"):
            digest = shm.content_digest(b"payload")
        assert digest == content_digest(b"payload")

    def test_new_homes_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            content_digest(b"payload")
            MemoryStore().publish("pkg", b"payload")


class TestServeFromStore:
    """The serving acceptance: DeltaServer consumes any VersionStore."""

    def _chain_store(self, root, releases=6):
        store = PackStore.init(root, FAST)
        rng = random.Random(SEED)
        chain = _publish_chain(store, "pkg", rng, releases)
        return store, [image for _digest, image in chain]

    def test_five_behind_served_one_composed_delta(self, tmp_path):
        store, chain = self._chain_store(tmp_path / "s")

        async def go(server):
            async with server:
                return await pull_async(server.host, server.port, "pkg",
                                        chain[0])

        with perf.recording() as recorder:
            server = DeltaServer(store, ServeConfig(port=0))
            outcome = asyncio.run(go(server))
        assert outcome.status == "applied"
        assert outcome.image == chain[-1]
        # Exactly one collapsed chain payload — the pipeline encoder
        # never ran.
        assert server.counters["chain_served"] == 1
        assert server.counters["encodes"] == 0
        assert recorder.counters["serve.chain_served"] == 1
        assert recorder.counters["store.chain.collapsed"] == 1
        assert recorder.counters["store.chain.hops"] == 5
        assert recorder.counters.get("serve.encodes", 0) == 0

    def test_unknown_reference_falls_back_to_pipeline(self, tmp_path):
        # A client holding bytes the store never published is a
        # structured failure, exactly as with the in-memory store.
        store, chain = self._chain_store(tmp_path / "s", releases=2)

        async def go(server):
            async with server:
                return await pull_async(server.host, server.port, "pkg",
                                        b"never published" * 100)

        outcome = asyncio.run(go(DeltaServer(store, ServeConfig(port=0))))
        assert outcome.status == "failed"
        assert "unknown-version" in outcome.reason

    def test_load_storm_against_pack_store(self, tmp_path):
        store = PackStore.init(tmp_path / "s", FAST)
        report = asyncio.run(run_load_async(
            clients=12, packages=2, releases=3, size=4096, seed=SEED,
            store=store))
        assert report.silent == []
        assert report.applied == report.byte_exact == report.clients
        # Every distinct pair was answered from the store's chains; the
        # pipeline encoder stayed cold.
        assert report.server_counters["chain_served"] >= 1
        assert report.counters.get("serve.encodes", 0) == 0
