"""Unit tests for rolling hashes and seed tables (repro.delta.rolling)."""

import random

import pytest

from repro.delta.rolling import (
    FullSeedIndex,
    RollingHash,
    SeedTable,
    hash_seed,
    iter_seed_hashes,
    match_length,
    match_length_backward,
)


class TestRollingHash:
    def test_matches_one_shot(self):
        data = b"the quick brown fox jumps over the lazy dog"
        window = 8
        roller = RollingHash(window)
        roller.reset(data, 0)
        for offset in range(1, len(data) - window + 1):
            rolled = roller.update(data[offset - 1], data[offset + window - 1])
            assert rolled == hash_seed(data, offset, window), offset

    def test_equal_windows_equal_hashes(self):
        data = b"abcabcabc"
        assert hash_seed(data, 0, 3) == hash_seed(data, 3, 3) == hash_seed(data, 6, 3)

    def test_different_windows_differ(self):
        # Not guaranteed in general, but these tiny inputs must not collide.
        assert hash_seed(b"abcd", 0, 4) != hash_seed(b"abce", 0, 4)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            RollingHash(0)

    def test_iter_seed_hashes(self):
        data = b"abcdef"
        pairs = list(iter_seed_hashes(data, 4))
        assert [p[0] for p in pairs] == [0, 1, 2]
        assert pairs[1][1] == hash_seed(data, 1, 4)

    def test_iter_short_input(self):
        assert list(iter_seed_hashes(b"ab", 4)) == []


class TestSeedTable:
    def test_first_come_first_served(self):
        table = SeedTable(64)
        assert table.insert(5, 100)
        assert not table.insert(5, 200)  # slot taken
        assert table.lookup(5) == 100

    def test_collision_same_slot(self):
        table = SeedTable(8)
        table.insert(1, 10)
        assert table.lookup(9) == 10  # 9 % 8 == 1: same slot, stale value

    def test_lookup_empty(self):
        assert SeedTable(8).lookup(3) is None

    def test_occupancy_and_clear(self):
        table = SeedTable(16)
        table.insert(0, 1)
        table.insert(1, 2)
        assert table.occupied == 2
        table.clear()
        assert table.occupied == 0
        assert table.lookup(0) is None

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SeedTable(0)


class TestFullSeedIndex:
    def test_finds_all_occurrences(self):
        data = b"xxABCDyyABCDzz"
        index = FullSeedIndex(data, seed_length=4)
        fingerprint = hash_seed(data, 2, 4)  # "ABCD"
        assert 2 in index.candidates(fingerprint)
        assert 8 in index.candidates(fingerprint)

    def test_max_positions_cap(self):
        data = b"\x00" * 100
        index = FullSeedIndex(data, seed_length=4, max_positions=5)
        fingerprint = hash_seed(data, 0, 4)
        assert len(index.candidates(fingerprint)) == 5

    def test_unknown_fingerprint(self):
        index = FullSeedIndex(b"abcdef", seed_length=4)
        assert index.candidates(123456789) == []


class TestMatchLength:
    def test_basic(self):
        assert match_length(b"abcdef", 0, b"abcxef", 0) == 3

    def test_full_match(self):
        assert match_length(b"abab", 0, b"abab", 0) == 4

    def test_offset_starts(self):
        assert match_length(b"xxabc", 2, b"yyyabc", 3) == 3

    def test_limit(self):
        assert match_length(b"aaaa", 0, b"aaaa", 0, limit=2) == 2

    def test_no_match(self):
        assert match_length(b"a", 0, b"b", 0) == 0

    def test_long_match_chunked(self):
        rng = random.Random(1)
        blob = rng.randbytes(5000)
        a = blob + b"X"
        b = blob + b"Y"
        assert match_length(a, 0, b, 0) == 5000

    def test_mismatch_inside_chunk(self):
        a = b"a" * 1000 + b"Z" + b"a" * 100
        b = b"a" * 1101
        assert match_length(a, 0, b, 0) == 1000


class TestMatchLengthBackward:
    def test_basic(self):
        assert match_length_backward(b"xxABC", 5, b"yABC", 4) == 3

    def test_limit(self):
        assert match_length_backward(b"aaaa", 4, b"aaaa", 4, limit=2) == 2

    def test_zero(self):
        assert match_length_backward(b"ab", 2, b"cd", 2) == 0

    def test_bounded_by_ends(self):
        assert match_length_backward(b"abc", 1, b"xabc", 2) == 1
