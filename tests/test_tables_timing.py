"""Unit tests for rendering and timing helpers (repro.analysis.tables/timing)."""

import time

import pytest

from repro.analysis.tables import format_bytes, format_seconds, render_kv, render_table
from repro.analysis.timing import (
    ratio_stats,
    stopwatch,
    time_call,
    weighted_time_ratio,
)


class TestRenderTable:
    def test_alignment(self):
        out = render_table([["name", "value"], ["a", "1"], ["longer", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # Value cells are right-aligned: all rows end at the same column.
        assert len(lines[0].rstrip()) == len(lines[2].rstrip()) == len(lines[3].rstrip())

    def test_empty(self):
        assert render_table([]) == ""

    def test_ragged_rows_padded(self):
        out = render_table([["a", "b", "c"], ["x"]])
        assert "x" in out

    def test_render_kv(self):
        out = render_kv("title", [("k", "v"), ("key2", "v2")])
        assert out.startswith("title")
        assert "k     v" in out


class TestFormatters:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(5 * 1024 * 1024) == "5.0 MiB"

    def test_format_seconds(self):
        assert "µs" in format_seconds(5e-5)
        assert "ms" in format_seconds(0.005)
        assert format_seconds(2.5) == "2.50 s"
        assert "min" in format_seconds(300)


class TestTiming:
    def test_stopwatch(self):
        with stopwatch() as box:
            time.sleep(0.01)
        assert box[0] >= 0.009

    def test_time_call_returns_best(self):
        calls = []

        def fn():
            calls.append(1)

        elapsed = time_call(fn, repeat=4)
        assert len(calls) == 4
        assert elapsed >= 0.0

    def test_time_call_bad_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)

    def test_ratio_stats(self):
        stats = ratio_stats([0.5, 0.6, 0.7, 1.5])
        assert stats.count == 4
        assert stats.maximum == 1.5
        assert stats.median == pytest.approx(0.65)
        assert stats.fraction_over_one == pytest.approx(0.25)

    def test_ratio_stats_odd_median(self):
        assert ratio_stats([3.0, 1.0, 2.0]).median == 2.0

    def test_ratio_stats_empty(self):
        with pytest.raises(ValueError):
            ratio_stats([])

    def test_weighted_ratio(self):
        assert weighted_time_ratio([1, 1], [2, 2]) == pytest.approx(0.5)

    def test_weighted_ratio_zero_denominator(self):
        with pytest.raises(ValueError):
            weighted_time_ratio([1], [0])
