"""Tests for the top-level public API (repro/__init__.py)."""

import pytest

import repro


class TestDiff:
    def test_default_algorithm(self, sample_pair):
        ref, ver = sample_pair
        script = repro.diff(ref, ver)
        assert repro.apply_delta(script, ref) == ver

    def test_algorithm_selection(self, sample_pair):
        ref, ver = sample_pair
        for name in repro.ALGORITHMS:
            script = repro.diff(ref, ver, algorithm=name)
            assert repro.apply_delta(script, ref) == ver

    def test_kwargs_forwarded(self, sample_pair):
        ref, ver = sample_pair
        script = repro.diff(ref, ver, algorithm="greedy", seed_length=32)
        assert repro.apply_delta(script, ref) == ver

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            repro.diff(b"a", b"b", algorithm="magic")


class TestDiffInPlace:
    def test_end_to_end(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        assert repro.is_in_place_safe(result.script)
        buf = bytearray(ref)
        repro.apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == ver

    def test_policy_forwarded(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver, policy="constant")
        assert result.report.policy == "constant"


class TestPatch:
    def test_patch(self, sample_pair):
        ref, ver = sample_pair
        script = repro.diff(ref, ver)
        payload = repro.encode_delta(script, repro.FORMAT_SEQUENTIAL)
        assert repro.patch(ref, payload) == ver

    def test_patch_in_place(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        payload = repro.encode_delta(result.script, repro.FORMAT_INPLACE)
        buf = bytearray(ref)
        repro.patch_in_place(buf, payload)
        assert bytes(buf) == ver


class TestSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__
