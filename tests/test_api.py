"""Tests for the top-level public API (repro/__init__.py)."""

import re
from pathlib import Path

import pytest

import repro
import repro.pipeline
import repro.store

DOCS_API = Path(__file__).resolve().parent.parent / "docs" / "API.md"


def _documented_names(section):
    """Names from ``- `name` — ...`` bullets under ``## `section` ``."""
    text = DOCS_API.read_text()
    names = set()
    in_section = False
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.strip() == "## `%s`" % section
            continue
        if in_section and line.startswith("- "):
            # Names sit before the em-dash; wrapped description lines
            # are ignored, so every exported name must appear on the
            # bullet's first line.
            head = line.split("—")[0]
            names.update(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", head))
    return names


class TestDiff:
    def test_default_algorithm(self, sample_pair):
        ref, ver = sample_pair
        script = repro.diff(ref, ver)
        assert repro.apply_delta(script, ref) == ver

    def test_algorithm_selection(self, sample_pair):
        ref, ver = sample_pair
        for name in repro.ALGORITHMS:
            script = repro.diff(ref, ver, algorithm=name)
            assert repro.apply_delta(script, ref) == ver

    def test_kwargs_forwarded(self, sample_pair):
        ref, ver = sample_pair
        script = repro.diff(ref, ver, algorithm="greedy", seed_length=32)
        assert repro.apply_delta(script, ref) == ver

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            repro.diff(b"a", b"b", algorithm="magic")


class TestDiffInPlace:
    def test_end_to_end(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        assert repro.is_in_place_safe(result.script)
        buf = bytearray(ref)
        repro.apply_in_place(result.script, buf, strict=True)
        assert bytes(buf) == ver

    def test_policy_forwarded(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver, policy="constant")
        assert result.report.policy == "constant"


class TestPatch:
    def test_patch(self, sample_pair):
        ref, ver = sample_pair
        script = repro.diff(ref, ver)
        payload = repro.encode_delta(script, repro.FORMAT_SEQUENTIAL)
        assert repro.patch(ref, payload) == ver

    def test_patch_in_place(self, sample_pair):
        ref, ver = sample_pair
        result = repro.diff_in_place(ref, ver)
        payload = repro.encode_delta(result.script, repro.FORMAT_INPLACE)
        buf = bytearray(ref)
        repro.patch_in_place(buf, payload)
        assert bytes(buf) == ver


class TestSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_executor_registry(self):
        assert repro.EXECUTORS == ("serial", "thread", "process",
                                   "process-shm")
        assert set(repro.pipeline.PROCESS_EXECUTORS) <= set(repro.EXECUTORS)


class TestDocsMatchSurface:
    """docs/API.md is the contract: it must list exactly ``__all__``."""

    def test_top_level_surface_documented(self):
        documented = _documented_names("repro")
        exported = set(repro.__all__)
        assert documented == exported, (
            "undocumented: %s / stale docs: %s"
            % (sorted(exported - documented), sorted(documented - exported))
        )

    def test_pipeline_surface_documented(self):
        documented = _documented_names("repro.pipeline")
        exported = set(repro.pipeline.__all__)
        assert documented == exported, (
            "undocumented: %s / stale docs: %s"
            % (sorted(exported - documented), sorted(documented - exported))
        )

    def test_pipeline_exports_resolve(self):
        for name in repro.pipeline.__all__:
            assert hasattr(repro.pipeline, name), name

    def test_store_surface_documented(self):
        documented = _documented_names("repro.store")
        exported = set(repro.store.__all__)
        assert documented == exported, (
            "undocumented: %s / stale docs: %s"
            % (sorted(exported - documented), sorted(documented - exported))
        )

    def test_store_exports_resolve(self):
        for name in repro.store.__all__:
            assert hasattr(repro.store, name), name
