"""Tests for the exception hierarchy (repro.exceptions).

Callers rely on two contracts: every library failure is a
:class:`ReproError`, and the subtype taxonomy distinguishes format,
range, safety, and device failures so handlers can be precise.
"""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in dir(exc):
            obj = getattr(exc, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj.__module__ == "repro.exceptions":
                assert issubclass(obj, exc.ReproError), name

    def test_device_family(self):
        for sub in (exc.OutOfMemoryError, exc.StorageBoundsError,
                    exc.TransmissionError):
            assert issubclass(sub, exc.DeviceError)

    def test_power_failure_is_a_device_error(self):
        from repro.device.journal import PowerFailureError

        assert issubclass(PowerFailureError, exc.DeviceError)

    def test_wear_limit_is_a_device_error(self):
        from repro.device.flash import WearLimitExceeded

        assert issubclass(WearLimitExceeded, exc.DeviceError)

    def test_out_of_memory_shadows_builtin_safely(self):
        # Our OutOfMemoryError is intentionally distinct from the
        # built-in MemoryError: it reports a *simulated* budget.
        assert not issubclass(exc.OutOfMemoryError, MemoryError)


class TestErrorPayloads:
    def test_write_before_read_carries_positions(self):
        err = exc.WriteBeforeReadError("boom", writer_index=3, reader_index=7)
        assert err.writer_index == 3
        assert err.reader_index == 7

    def test_write_before_read_defaults(self):
        err = exc.WriteBeforeReadError("boom")
        assert err.writer_index == -1
        assert err.reader_index == -1

    def test_incomplete_cover_carries_gaps(self):
        err = exc.IncompleteCoverError("gaps", gaps=[(0, 4), (10, 12)])
        assert err.gaps == [(0, 4), (10, 12)]
        assert exc.IncompleteCoverError("no info").gaps == []


class TestCatchability:
    def test_one_except_clause_covers_the_stack(self, rng):
        """The blanket contract: ReproError catches any library failure."""
        import repro
        from repro.delta import decode_delta

        failures = 0
        for bad in (b"", b"garbage", b"IPD1\x09" + bytes(20)):
            try:
                decode_delta(bad)
            except exc.ReproError:
                failures += 1
        assert failures == 3
