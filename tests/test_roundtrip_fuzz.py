"""Property-based round-trip fuzz over the full conversion matrix.

The invariant that makes in-place conversion trustworthy: for ANY
differencing algorithm, ANY cycle-breaking policy, ANY topological
ordering, and ANY scratch budget, reconstructing through the converted
script in place yields exactly the bytes the sequential script yields
two-space.  Seeded random inputs, versions both shorter and longer than
the reference, block permutations to force genuine CRWI cycles.
"""

import random

import pytest

from repro.core.apply import apply_delta, apply_in_place
from repro.core.convert import make_in_place
from repro.delta import ALGORITHMS

DIFFERS = ("greedy", "onepass", "correcting")
POLICIES = ("constant", "local-min", "greedy-global")
ORDERINGS = ("dfs", "locality")
SCRATCH_BUDGETS = (0, 64, 4096)


def _scrambled_pair(seed, longer):
    """A (reference, version) pair whose version permutes reference blocks.

    Block permutation makes copies read far from where they write, which
    is what populates the CRWI digraph with edges and cycles; plain
    localized edits rarely exercise the eviction machinery.
    """
    rng = random.Random(seed)
    block = 200
    reference = bytes(rng.randrange(256) for _ in range(block)) * 2
    reference += bytes(rng.randrange(256) for _ in range(14 * block))
    blocks = [reference[i:i + block] for i in range(0, len(reference), block)]
    rng.shuffle(blocks)
    version = bytearray().join(blocks)
    for _ in range(4):  # sprinkle literal edits between the moved blocks
        at = rng.randrange(len(version) - 32)
        version[at:at + 16] = bytes(rng.randrange(256) for _ in range(16))
    if longer:
        version += bytes(rng.randrange(256) for _ in range(3 * block))
    else:
        del version[-3 * block:]
    return reference, bytes(version)


@pytest.mark.parametrize("scratch", SCRATCH_BUDGETS)
@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("differ", DIFFERS)
def test_matrix_round_trip(differ, policy, ordering, scratch):
    for seed, longer in ((11, False), (12, True)):
        reference, version = _scrambled_pair(seed, longer)
        script = ALGORITHMS[differ](reference, version)
        expected = apply_delta(script, reference)
        assert expected == version  # the differ itself must round-trip
        converted = make_in_place(
            script, reference, policy=policy, ordering=ordering,
            scratch_budget=scratch,
        )
        assert converted.report.scratch_used <= scratch
        buf = bytearray(reference)
        rebuilt = bytes(apply_in_place(converted.script, buf, strict=True))
        assert rebuilt == expected, (
            "in-place mismatch: differ=%s policy=%s ordering=%s scratch=%d "
            "longer=%s" % (differ, policy, ordering, scratch, longer)
        )


def test_matrix_exercises_evictions():
    """The fuzz corpus must actually trigger the machinery it claims to."""
    cycles = evictions = spills = 0
    for seed, longer in ((11, False), (12, True)):
        reference, version = _scrambled_pair(seed, longer)
        script = ALGORITHMS["correcting"](reference, version)
        flat = make_in_place(script, reference, policy="local-min")
        spilled = make_in_place(script, reference, policy="local-min",
                                scratch_budget=4096)
        cycles += flat.report.cycles_found
        evictions += flat.report.evicted_count
        spills += spilled.report.spilled_count
    assert cycles > 0
    assert evictions > 0
    assert spills > 0
