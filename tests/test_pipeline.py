"""Tests for repro.pipeline: the reference index cache and batch executor."""

import random
import threading

import pytest

import repro
from repro.core.convert import ConversionReport
from repro.delta import (
    FullSeedIndex,
    SparseSeedIndex,
    correcting_delta,
    greedy_delta,
    onepass_delta,
)
from repro.pipeline import (
    BatchReport,
    DeltaPipeline,
    PipelineConfig,
    PipelineJob,
    ReferenceIndexCache,
)
from repro.workloads import make_source_file, mutate


@pytest.fixture
def batch_pair(rng):
    """One reference plus several derived versions (the serving shape)."""
    reference = make_source_file(rng, 8_000)
    versions = []
    for i in range(5):
        version = mutate(reference, rng)
        if i % 2:  # mix shorter and longer versions
            version = version + make_source_file(rng, 600)
        else:
            version = version[: len(version) - 400]
        versions.append(version)
    return reference, versions


class TestReferenceIndexCache:
    def test_second_fetch_is_a_hit(self, rng):
        reference = rng.randbytes(4_000)
        cache = ReferenceIndexCache()
        first = cache.full_index(reference)
        second = cache.full_index(reference)
        assert first is second
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5
        assert stats.lookups == 2

    def test_keyed_by_content_not_identity(self, rng):
        data = rng.randbytes(2_000)
        cache = ReferenceIndexCache()
        cache.seed_table(bytes(data))
        cache.seed_table(bytearray(data))  # same bytes, different object
        assert cache.stats.hits == 1

    def test_distinct_params_are_distinct_entries(self, rng):
        reference = rng.randbytes(2_000)
        cache = ReferenceIndexCache()
        cache.full_index(reference, seed_length=8)
        cache.full_index(reference, seed_length=16)
        assert len(cache) == 2
        assert cache.stats.misses == 2

    def test_lru_eviction_respects_budget(self, rng):
        cache = ReferenceIndexCache(max_bytes=200_000)
        for _ in range(8):
            cache.fingerprints(rng.randbytes(2_000))
        stats = cache.stats
        assert stats.evictions > 0
        assert stats.current_bytes <= stats.max_bytes
        assert len(cache) < 8

    def test_lru_evicts_least_recently_used(self, rng):
        a, b, c = (rng.randbytes(2_000) for _ in range(3))
        # Budget fits two fingerprint lists (~36 bytes * ~2000 each).
        cache = ReferenceIndexCache(max_bytes=150_000)
        cache.fingerprints(a)
        cache.fingerprints(b)
        cache.fingerprints(a)  # refresh a; b is now the LRU entry
        cache.fingerprints(c)  # evicts b
        assert cache.has("onepass", a)
        assert not cache.has("onepass", b)
        assert cache.has("onepass", c)

    def test_oversized_artifact_built_but_not_retained(self, rng):
        reference = rng.randbytes(4_000)
        cache = ReferenceIndexCache(max_bytes=1)
        index = cache.full_index(reference)
        assert isinstance(index, FullSeedIndex)
        assert len(cache) == 0

    def test_has_and_warm(self, rng):
        reference = rng.randbytes(3_000)
        cache = ReferenceIndexCache()
        assert not cache.has("greedy", reference)
        assert cache.warm("greedy", reference)
        assert cache.has("greedy", reference)
        # has() is a peek: it never counts as a lookup.
        assert cache.stats.lookups == 1
        # Algorithms without reference-side state cannot be warmed.
        assert not cache.warm("tichy", reference)
        assert not cache.has("tichy", reference)

    def test_clear_drops_entries_keeps_counters(self, rng):
        cache = ReferenceIndexCache()
        cache.seed_table(rng.randbytes(1_000))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
        assert cache.stats.current_bytes == 0

    def test_build_lock_map_is_bounded_by_entries(self, rng):
        # Regression: per-key build locks must die with their entries.
        # Churning many distinct references through a small budget used
        # to leave one lock behind per key ever seen — a leak on a
        # long-lived daemon serving an open-ended key space.
        cache = ReferenceIndexCache(max_bytes=150_000)
        for _ in range(50):
            cache.fingerprints(rng.randbytes(2_000))
        assert len(cache._build_locks) <= len(cache._entries)
        assert len(cache._build_locks) < 50

    def test_oversized_artifact_leaves_no_lock_behind(self, rng):
        cache = ReferenceIndexCache(max_bytes=1)
        for _ in range(10):
            cache.full_index(rng.randbytes(2_000))
        assert len(cache._entries) == 0
        assert len(cache._build_locks) == 0

    def test_clear_drops_build_locks(self, rng):
        cache = ReferenceIndexCache()
        cache.seed_table(rng.randbytes(1_000))
        assert len(cache._build_locks) == 1
        cache.clear()
        assert len(cache._build_locks) == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ReferenceIndexCache(max_bytes=0)

    def test_concurrent_fetch_builds_once(self, rng):
        reference = rng.randbytes(6_000)
        cache = ReferenceIndexCache()
        results = []
        barrier = threading.Barrier(6)

        def fetch():
            barrier.wait()
            results.append(cache.full_index(reference))

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats.misses == 1
        assert all(r is results[0] for r in results)

    def test_builds_of_distinct_keys_run_concurrently(self, rng, monkeypatch):
        # Two builds for different keys must overlap: each build blocks
        # on a barrier that only releases when BOTH builds are inside
        # their build function at once.  Under a single global build
        # lock this times out and raises BrokenBarrierError.
        import repro.pipeline.cache as cache_mod
        barrier = threading.Barrier(2, timeout=10)
        real = cache_mod.seed_fingerprints

        def gated(data, seed_length):
            barrier.wait()
            return real(data, seed_length)

        monkeypatch.setattr(cache_mod, "seed_fingerprints", gated)
        cache = ReferenceIndexCache()
        errors = []

        def fetch(buf):
            try:
                cache.fingerprints(buf)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=fetch, args=(rng.randbytes(1_000),))
                   for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.stats.misses == 2

    def test_digest_hashes_through_memoryview(self, rng, monkeypatch):
        # The digest must hash the buffer zero-copy: sha1 receives a
        # memoryview of the original buffer, never a materialized copy.
        # (The implementation lives in repro.store.digest, the shared
        # home of every content-addressed layer's digest.)
        import repro.store.digest as digest_mod
        data = rng.randbytes(4_096)
        seen = []
        real = digest_mod.hashlib.sha1

        def spy(buf):
            seen.append(buf)
            return real(buf)

        monkeypatch.setattr(digest_mod.hashlib, "sha1", spy)
        for buf in (data, bytearray(data), memoryview(data)):
            assert ReferenceIndexCache.digest(buf) == real(data).hexdigest()
        assert len(seen) == 3
        for view, original in zip(seen, (data, bytearray(data))):
            assert isinstance(view, memoryview)
        assert seen[1].obj is not data  # bytearray hashed in place ...
        assert isinstance(seen[1].obj, bytearray)  # ... not copied to bytes

    def test_digest_copies_only_non_contiguous_views(self, rng):
        data = rng.randbytes(2_048)
        strided = memoryview(data)[::2]
        assert not strided.c_contiguous
        assert ReferenceIndexCache.digest(strided) == \
            ReferenceIndexCache.digest(bytes(strided))


class TestCachedDiffers:
    """A shared cache must never change differencing output."""

    @pytest.mark.parametrize("differ", [greedy_delta, onepass_delta,
                                        correcting_delta])
    def test_cached_output_identical(self, differ, batch_pair):
        reference, versions = batch_pair
        cache = ReferenceIndexCache()
        for version in versions:
            plain = differ(reference, version)
            cached = differ(reference, version, cache=cache)
            assert cached.commands == plain.commands
            assert cached.version_length == plain.version_length
        assert cache.stats.hits == len(versions) - 1

    def test_greedy_accepts_prebuilt_index(self, sample_pair):
        reference, version = sample_pair
        index = FullSeedIndex(reference, 16, 64)
        plain = greedy_delta(reference, version, seed_length=16)
        indexed = greedy_delta(reference, version, seed_length=16, index=index)
        assert indexed.commands == plain.commands

    def test_greedy_rejects_mismatched_index(self, sample_pair):
        reference, version = sample_pair
        index = FullSeedIndex(reference, 8, 64)
        with pytest.raises(ValueError):
            greedy_delta(reference, version, seed_length=16, index=index)


class TestSparseGreedyTier:
    """The cache's sampled greedy tier for over-budget references."""

    def test_stride_one_when_full_index_fits(self):
        cache = ReferenceIndexCache()  # default 128 MB budget
        assert cache.greedy_stride(8_000) == 1

    def test_stride_grows_with_reference(self):
        cache = ReferenceIndexCache()
        stride = cache.greedy_stride(12 << 20)
        assert stride > 1
        # A tighter budget forces sparser sampling.
        tighter = ReferenceIndexCache(max_bytes=64 << 20)
        assert tighter.greedy_stride(12 << 20) > stride

    def test_greedy_index_degrades_to_sparse_tier(self, rng):
        cache = ReferenceIndexCache(max_bytes=100_000)
        reference = rng.randbytes(20_000)
        index = cache.greedy_index(reference)
        assert isinstance(index, SparseSeedIndex)
        assert index.stride == cache.greedy_stride(len(reference))
        # Sparse enough to be retained: the point of the tier.
        assert cache.stats.evictions == 0
        assert cache.greedy_index(reference) is index
        assert cache.stats.hits == 1

    def test_has_and_warm_track_the_sparse_tier(self, rng):
        cache = ReferenceIndexCache(max_bytes=100_000)
        reference = rng.randbytes(20_000)
        assert not cache.has("greedy", reference)
        assert cache.warm("greedy", reference)
        assert cache.has("greedy", reference)
        assert isinstance(cache.greedy_index(reference), SparseSeedIndex)

    def test_greedy_over_sparse_cache_round_trips(self, rng):
        cache = ReferenceIndexCache(max_bytes=100_000)
        reference = rng.randbytes(20_000)
        for _ in range(3):
            version = mutate(reference, rng)
            script = greedy_delta(reference, version, cache=cache)
            assert repro.apply_delta(script, reference) == version
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0

    def test_multi_mib_greedy_pipeline_runs_warm(self, rng):
        # The footgun this tier fixes: greedy over a 12 MiB reference
        # used to price its full index over the default budget, so every
        # job rebuilt a >1 GB-estimated index and thrashed the LRU.  Now
        # the sparse tier is built once, retained, and every later job
        # (and batch) is a cache hit with zero evictions.
        pytest.importorskip("numpy")
        reference = rng.randbytes(12 << 20)
        versions = [
            mutate(reference[base:base + 16_384], rng)
            for base in (0, 5 << 20, 10 << 20)
        ]
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(algorithm="greedy",
                                          executor="serial")) as pipe:
            cold = pipe.run(jobs)
            warm = pipe.run(jobs)
            stats = pipe.cache.stats
        assert cold.cache_hits == len(jobs) - 1
        assert warm.cache_hits == len(jobs)
        assert stats.misses == 1
        assert stats.evictions == 0
        for batch in (cold, warm):
            for result, version in zip(batch.results, versions):
                buf = bytearray(reference)
                assert bytes(repro.patch_in_place(buf, result.payload)) == version


class TestDeltaPipeline:
    def _check_batch(self, batch, reference, versions, executor):
        assert isinstance(batch, BatchReport)
        assert batch.jobs == len(versions)
        assert batch.wall_seconds > 0
        for i, result in enumerate(batch.results):
            report = result.report
            assert report.name == "v%d" % i  # submission order preserved
            buf = bytearray(reference)
            assert bytes(repro.patch_in_place(buf, result.payload)) == versions[i]
            assert report.executor == executor
            assert report.delta_bytes == len(result.payload)
            assert report.version_bytes == len(versions[i])
            assert isinstance(report.conversion, ConversionReport)
            for stage in (report.queue_seconds, report.diff_seconds,
                          report.convert_seconds, report.encode_seconds,
                          report.total_seconds):
                assert stage >= 0.0

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_round_trip(self, executor, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(executor=executor, diff_workers=3,
                                          convert_workers=3)) as pipe:
            batch = pipe.run(jobs)
        self._check_batch(batch, reference, versions, executor)

    def test_process_executor_round_trip(self, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(executor="process", diff_workers=2,
                                          convert_workers=2)) as pipe:
            batch = pipe.run(jobs)
            self._check_batch(batch, reference, versions, "process")
            # The worker-local caches persist across run() calls, so a
            # second batch against the same reference hits everywhere.
            again = pipe.run(jobs)
        assert again.cache_hits == len(jobs)

    def test_warm_makes_every_job_hit(self, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(algorithm="greedy", executor="thread")) as pipe:
            assert pipe.warm([reference]) == 1
            batch = pipe.run(jobs)
        assert batch.cache_hits == len(jobs)
        assert batch.cache_hit_rate == 1.0
        assert batch.cache_stats is not None
        assert batch.cache_stats.hit_rate > 0.5

    def test_cold_then_warm_batches(self, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(executor="serial")) as pipe:
            cold = pipe.run(jobs)
            warm = pipe.run(jobs)
        assert cold.cache_hits == len(jobs) - 1  # first job builds the table
        assert warm.cache_hits == len(jobs)

    def test_tichy_bypasses_cache(self, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(algorithm="tichy", executor="serial")) as pipe:
            batch = pipe.run(jobs)
        self._check_batch(batch, reference, versions, "serial")
        assert batch.cache_hits == 0
        assert batch.cache_stats.lookups == 0

    def test_scratch_and_ordering_pass_through(self, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(executor="serial", scratch_budget=256,
                                          ordering="locality")) as pipe:
            batch = pipe.run(jobs)
        self._check_batch(batch, reference, versions, "serial")
        for result in batch.results:
            assert result.report.conversion.scratch_used <= 256

    def test_run_pairs_names_jobs(self, batch_pair):
        reference, versions = batch_pair
        with DeltaPipeline(PipelineConfig(executor="serial")) as pipe:
            batch = pipe.run_pairs([(reference, v) for v in versions[:2]],
                                   names=["alpha", "beta"])
        assert [r.report.name for r in batch.results] == ["alpha", "beta"]

    def test_batch_report_aggregates(self, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(executor="serial")) as pipe:
            batch = pipe.run(jobs)
        assert batch.total_version_bytes == sum(map(len, versions))
        assert batch.total_delta_bytes == sum(
            r.report.delta_bytes for r in batch.results)
        assert batch.compute_seconds > 0

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(ValueError):
            DeltaPipeline(PipelineConfig(algorithm="magic"))

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            DeltaPipeline(PipelineConfig(executor="fibers"))

    def test_empty_batch(self):
        with DeltaPipeline(PipelineConfig(executor="serial")) as pipe:
            batch = pipe.run([])
        assert batch.jobs == 0
        assert batch.cache_hit_rate == 0.0

    def test_shared_external_cache(self, batch_pair):
        reference, versions = batch_pair
        cache = ReferenceIndexCache()
        cache.warm("correcting", reference)
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with DeltaPipeline(PipelineConfig(executor="thread", cache=cache)) as pipe:
            batch = pipe.run(jobs)
        assert batch.cache_hits == len(jobs)
        assert pipe.cache is cache

class TestPipelineConfig:
    """The consolidated configuration object and its deprecation shim."""

    def test_defaults_reproduce_default_pipeline(self):
        with DeltaPipeline(PipelineConfig()) as pipe:
            assert pipe.algorithm == "correcting"
            assert pipe.executor == "thread"
            assert pipe.retries == 0
            assert pipe.verify_outputs is True
            assert pipe.config == PipelineConfig()

    def test_chain_is_primary_plus_fallbacks(self):
        config = PipelineConfig(algorithm="greedy",
                                fallback=("onepass", "raw"))
        assert config.chain() == ("greedy", "onepass", "raw")

    def test_validate_rejects_bad_fields(self):
        for bad in (PipelineConfig(algorithm="magic"),
                    PipelineConfig(executor="fibers"),
                    PipelineConfig(retries=-1),
                    PipelineConfig(stage_timeout=0),
                    PipelineConfig(fallback=("magic",))):
            with pytest.raises(ValueError):
                bad.validate()

    def test_legacy_kwargs_warn_and_still_work(self, batch_pair):
        reference, versions = batch_pair
        jobs = [PipelineJob(reference, v, "v%d" % i)
                for i, v in enumerate(versions)]
        with pytest.warns(DeprecationWarning):
            pipe = DeltaPipeline(algorithm="greedy", executor="serial",
                                 retries=1, fallback=["raw"])
        with pipe:
            batch = pipe.run(jobs)
        assert pipe.algorithm == "greedy"
        assert pipe.fallback_chain == ("raw",)
        assert pipe.config == PipelineConfig(algorithm="greedy",
                                             executor="serial", retries=1,
                                             fallback=("raw",))
        assert batch.ok_jobs == len(jobs)

    def test_config_and_kwargs_together_rejected(self):
        with pytest.raises(TypeError):
            DeltaPipeline(PipelineConfig(), algorithm="greedy")

    def test_config_is_frozen_and_shareable(self, batch_pair):
        import dataclasses
        reference, versions = batch_pair
        base = PipelineConfig(algorithm="greedy")
        with pytest.raises(dataclasses.FrozenInstanceError):
            base.algorithm = "onepass"
        variant = dataclasses.replace(base, executor="serial")
        jobs = [PipelineJob(reference, versions[0], "v0")]
        for config in (base, variant):
            with DeltaPipeline(config) as pipe:
                assert pipe.run(jobs).ok_jobs == 1
