"""Unit tests for the versioned corpus (repro.workloads.corpus)."""

import pytest

from repro.workloads.corpus import Corpus, PackageSpec, small_corpus


class TestCorpus:
    def test_deterministic(self):
        a = Corpus(seed=10, packages=2, releases=2, scale=0.1)
        b = Corpus(seed=10, packages=2, releases=2, scale=0.1)
        assert a.releases == b.releases

    def test_seed_changes_content(self):
        a = Corpus(seed=10, packages=2, releases=2, scale=0.1)
        b = Corpus(seed=11, packages=2, releases=2, scale=0.1)
        assert a.releases != b.releases

    def test_needs_two_releases(self):
        with pytest.raises(ValueError):
            Corpus(releases=1, packages=1)

    def test_pair_count(self, tiny_corpus):
        pairs = list(tiny_corpus.pairs())
        assert len(pairs) == tiny_corpus.pair_count()
        assert len(pairs) == len(tiny_corpus.releases[0])

    def test_pairs_are_adjacent_releases(self, tiny_corpus):
        for pair in tiny_corpus.pairs():
            key = (pair.package, pair.path)
            assert tiny_corpus.releases[pair.release - 1][key] == pair.reference
            assert tiny_corpus.releases[pair.release][key] == pair.version

    def test_versions_differ_but_overlap(self, tiny_corpus):
        from repro.workloads import edit_distance_estimate

        changed = [
            edit_distance_estimate(p.reference, p.version)
            for p in tiny_corpus.pairs()
            if p.kind != "stable"
        ]
        # Something changed, but most content is shared.
        assert any(c > 0.0 for c in changed)
        assert sum(changed) / len(changed) < 0.8

    def test_custom_specs(self):
        spec = PackageSpec("only", [("a.c", "source", 2_000)])
        corpus = Corpus(seed=3, releases=2, specs=[spec])
        assert corpus.pair_count() == 1
        pair = next(corpus.pairs())
        assert pair.package == "only"
        assert pair.kind == "source"

    def test_name_format(self, tiny_corpus):
        pair = next(tiny_corpus.pairs())
        assert pair.name == "%s/%s@r1" % (pair.package, pair.path)

    def test_total_version_bytes(self, tiny_corpus):
        assert tiny_corpus.total_version_bytes() == \
            sum(len(p.version) for p in tiny_corpus.pairs())

    def test_small_corpus_is_fast_shape(self):
        corpus = small_corpus()
        assert corpus.release_count == 2
        assert corpus.pair_count() >= 4

    def test_compression_lands_in_paper_band(self):
        # The corpus's raison d'etre: plain deltas compress versions into
        # (roughly) the paper's 4-10x band on average.
        from repro.analysis import aggregate, measure_pair

        corpus = Corpus(seed=19980601, packages=3, releases=2, scale=0.3)
        summary = aggregate(
            measure_pair(p.name, p.reference, p.version, policies=("local-min",))
            for p in corpus.pairs()
        )
        assert 8.0 < summary.compression_sequential < 30.0
