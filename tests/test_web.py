"""Tests for the HTTP-object workload (repro.workloads.web)."""

import pytest

import repro
from repro.workloads.web import WebSite, fetch_sequence


class TestWebSite:
    def test_deterministic(self):
        a, b = WebSite(seed=5), WebSite(seed=5)
        assert a.snapshot(0) == b.snapshot(0)
        a.evolve()
        b.evolve()
        assert a.snapshot(0) == b.snapshot(0)

    def test_pages_are_html(self):
        site = WebSite()
        for page in site.pages:
            html = site.snapshot(page).decode("ascii")
            assert html.startswith("<html>")
            assert html.rstrip().endswith("</html>")
            assert "Section %d" % page in html

    def test_evolve_changes_some_bytes(self):
        site = WebSite()
        before = site.snapshot(0)
        site.evolve()
        after = site.snapshot(0)
        assert before != after

    def test_template_mostly_persists(self):
        """The [10] observation the workload encodes: successive fetches
        share most of their bytes (delta compresses well)."""
        site = WebSite()
        total_page = total_delta = 0
        for cached, fresh in fetch_sequence(site, 0, 5):
            script = repro.diff(cached, fresh)
            total_page += len(fresh)
            total_delta += script.added_bytes
        assert total_delta < 0.5 * total_page

    def test_fetch_sequence_chains(self):
        site = WebSite()
        pairs = list(fetch_sequence(site, 1, 4))
        assert len(pairs) == 4
        for (a_prev, a_cur), (b_prev, b_cur) in zip(pairs, pairs[1:]):
            assert a_cur == b_prev  # each fetch becomes the next cache entry

    def test_in_place_cache_update_round_trip(self):
        site = WebSite(seed=11)
        for cached, fresh in fetch_sequence(site, 2, 3):
            result = repro.diff_in_place(cached, fresh)
            slot = bytearray(cached)
            repro.apply_in_place(result.script, slot, strict=True)
            assert bytes(slot) == fresh

    def test_counters_always_move(self):
        site = WebSite()
        stamps = set()
        for _ in range(4):
            site.evolve()
            html = site.snapshot(0)
            stamps.add(html[html.index(b"cycle "):html.index(b"</address>")])
        assert len(stamps) == 4
