"""Cycle-breaking policies and whole-graph eviction solvers.

When the CRWI digraph contains cycles, no execution order avoids every
write-before-read conflict, and some copy commands must be *evicted* —
converted to add commands at a compression cost of ``l - |f|`` bytes each
(section 5).  Choosing the globally cheapest eviction set is the
minimum-cost feedback vertex set problem restricted to CRWI digraphs,
which the paper proves NP-hard; practical converters instead break cycles
one at a time as the topological sort discovers them.

This module provides:

* the two per-cycle policies the paper evaluates —
  :class:`ConstantTimePolicy` (evict the vertex at hand, O(1) per cycle)
  and :class:`LocallyMinimumPolicy` (walk the cycle, evict its cheapest
  vertex);
* a :class:`MaxOutDegreePolicy` ablation that targets structurally
  central vertices rather than cheap ones;
* whole-graph solvers used by the benches to bound the policies' gap from
  optimal: :func:`exact_minimum_evictions` (exponential branch-and-bound,
  small graphs only) and :func:`greedy_evictions` (cost/degree-ratio
  heuristic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

from ..exceptions import CycleBreakError
from . import _kernels as _k
from .crwi import CRWIDigraph


class CyclePolicy(Protocol):
    """Strategy invoked by the sorter each time it discovers a cycle."""

    #: Human-readable policy name, used in bench output.
    name: str

    def choose(self, cycle: Sequence[int], costs: Sequence[int]) -> int:
        """Pick the vertex of ``cycle`` to evict.

        ``cycle`` lists the vertices of the discovered cycle in path
        order, ending at the vertex whose back edge closed the cycle;
        ``costs`` is indexed by vertex id.  Must return a member of
        ``cycle``.
        """
        ...


class ConstantTimePolicy:
    """Evict the vertex the sort is currently processing.

    The paper's *constant time* policy: "picks the easiest vertex to
    remove, based on the execution order of the topological sort" — the
    last node in visit order before the cycle was detected, which is the
    final element of the cycle path.  No work proportional to cycle
    length is performed.
    """

    name = "constant"

    def choose(self, cycle: Sequence[int], costs: Sequence[int]) -> int:
        if not cycle:
            raise CycleBreakError("cannot break an empty cycle")
        return cycle[-1]


class LocallyMinimumPolicy:
    """Walk the cycle and evict its minimum-cost vertex.

    The paper's *locally minimum* policy.  Work per cycle is proportional
    to the cycle length; ties break toward the earliest vertex in the
    cycle path so the choice is deterministic.
    """

    name = "local-min"

    def choose(self, cycle: Sequence[int], costs: Sequence[int]) -> int:
        if not cycle:
            raise CycleBreakError("cannot break an empty cycle")
        best = cycle[0]
        for v in cycle[1:]:
            if costs[v] < costs[best]:
                best = v
        return best


class MaxOutDegreePolicy:
    """Ablation: evict the cycle vertex with the most outgoing conflicts.

    Not in the paper.  Intuition: a high-out-degree vertex participates in
    many potential cycles, so evicting it may prevent future cycles even
    when it is not the cheapest vertex on this one.  The Figure 2
    adversary is exactly the case where this wins and locally-minimum
    loses.  Requires the digraph at construction time.
    """

    name = "max-out-degree"

    def __init__(self, graph: CRWIDigraph):
        self._graph = graph

    def choose(self, cycle: Sequence[int], costs: Sequence[int]) -> int:
        if not cycle:
            raise CycleBreakError("cannot break an empty cycle")
        best = cycle[0]
        best_deg = len(self._graph.successors[best])
        for v in cycle[1:]:
            deg = len(self._graph.successors[v])
            if deg > best_deg or (deg == best_deg and costs[v] < costs[best]):
                best, best_deg = v, deg
        return best


def make_policy(name: str, graph: Optional[CRWIDigraph] = None) -> CyclePolicy:
    """Instantiate a per-cycle policy by name.

    Accepts ``"constant"``, ``"local-min"`` (alias ``"locally-minimum"``)
    and ``"max-out-degree"`` (which needs ``graph``).
    """
    key = name.lower().replace("_", "-")
    if key == "constant":
        return ConstantTimePolicy()
    if key in ("local-min", "locally-minimum", "localmin"):
        return LocallyMinimumPolicy()
    if key == "max-out-degree":
        if graph is None:
            raise ValueError("max-out-degree policy requires the CRWI digraph")
        return MaxOutDegreePolicy(graph)
    raise ValueError("unknown cycle-breaking policy %r" % name)


# ---------------------------------------------------------------------------
# Whole-graph eviction solvers (feedback vertex set)
# ---------------------------------------------------------------------------


def _acyclic_by_peel(graph: CRWIDigraph, removed: Set[int]) -> Optional[bool]:
    """Array-kernel acyclicity verdict for ``graph`` minus ``removed``.

    ``True``/``False`` when the CSR peel could decide, ``None`` when the
    fast paths are off (the caller falls through to the scalar DFS).
    The peel is exact — a full forward Kahn pass empties the live
    subgraph iff it is acyclic — so short-circuiting on ``True`` cannot
    change any solver's output, only skip a DFS that would return
    ``None`` anyway.  This is what lets the whole-graph eviction solvers
    run their (many) acyclicity probes on flat arrays.
    """
    if not _k.fast_enabled() or graph.vertex_count < _k.ARRAY_PEEL_MIN:
        return None
    csr = graph.csr()
    if csr is None:
        return None
    np = _k.np
    dead = np.zeros(graph.vertex_count, dtype=bool)
    if removed:
        dead[np.array(sorted(removed), dtype=np.int64)] = True
    return _k.layered_toposort(csr[0], csr[1], dead) is not None


def _has_cycle_excluding(graph: CRWIDigraph, removed: Set[int]) -> Optional[List[int]]:
    """A cycle in ``graph`` avoiding ``removed`` vertices, or ``None``.

    Iterative colored DFS; returns the cycle as a vertex list in path
    order when one exists.  When the array kernels prove the residual
    graph acyclic the DFS is skipped outright.
    """
    if _acyclic_by_peel(graph, removed) is True:
        return None
    color = [0] * graph.vertex_count  # 0 white, 1 gray, 2 black
    parent: Dict[int, int] = {}
    for root in range(graph.vertex_count):
        if color[root] != 0 or root in removed:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            u, edge_pos = stack[-1]
            advanced = False
            adj = graph.successors[u]
            while edge_pos < len(adj):
                v = adj[edge_pos]
                edge_pos += 1
                stack[-1] = (u, edge_pos)
                if v in removed or color[v] == 2:
                    continue
                if color[v] == 1:
                    cycle = [u]
                    w = u
                    while w != v:
                        w = parent[w]
                        cycle.append(w)
                    cycle.reverse()
                    return cycle
                color[v] = 1
                parent[v] = u
                stack.append((v, 0))
                advanced = True
                break
            if not advanced:
                color[u] = 2
                stack.pop()
    return None


def greedy_evictions(graph: CRWIDigraph, costs: Optional[Sequence[int]] = None) -> List[int]:
    """Heuristic feedback vertex set: repeatedly break some remaining cycle.

    Finds a cycle, evicts its vertex with the smallest cost-to-degree
    ratio (cheap *and* structurally central), and repeats until acyclic.
    A global heuristic the per-cycle policies can be compared against.
    """
    if costs is None:
        costs = graph.costs()
    removed: Set[int] = set()
    while True:
        cycle = _has_cycle_excluding(graph, removed)
        if cycle is None:
            return sorted(removed)
        best = None
        best_ratio = None
        for v in cycle:
            degree = 1 + sum(1 for s in graph.successors[v] if s not in removed)
            ratio = costs[v] / degree
            if best_ratio is None or ratio < best_ratio:
                best, best_ratio = v, ratio
        removed.add(best)


def exact_minimum_evictions(
    graph: CRWIDigraph,
    costs: Optional[Sequence[int]] = None,
    max_vertices: int = 64,
) -> List[int]:
    """Exact minimum-cost feedback vertex set by branch and bound.

    The underlying problem is NP-hard (section 5), so this is exponential
    and guarded by ``max_vertices``; it exists to *measure* the gap
    between the practical policies and the true optimum on small inputs
    (the comparison the paper could not make).

    Branching rule: find any cycle in the remaining graph; some vertex of
    it must be evicted, so branch on each cycle vertex.  Prunes branches
    whose accumulated cost already meets the incumbent.
    """
    if graph.vertex_count > max_vertices:
        raise ValueError(
            "exact solver limited to %d vertices (got %d); the problem is NP-hard"
            % (max_vertices, graph.vertex_count)
        )
    if costs is None:
        costs = graph.costs()

    best_set = list(range(graph.vertex_count))
    best_cost = sum(costs)

    # Seed the incumbent with the greedy solution for tighter pruning.
    seed = greedy_evictions(graph, costs)
    seed_cost = sum(costs[v] for v in seed)
    if seed_cost < best_cost:
        best_set, best_cost = seed, seed_cost

    def search(removed: Set[int], cost_so_far: int) -> None:
        nonlocal best_set, best_cost
        if cost_so_far >= best_cost:
            return
        cycle = _has_cycle_excluding(graph, removed)
        if cycle is None:
            best_set, best_cost = sorted(removed), cost_so_far
            return
        for v in sorted(cycle, key=lambda w: costs[w]):
            removed.add(v)
            search(removed, cost_so_far + costs[v])
            removed.remove(v)

    search(set(), 0)
    return best_set


def eviction_cost(evicted: Sequence[int], costs: Sequence[int]) -> int:
    """Total compression cost of an eviction set."""
    return sum(costs[v] for v in evicted)


def is_feedback_vertex_set(graph: CRWIDigraph, evicted: Sequence[int]) -> bool:
    """True when removing ``evicted`` leaves ``graph`` acyclic."""
    return _has_cycle_excluding(graph, set(evicted)) is None
