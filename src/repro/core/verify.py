"""Static safety verification for in-place delta scripts.

:func:`check_in_place_safe` is the executable form of Equation 2 of the
paper: a script is in-place reconstructible exactly when no command reads
an interval that any *earlier* command has written,

    for all j:  [f_j, f_j + l_j - 1]  ∩  union_{i<j} [t_i, t_i + l_i - 1]  =  ∅.

The checker walks the script in application order, accumulating written
intervals in a :class:`~repro.core.intervals.DynamicIntervalSet`, and
reports the first violation with both command positions — which is also
how the strict in-place applier fails, so the static and dynamic checks
agree by construction (a property the tests assert).

:func:`count_wr_conflicts` measures how conflicted an *arbitrary* script
is (Equation 1 pairs under the script's current order); the benches use it
to characterize inputs before conversion.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..exceptions import WriteBeforeReadError
from .commands import (
    AddCommand,
    CopyCommand,
    DeltaScript,
    FillCommand,
    SpillCommand,
    VersionWriter,
)
from .intervals import DynamicIntervalSet, Interval, IntervalIndex


def find_first_conflict(script: DeltaScript) -> Optional[Tuple[int, int]]:
    """First (writer, reader) pair violating Equation 2, or ``None``.

    ``writer`` is the position of an earlier command whose write interval
    intersects the read interval of the later copy at position ``reader``.
    Runs in ``O(n log n)`` using the incremental written-set.
    """
    written = DynamicIntervalSet()
    write_positions: List[Tuple[Interval, int]] = []
    for j, cmd in enumerate(script.commands):
        if isinstance(cmd, (CopyCommand, SpillCommand)):
            clash = written.first_intersection(cmd.read_interval)
            if clash is not None:
                writer = next(
                    i for iv, i in write_positions if iv.intersects(cmd.read_interval)
                )
                return (writer, j)
        if isinstance(cmd, VersionWriter):
            written.add(cmd.write_interval)
            write_positions.append((cmd.write_interval, j))
    return None


def check_in_place_safe(script: DeltaScript) -> None:
    """Raise :class:`WriteBeforeReadError` unless ``script`` satisfies Equation 2."""
    conflict = find_first_conflict(script)
    if conflict is not None:
        writer, reader = conflict
        raise WriteBeforeReadError(
            "command %d reads data command %d already overwrote; the script "
            "cannot be applied in place" % (reader, writer),
            writer_index=writer,
            reader_index=reader,
        )


def is_in_place_safe(script: DeltaScript) -> bool:
    """Boolean form of :func:`check_in_place_safe`."""
    return find_first_conflict(script) is None


def count_wr_conflicts(script: DeltaScript) -> int:
    """Number of ordered command pairs (i < j) with a WR conflict (Equation 1).

    Counts pairs where command ``i``'s write interval intersects copy
    ``j``'s read interval under the script's present order.  This is the
    quantity the conversion algorithm drives to zero.
    """
    conflicts = 0
    written = []
    # O(n^2) in the worst case but trims work with a sorted scan; scripts
    # here are command lists, not byte strings, so this stays fast enough
    # for analysis use.
    for cmd in script.commands:
        if isinstance(cmd, (CopyCommand, SpillCommand)):
            ri = cmd.read_interval
            for wi in written:
                if wi.intersects(ri):
                    conflicts += 1
        if isinstance(cmd, VersionWriter):
            written.append(cmd.write_interval)
    return conflicts


def adds_are_last(script: DeltaScript) -> bool:
    """True when every add/fill command follows every copy command.

    The converter always emits scripts in this shape (technique 1 of
    section 4.1, with fills treated like adds: both read nothing a copy
    can clobber); the verifier exposes it for tests and linting.
    """
    seen_trailing = False
    for cmd in script.commands:
        if isinstance(cmd, (AddCommand, FillCommand)):
            seen_trailing = True
        elif isinstance(cmd, CopyCommand) and seen_trailing:
            return False
    return True


def lint_in_place(script: DeltaScript, reference_length: Optional[int] = None) -> List[str]:
    """All structural complaints about ``script`` as an in-place delta.

    Returns human-readable messages (empty list means the script is a
    well-formed, in-place-safe delta with adds trailing).  Used by the CLI
    ``inspect`` command.
    """
    problems: List[str] = []
    try:
        script.validate(reference_length=reference_length)
    except Exception as exc:
        problems.append("structure: %s" % exc)
    conflict = find_first_conflict(script)
    if conflict is not None:
        problems.append(
            "safety: command %d reads bytes command %d already wrote"
            % (conflict[1], conflict[0])
        )
    if not adds_are_last(script):
        problems.append("layout: add commands are not all at the end of the script")
    return problems
