"""The in-place conversion algorithm (paper, section 4).

:func:`make_in_place` rewrites an arbitrary delta script into an
equivalent script that reconstructs the version *in the storage the
reference occupies*, following the paper's three techniques:

1. all add commands move to the end of the script (adds never read the
   reference, so they cannot be corrupted — only corrupting);
2. copy commands are permuted into an order with no write-before-read
   conflict, found by topologically sorting the CRWI digraph;
3. copies trapped in digraph cycles are *evicted* — re-encoded as add
   commands carrying the copied bytes, at a compression cost the
   cycle-breaking policy tries to minimize.

The converter needs the reference bytes only to materialize evicted
copies; when a script converts without evictions, ``reference`` may be
``None``.  The output always satisfies Equation 2 (checked by the tests
via :mod:`repro.core.verify` and executed by the strict in-place
applier).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..exceptions import ReproError
from .commands import (
    AddCommand,
    Command,
    CopyCommand,
    DeltaScript,
    FillCommand,
    SpillCommand,
)
from .crwi import CRWIDigraph, build_crwi_digraph
from .policies import (
    CyclePolicy,
    exact_minimum_evictions,
    greedy_evictions,
    make_policy,
)
from .toposort import (
    ToposortResult,
    cycle_breaking_toposort,
    locality_toposort,
    plain_toposort,
)

#: Policies resolved per-cycle inside the topological sort.
PER_CYCLE_POLICIES = ("constant", "local-min", "max-out-degree")
#: Strategies that pick the whole eviction set before sorting.
WHOLE_GRAPH_POLICIES = ("optimal", "greedy-global")


@dataclass
class ConversionReport:
    """Accounting for one in-place conversion.

    The benches aggregate these to rebuild Table 1 (compression loss
    decomposition) and the section 7 runtime and policy comparisons.
    """

    policy: str
    copies_in: int = 0
    adds_in: int = 0
    evicted_count: int = 0
    #: Literal bytes the evicted copies now carry in the delta.
    evicted_bytes: int = 0
    #: Compression cost per the paper's cost model, sum of (l - |f|) over
    #: copy-to-add conversions plus the codeword overhead of spills.
    eviction_cost: int = 0
    #: Evictions rescued by the scratch buffer (spill/fill pairs).
    spilled_count: int = 0
    #: Bytes routed through the scratch buffer instead of the delta file.
    spilled_bytes: int = 0
    #: Scratch bytes the output script requires at apply time.
    scratch_used: int = 0
    crwi_vertices: int = 0
    crwi_edges: int = 0
    cycles_found: int = 0
    total_cycle_length: int = 0
    revisits: int = 0
    #: Wall-clock seconds spent converting (digraph + sort + emit).
    seconds: float = 0.0

    @property
    def copies_out(self) -> int:
        """Copy commands surviving into the in-place script."""
        return self.copies_in - self.evicted_count

    @property
    def adds_out(self) -> int:
        """Add commands in the in-place script (originals + evictions)."""
        return self.adds_in + self.evicted_count


@dataclass
class InPlaceResult:
    """An in-place reconstructible script plus its conversion report."""

    script: DeltaScript
    report: ConversionReport


def _resolve_evictions(
    graph: CRWIDigraph,
    policy: Union[str, CyclePolicy],
    offset_encoding_size: int,
    ordering: str = "dfs",
) -> ToposortResult:
    """Run the sort/eviction stage under the named or given policy.

    ``ordering="locality"`` re-sorts the surviving copies with the
    write-order-preferring Kahn pass (same eviction set, an order that
    minimizes jumps across the version file — cheaper on erase-block
    flash).
    """
    costs = graph.costs(offset_encoding_size)
    if isinstance(policy, str) and policy in WHOLE_GRAPH_POLICIES:
        if policy == "optimal":
            evicted = exact_minimum_evictions(graph, costs)
        else:
            evicted = greedy_evictions(graph, costs)
        result = ToposortResult(order=[], evicted=list(evicted))
        if ordering != "locality":
            result.order = plain_toposort(graph, excluding=evicted)
    else:
        cycle_policy = make_policy(policy, graph) if isinstance(policy, str) else policy
        result = cycle_breaking_toposort(graph, cycle_policy, costs)
    if ordering == "locality":
        result.order = locality_toposort(graph, excluding=result.evicted)
    elif ordering != "dfs":
        raise ValueError("unknown ordering %r; use 'dfs' or 'locality'" % ordering)
    return result


def assemble_in_place(
    graph: CRWIDigraph,
    sort: ToposortResult,
    adds: List[AddCommand],
    reference: Optional[Union[bytes, bytearray, memoryview]],
    *,
    policy_name: str,
    version_length: int,
    offset_encoding_size: int = 4,
    scratch_budget: int = 0,
    started: Optional[float] = None,
) -> InPlaceResult:
    """Shared emission stage: evictions -> spills/adds, final command layout.

    Used by both the post-processing path (:func:`make_in_place`) and
    the integrated generator
    (:class:`repro.core.integrated.InPlaceDeltaBuilder`), so the two
    pipelines produce identical scripts and reports by construction.
    """
    if started is None:
        started = time.perf_counter()
    report = ConversionReport(
        policy=policy_name,
        copies_in=graph.vertex_count,
        adds_in=len(adds),
        crwi_vertices=graph.vertex_count,
        crwi_edges=graph.edge_count,
        cycles_found=sort.cycles_found,
        total_cycle_length=sort.total_cycle_length,
        revisits=sort.revisits,
    )

    # Evicted copies become spill/fill pairs while scratch lasts (largest
    # first — each spilled byte is a byte the delta file does not carry),
    # then adds.
    spills: List[SpillCommand] = []
    fills: List[FillCommand] = []
    converted: List[AddCommand] = []
    scratch_cursor = 0
    # A spill/fill pair replaces one copy codeword with two, each with an
    # extra scratch-offset field.
    spill_overhead = 2 + 3 * offset_encoding_size
    for v in sorted(sort.evicted, key=lambda v: -graph.vertices[v].length):
        cmd = graph.vertices[v]
        report.evicted_count += 1
        report.evicted_bytes += cmd.length
        if scratch_cursor + cmd.length <= scratch_budget:
            spills.append(SpillCommand(cmd.src, scratch_cursor, cmd.length))
            fills.append(FillCommand(scratch_cursor, cmd.dst, cmd.length))
            scratch_cursor += cmd.length
            report.spilled_count += 1
            report.spilled_bytes += cmd.length
            report.eviction_cost += spill_overhead
        else:
            if reference is None:
                raise ReproError(
                    "conversion requires a copy-to-add eviction (%d bytes, "
                    "scratch exhausted) but no reference bytes were provided"
                    % cmd.length
                )
            converted.append(cmd.to_add(reference))
            report.eviction_cost += max(1, cmd.length - offset_encoding_size)
    report.scratch_used = scratch_cursor

    # Spills first (reads only — always safe up front), surviving copies
    # in topological order, then fills and adds.
    commands: List[Command] = list(spills)
    commands.extend(graph.vertices[v] for v in sort.order)
    commands.extend(sorted(fills + adds + converted, key=lambda a: a.dst))
    out = DeltaScript(commands, version_length)
    report.seconds = time.perf_counter() - started
    return InPlaceResult(out, report)


def make_in_place(
    script: DeltaScript,
    reference: Optional[Union[bytes, bytearray, memoryview]] = None,
    *,
    policy: Union[str, CyclePolicy] = "local-min",
    offset_encoding_size: int = 4,
    scratch_budget: int = 0,
    ordering: str = "dfs",
) -> InPlaceResult:
    """Post-process ``script`` into an in-place reconstructible script.

    ``policy`` selects the cycle-breaking strategy: ``"constant"`` and
    ``"local-min"`` are the paper's per-cycle policies; ``"optimal"``
    (exact, small inputs only) and ``"greedy-global"`` choose the whole
    eviction set up front; any :class:`CyclePolicy` instance is used
    per-cycle.  ``offset_encoding_size`` is ``|f|`` in the cost model —
    the encoded size of the ``from`` field an eviction saves.

    ``ordering`` selects among valid topological orders: ``"dfs"`` (the
    sort's natural reverse postorder) or ``"locality"`` (stay as close to
    write order as the conflict edges allow — fewer erase cycles on
    block-managed flash, same safety guarantees).

    ``scratch_budget`` enables the bounded-scratch extension: evicted
    copies are routed through up to that many bytes of device scratch as
    spill/fill pairs (costing only codewords) instead of being inlined
    as adds (costing their whole data).  Budget is assigned to the
    largest evictions first; the rest fall back to adds.  ``0`` is the
    paper's pure no-scratch algorithm.

    Returns the new script (spills first, copies in conflict-free order,
    then fills and adds) and a :class:`ConversionReport`.  Raises
    :class:`ReproError` when a copy-to-add eviction is needed but
    ``reference`` was not provided (spill/fill needs no reference data).
    """
    if scratch_budget < 0:
        raise ValueError("scratch_budget must be non-negative, got %d" % scratch_budget)
    started = time.perf_counter()

    # Step 1: partition into copies and adds.
    adds: List[AddCommand] = [c for c in script.commands if isinstance(c, AddCommand)]

    # Steps 2-3: sort copies by write offset and build the conflict digraph.
    graph = build_crwi_digraph(script)

    # Step 4: topological sort with cycle breaking.
    sort = _resolve_evictions(graph, policy, offset_encoding_size, ordering)

    # Steps 4-6 (continued): shared emission stage.
    policy_name = policy if isinstance(policy, str) else getattr(policy, "name", "custom")
    return assemble_in_place(
        graph,
        sort,
        adds,
        reference,
        policy_name=policy_name,
        version_length=script.version_length,
        offset_encoding_size=offset_encoding_size,
        scratch_budget=scratch_budget,
        started=started,
    )


def compare_policies(
    script: DeltaScript,
    reference: Optional[Union[bytes, bytearray, memoryview]] = None,
    policies: Sequence[Union[str, CyclePolicy]] = ("constant", "local-min"),
    *,
    offset_encoding_size: int = 4,
) -> List[InPlaceResult]:
    """Convert ``script`` once per policy; used by the policy benches."""
    return [
        make_in_place(
            script,
            reference,
            policy=p,
            offset_encoding_size=offset_encoding_size,
        )
        for p in policies
    ]
