"""The in-place conversion algorithm (paper, section 4).

:func:`make_in_place` rewrites an arbitrary delta script into an
equivalent script that reconstructs the version *in the storage the
reference occupies*, following the paper's three techniques:

1. all add commands move to the end of the script (adds never read the
   reference, so they cannot be corrupted — only corrupting);
2. copy commands are permuted into an order with no write-before-read
   conflict, found by topologically sorting the CRWI digraph;
3. copies trapped in digraph cycles are *evicted* — re-encoded as add
   commands carrying the copied bytes, at a compression cost the
   cycle-breaking policy tries to minimize.

The converter needs the reference bytes only to materialize evicted
copies; when a script converts without evictions, ``reference`` may be
``None``.  The output always satisfies Equation 2 (checked by the tests
via :mod:`repro.core.verify` and executed by the strict in-place
applier).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from .. import perf
from ..exceptions import ReproError
from .commands import (
    AddCommand,
    Command,
    CopyCommand,
    DeltaScript,
    FillCommand,
    SpillCommand,
)
from .crwi import CRWIDigraph, OffsetPricing, build_crwi_digraph, field_width
from .policies import (
    CyclePolicy,
    exact_minimum_evictions,
    greedy_evictions,
    make_policy,
)
from .toposort import (
    ToposortResult,
    cycle_breaking_toposort,
    locality_toposort,
    plain_toposort,
)

#: Policies resolved per-cycle inside the topological sort.
PER_CYCLE_POLICIES = ("constant", "local-min", "max-out-degree")
#: Strategies that pick the whole eviction set before sorting.
WHOLE_GRAPH_POLICIES = ("optimal", "greedy-global")
#: Valid topological orderings of the surviving copies.
ORDERINGS = ("dfs", "locality")


@dataclass
class ConversionReport:
    """Accounting for one in-place conversion.

    The benches aggregate these to rebuild Table 1 (compression loss
    decomposition) and the section 7 runtime and policy comparisons.
    """

    policy: str
    copies_in: int = 0
    adds_in: int = 0
    evicted_count: int = 0
    #: Literal bytes the evicted copies now carry in the delta.
    evicted_bytes: int = 0
    #: Compression cost of the evictions.  Under the legacy fixed-width
    #: model (``offset_encoding_size`` an int) this is the paper's sum of
    #: ``max(1, l - |f|)`` over copy-to-add conversions plus a fixed
    #: codeword overhead per spill.  When a per-offset size function is
    #: supplied (varint pricing) it is instead the *exact* growth of the
    #: encoded delta: ``encoded_size(converted) - encoded_size(input)``
    #: in the matching in-place wire format.
    eviction_cost: int = 0
    #: Evictions rescued by the scratch buffer (spill/fill pairs).
    spilled_count: int = 0
    #: Bytes routed through the scratch buffer instead of the delta file.
    spilled_bytes: int = 0
    #: Scratch bytes the output script requires at apply time.
    scratch_used: int = 0
    crwi_vertices: int = 0
    crwi_edges: int = 0
    cycles_found: int = 0
    total_cycle_length: int = 0
    revisits: int = 0
    #: Vertices the acyclic peel ordered without touching the scalar DFS.
    peeled: int = 0
    #: Wall-clock seconds spent converting (digraph + sort + emit).
    seconds: float = 0.0

    @property
    def copies_out(self) -> int:
        """Copy commands surviving into the in-place script."""
        return self.copies_in - self.evicted_count

    @property
    def adds_out(self) -> int:
        """Add commands in the in-place script (originals + evictions)."""
        return self.adds_in + self.evicted_count


@dataclass
class InPlaceResult:
    """An in-place reconstructible script plus its conversion report."""

    script: DeltaScript
    report: ConversionReport


def _resolve_evictions(
    graph: CRWIDigraph,
    policy: Union[str, CyclePolicy],
    offset_encoding_size: OffsetPricing,
    ordering: str = "dfs",
) -> ToposortResult:
    """Run the sort/eviction stage under the named or given policy.

    ``ordering="locality"`` re-sorts the surviving copies with the
    write-order-preferring Kahn pass (same eviction set, an order that
    minimizes jumps across the version file — cheaper on erase-block
    flash).  An unknown ``ordering`` is rejected before any sort or
    eviction work runs.
    """
    if ordering not in ORDERINGS:
        raise ValueError(
            "unknown ordering %r; use %s"
            % (ordering, " or ".join("'%s'" % o for o in ORDERINGS))
        )
    costs = graph.costs(offset_encoding_size)
    if isinstance(policy, str) and policy in WHOLE_GRAPH_POLICIES:
        if policy == "optimal":
            evicted = exact_minimum_evictions(graph, costs)
        else:
            evicted = greedy_evictions(graph, costs)
        result = ToposortResult(order=[], evicted=list(evicted))
        if ordering != "locality":
            result.order = plain_toposort(graph, excluding=evicted)
    else:
        cycle_policy = make_policy(policy, graph) if isinstance(policy, str) else policy
        result = cycle_breaking_toposort(graph, cycle_policy, costs)
    if ordering == "locality":
        result.order = locality_toposort(graph, excluding=result.evicted)
    return result


def _exact_eviction_growth(cmd: CopyCommand, pricing: OffsetPricing,
                           max_add_chunk: int) -> int:
    """Encoded-size growth of re-coding copy ``cmd`` as add commands.

    Mirrors the wire format's codeword arithmetic
    (:func:`repro.delta.encode.encoded_size`): the copy codeword
    ``op|f|t|l`` disappears, replaced by one add codeword
    ``op|t|len-byte|data`` per ``max_add_chunk`` bytes of copied data.
    """
    copy_size = 1 + field_width(pricing, cmd.src) \
        + field_width(pricing, cmd.dst) + field_width(pricing, cmd.length)
    add_size = 0
    done = 0
    while done < cmd.length:
        step = min(max_add_chunk, cmd.length - done)
        add_size += 2 + field_width(pricing, cmd.dst + done) + step
        done += step
    return add_size - copy_size


def assemble_in_place(
    graph: CRWIDigraph,
    sort: ToposortResult,
    adds: List[AddCommand],
    reference: Optional[Union[bytes, bytearray, memoryview]],
    *,
    policy_name: str,
    version_length: int,
    offset_encoding_size: OffsetPricing = 4,
    scratch_budget: int = 0,
    started: Optional[float] = None,
) -> InPlaceResult:
    """Shared emission stage: evictions -> spills/adds, final command layout.

    Used by both the post-processing path (:func:`make_in_place`) and
    the integrated generator
    (:class:`repro.core.integrated.InPlaceDeltaBuilder`), so the two
    pipelines produce identical scripts and reports by construction.
    """
    if started is None:
        started = time.perf_counter()
    exact_pricing = callable(offset_encoding_size)
    if exact_pricing:
        # Deferred import: repro.delta depends on repro.core, so the
        # wire-format constants cannot be imported at module load.
        from ..delta.encode import MAX_ADD_CHUNK
        from ..delta.varint import varint_size
    report = ConversionReport(
        policy=policy_name,
        copies_in=graph.vertex_count,
        adds_in=len(adds),
        crwi_vertices=graph.vertex_count,
        crwi_edges=graph.edge_count,
        cycles_found=sort.cycles_found,
        total_cycle_length=sort.total_cycle_length,
        revisits=sort.revisits,
        peeled=sort.peeled,
    )

    # Evicted copies become spill/fill pairs while scratch lasts (largest
    # first — each spilled byte is a byte the delta file does not carry),
    # then adds.
    spills: List[SpillCommand] = []
    fills: List[FillCommand] = []
    converted: List[AddCommand] = []
    scratch_cursor = 0
    # Legacy model: a spill/fill pair replaces one copy codeword with
    # two, each with an extra scratch-offset field.
    if not exact_pricing:
        spill_overhead = 2 + 3 * offset_encoding_size
    for v in sorted(sort.evicted, key=lambda v: -graph.vertices[v].length):
        cmd = graph.vertices[v]
        report.evicted_count += 1
        report.evicted_bytes += cmd.length
        if scratch_cursor + cmd.length <= scratch_budget:
            spills.append(SpillCommand(cmd.src, scratch_cursor, cmd.length))
            fills.append(FillCommand(scratch_cursor, cmd.dst, cmd.length))
            if exact_pricing:
                # spill + fill codewords minus the removed copy codeword:
                # one extra opcode, the scratch offset twice, the length
                # once (src and dst fields cancel out).
                report.eviction_cost += 1 \
                    + 2 * field_width(offset_encoding_size, scratch_cursor) \
                    + field_width(offset_encoding_size, cmd.length)
            else:
                report.eviction_cost += spill_overhead
            scratch_cursor += cmd.length
            report.spilled_count += 1
            report.spilled_bytes += cmd.length
        else:
            if reference is None:
                raise ReproError(
                    "conversion requires a copy-to-add eviction (%d bytes, "
                    "scratch exhausted) but no reference bytes were provided"
                    % cmd.length
                )
            converted.append(cmd.to_add(reference))
            if exact_pricing:
                report.eviction_cost += _exact_eviction_growth(
                    cmd, offset_encoding_size, MAX_ADD_CHUNK
                )
            else:
                report.eviction_cost += max(1, cmd.length - offset_encoding_size)
    report.scratch_used = scratch_cursor
    if exact_pricing and scratch_cursor > 0:
        # The header's scratch-length field (a varint in every wire
        # format) grows from encoding 0 to encoding the used budget.
        report.eviction_cost += varint_size(scratch_cursor) - 1

    # Spills first (reads only — always safe up front), surviving copies
    # in topological order, then fills and adds.
    commands: List[Command] = list(spills)
    commands.extend(graph.vertices[v] for v in sort.order)
    commands.extend(sorted(fills + adds + converted, key=lambda a: a.dst))
    out = DeltaScript(commands, version_length)
    report.seconds = time.perf_counter() - started
    recorder = perf.active()
    if recorder is not None:
        recorder.merge({
            "convert.calls": 1,
            "convert.seconds": report.seconds,
            "convert.copies_in": report.copies_in,
            "convert.edges": report.crwi_edges,
            "convert.evictions": report.evicted_count,
            "convert.eviction_bytes": report.evicted_bytes,
            "convert.cycles_found": report.cycles_found,
            "convert.peeled": report.peeled,
        })
    return InPlaceResult(out, report)


def make_in_place(
    script: DeltaScript,
    reference: Optional[Union[bytes, bytearray, memoryview]] = None,
    *,
    policy: Union[str, CyclePolicy] = "local-min",
    offset_encoding_size: OffsetPricing = 4,
    scratch_budget: int = 0,
    ordering: str = "dfs",
) -> InPlaceResult:
    """Post-process ``script`` into an in-place reconstructible script.

    ``policy`` selects the cycle-breaking strategy: ``"constant"`` and
    ``"local-min"`` are the paper's per-cycle policies; ``"optimal"``
    (exact, small inputs only) and ``"greedy-global"`` choose the whole
    eviction set up front; any :class:`CyclePolicy` instance is used
    per-cycle.  ``offset_encoding_size`` is ``|f|`` in the cost model —
    the encoded size of the ``from`` field an eviction saves.  An int
    keeps the paper's fixed-width model; pass a per-offset size function
    (``repro.delta.varint.varint_size`` for the default varint wire
    format, ``lambda _: 4`` for the fixed format) to price evictions by
    their true codeword widths, in which case the reported
    ``eviction_cost`` equals the exact encoded-size growth of the
    conversion in the matching in-place format.

    ``ordering`` selects among valid topological orders: ``"dfs"`` (the
    sort's natural reverse postorder) or ``"locality"`` (stay as close to
    write order as the conflict edges allow — fewer erase cycles on
    block-managed flash, same safety guarantees).

    ``scratch_budget`` enables the bounded-scratch extension: evicted
    copies are routed through up to that many bytes of device scratch as
    spill/fill pairs (costing only codewords) instead of being inlined
    as adds (costing their whole data).  Budget is assigned to the
    largest evictions first; the rest fall back to adds.  ``0`` is the
    paper's pure no-scratch algorithm.

    Returns the new script (spills first, copies in conflict-free order,
    then fills and adds) and a :class:`ConversionReport`.  Raises
    :class:`ReproError` when a copy-to-add eviction is needed but
    ``reference`` was not provided (spill/fill needs no reference data).
    """
    if scratch_budget < 0:
        raise ValueError("scratch_budget must be non-negative, got %d" % scratch_budget)
    started = time.perf_counter()

    # Step 1: partition into copies and adds.
    adds: List[AddCommand] = [c for c in script.commands if isinstance(c, AddCommand)]

    # Steps 2-3: sort copies by write offset and build the conflict digraph.
    graph = build_crwi_digraph(script)

    # Step 4: topological sort with cycle breaking.
    sort = _resolve_evictions(graph, policy, offset_encoding_size, ordering)

    # Steps 4-6 (continued): shared emission stage.
    policy_name = policy if isinstance(policy, str) else getattr(policy, "name", "custom")
    return assemble_in_place(
        graph,
        sort,
        adds,
        reference,
        policy_name=policy_name,
        version_length=script.version_length,
        offset_encoding_size=offset_encoding_size,
        scratch_budget=scratch_budget,
        started=started,
    )


def compare_policies(
    script: DeltaScript,
    reference: Optional[Union[bytes, bytearray, memoryview]] = None,
    policies: Sequence[Union[str, CyclePolicy]] = ("constant", "local-min"),
    *,
    offset_encoding_size: OffsetPricing = 4,
) -> List[InPlaceResult]:
    """Convert ``script`` once per policy; used by the policy benches."""
    return [
        make_in_place(
            script,
            reference,
            policy=p,
            offset_encoding_size=offset_encoding_size,
        )
        for p in policies
    ]
