"""Integrated in-place delta generation (paper, section 4).

    "While our algorithm can most easily be described as a post-processing
    step on an existing delta file, as done in this work, it also
    integrates easily into a compression algorithm so that an in-place
    reconstructible file may be output directly."

This module is that integration.  :class:`InPlaceDeltaBuilder` sits
where a differencing algorithm's output stage would: the scan feeds it
copies and adds *in write order* (which every left-to-right scan
produces naturally), and it assembles the CRWI digraph directly from the
already-sorted command stream — no re-partitioning, no re-sorting, no
intermediate sequential script.  ``finish()`` runs the cycle-breaking
topological sort and emits the in-place script.

:func:`diff_in_place_integrated` wires any registered differencing
algorithm through the builder and returns the same
:class:`~repro.core.convert.InPlaceResult` the post-processing path
produces — the tests pin the two paths to identical output, which is
the paper's claim made executable.
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

from .commands import AddCommand, Command, CopyCommand
from .convert import InPlaceResult, _resolve_evictions, assemble_in_place
from .crwi import CRWIDigraph, OffsetPricing, _build_from_sorted

Buffer = Union[bytes, bytearray, memoryview]


class InPlaceDeltaBuilder:
    """Accumulates write-ordered commands and emits an in-place script.

    Feed commands via :meth:`add_copy` / :meth:`add_literal` strictly in
    increasing write-offset order (the order any scanning differencing
    algorithm emits them).  Copies become CRWI vertices immediately;
    edges are resolved lazily in :meth:`finish` with one binary-search
    pass over the (already sorted) write intervals, so the builder adds
    ``O(|C| log |C| + |E|)`` on top of the scan — the same bound as the
    post-processor, minus its partition and sort.
    """

    def __init__(self) -> None:
        self._copies: List[CopyCommand] = []
        self._adds: List[AddCommand] = []
        self._write_cursor = 0

    def _check_order(self, start: int, what: str) -> None:
        if start < self._write_cursor:
            raise ValueError(
                "%s at version offset %d arrived out of write order "
                "(cursor already at %d)" % (what, start, self._write_cursor)
            )

    def add_copy(self, src: int, dst: int, length: int) -> None:
        """Record a copy command; ``dst`` must not precede earlier writes."""
        self._check_order(dst, "copy")
        self._copies.append(CopyCommand(src, dst, length))
        self._write_cursor = dst + length

    def add_literal(self, dst: int, data: bytes) -> None:
        """Record an add command; ``dst`` must not precede earlier writes."""
        self._check_order(dst, "add")
        self._adds.append(AddCommand(dst, data))
        self._write_cursor = dst + len(data)

    def feed(self, command: Command) -> None:
        """Record an already-built command (adapter for ScriptBuilder output)."""
        if isinstance(command, CopyCommand):
            self.add_copy(command.src, command.dst, command.length)
        elif isinstance(command, AddCommand):
            self.add_literal(command.dst, command.data)
        else:
            raise TypeError("builder accepts copy/add commands, got %r" % (command,))

    @property
    def version_length(self) -> int:
        """Version bytes covered so far."""
        return self._write_cursor

    def _build_graph(self) -> CRWIDigraph:
        """CRWI digraph over the fed copies, exploiting their sortedness.

        The feed-order check guarantees the copies arrive sorted by
        write offset with disjoint write intervals, so this routes
        through the same sorted-input constructor as
        :func:`repro.core.crwi.build_crwi_digraph` (vectorized CSR
        kernels when the fast paths are on, the scalar binary-search
        loop otherwise) — the two pipelines share one edge builder by
        construction.
        """
        return _build_from_sorted(list(self._copies))

    def finish(
        self,
        reference: Optional[Buffer] = None,
        *,
        policy: str = "local-min",
        offset_encoding_size: OffsetPricing = 4,
        scratch_budget: int = 0,
        ordering: str = "dfs",
    ) -> InPlaceResult:
        """Sort, break cycles, and emit the in-place script.

        Semantics and report fields match
        :func:`repro.core.convert.make_in_place` exactly, including the
        ``ordering`` choice (``"dfs"`` or ``"locality"``) and the
        int-or-callable ``offset_encoding_size`` pricing model.
        """
        if scratch_budget < 0:
            raise ValueError(
                "scratch_budget must be non-negative, got %d" % scratch_budget
            )
        started = time.perf_counter()
        graph = self._build_graph()
        sort = _resolve_evictions(graph, policy, offset_encoding_size, ordering)
        policy_name = policy if isinstance(policy, str) else getattr(policy, "name", "custom")
        return assemble_in_place(
            graph,
            sort,
            list(self._adds),
            reference,
            policy_name=policy_name,
            version_length=self._write_cursor,
            offset_encoding_size=offset_encoding_size,
            scratch_budget=scratch_budget,
            started=started,
        )


def diff_in_place_integrated(
    reference: Buffer,
    version: Buffer,
    *,
    algorithm: str = "correcting",
    policy: str = "local-min",
    scratch_budget: int = 0,
    ordering: str = "dfs",
    offset_encoding_size: OffsetPricing = 4,
    **kwargs,
) -> InPlaceResult:
    """Generate an in-place reconstructible delta directly.

    Runs the chosen differencing algorithm and pipes its command stream
    through :class:`InPlaceDeltaBuilder`, producing the in-place script
    without materializing a conventional delta first.  Output is
    byte-identical to ``make_in_place(diff(...), ...)``.
    """
    from ..delta import ALGORITHMS

    try:
        engine = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            "unknown algorithm %r; choose from %s"
            % (algorithm, ", ".join(sorted(ALGORITHMS)))
        ) from None
    builder = InPlaceDeltaBuilder()
    for command in engine(reference, version, **kwargs).commands:
        builder.feed(command)
    return builder.finish(
        reference, policy=policy, scratch_budget=scratch_budget,
        ordering=ordering, offset_encoding_size=offset_encoding_size,
    )
