"""Topological sort with on-line cycle detection and breaking.

Step 4 of the paper's algorithm: order the CRWI digraph's vertices so
every conflict edge ``u -> v`` places ``u`` before ``v``; whenever the
sort discovers a cycle, hand it to a
:class:`~repro.core.policies.CyclePolicy`, evict the chosen vertex (its
copy command will be re-encoded as an add), and carry on.  The output is
a total topological order of the surviving vertices plus the eviction
set.

The sorter is an iterative depth-first search producing reverse
postorder.  A back edge to a gray vertex exposes a cycle as the gray-path
segment from that vertex to the top of the stack:

* when the policy evicts the top-of-stack vertex (always the case for the
  constant-time policy) the sort simply abandons that vertex — O(1);
* when it evicts a vertex deeper in the gray path (possible under
  locally-minimum), the stack is unwound to the victim and the popped
  descendants are reset to white for re-exploration — the extra work the
  paper attributes to the locally-minimum policy.

Reset vertices are queued for retry so none is lost when its outer-loop
root index has already passed.  The tests verify both that the final
order respects every surviving edge and that the evicted set is a
feedback vertex set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..exceptions import CycleBreakError
from .crwi import CRWIDigraph
from .policies import CyclePolicy

_WHITE, _GRAY, _BLACK = 0, 1, 2


@dataclass
class ToposortResult:
    """Outcome of one cycle-breaking topological sort.

    ``order`` lists surviving vertex ids in a topological order of the
    residual digraph; ``evicted`` lists evicted vertex ids in the order
    the policy removed them.  The counters feed the benches: the paper's
    runtime discussion keys on how many cycles were found and how long
    the walked cycles were.
    """

    order: List[int] = field(default_factory=list)
    evicted: List[int] = field(default_factory=list)
    cycles_found: int = 0
    total_cycle_length: int = 0
    revisits: int = 0


def cycle_breaking_toposort(
    graph: CRWIDigraph,
    policy: CyclePolicy,
    costs: Optional[Sequence[int]] = None,
) -> ToposortResult:
    """Topologically sort ``graph``, evicting vertices to break cycles.

    ``costs`` (per-vertex eviction costs) defaults to
    :meth:`CRWIDigraph.costs`; it is consulted only by cost-aware
    policies.
    """
    n = graph.vertex_count
    if costs is None:
        costs = graph.costs()
    color = [_WHITE] * n
    is_evicted = [False] * n
    pos_in_path = [-1] * n
    path: List[int] = []
    postorder: List[int] = []
    result = ToposortResult()

    def run_dfs(root: int) -> None:
        color[root] = _GRAY
        pos_in_path[root] = len(path)
        path.append(root)
        stack: List[List[int]] = [[root, 0]]
        while stack:
            u, edge_pos = stack[-1]
            adj = graph.successors[u]
            moved = False
            while edge_pos < len(adj):
                v = adj[edge_pos]
                edge_pos += 1
                stack[-1][1] = edge_pos
                if is_evicted[v] or color[v] == _BLACK:
                    continue
                if color[v] == _WHITE:
                    color[v] = _GRAY
                    pos_in_path[v] = len(path)
                    path.append(v)
                    stack.append([v, 0])
                    moved = True
                    break
                # Back edge u -> v with v gray: the cycle is the gray path
                # from v through u.
                cycle = path[pos_in_path[v]:]
                victim = policy.choose(cycle, costs)
                if not (0 <= victim < n and color[victim] == _GRAY
                        and pos_in_path[victim] >= pos_in_path[v]):
                    raise CycleBreakError(
                        "policy %r chose vertex %d outside the cycle"
                        % (getattr(policy, "name", policy), victim)
                    )
                result.cycles_found += 1
                result.total_cycle_length += len(cycle)
                is_evicted[victim] = True
                result.evicted.append(victim)
                # Unwind the stack to the victim; descendants of the victim
                # return to white and are re-explored later.
                while True:
                    w = stack.pop()[0]
                    path.pop()
                    pos_in_path[w] = -1
                    if w == victim:
                        break
                    color[w] = _WHITE
                    retry.append(w)
                    result.revisits += 1
                moved = True
                break
            if not moved:
                # All edges of u examined: u is finished.
                stack.pop()
                path.pop()
                pos_in_path[u] = -1
                color[u] = _BLACK
                postorder.append(u)

    retry: List[int] = []
    for root in range(n):
        if color[root] == _WHITE and not is_evicted[root]:
            run_dfs(root)
    while retry:
        root = retry.pop()
        if color[root] == _WHITE and not is_evicted[root]:
            run_dfs(root)

    result.order = list(reversed(postorder))
    return result


def plain_toposort(graph: CRWIDigraph, excluding: Sequence[int] = ()) -> List[int]:
    """Topological order of ``graph`` minus ``excluding``; raises on cycles.

    Kahn's algorithm.  Used after a whole-graph eviction solver has
    already made the digraph acyclic, and by tests as an independent
    check on the DFS sorter.
    """
    dead = set(excluding)
    indegree = [0] * graph.vertex_count
    for u in range(graph.vertex_count):
        if u in dead:
            continue
        for v in graph.successors[u]:
            if v not in dead:
                indegree[v] += 1
    frontier = [v for v in range(graph.vertex_count) if v not in dead and indegree[v] == 0]
    order: List[int] = []
    while frontier:
        u = frontier.pop()
        order.append(u)
        for v in graph.successors[u]:
            if v in dead:
                continue
            indegree[v] -= 1
            if indegree[v] == 0:
                frontier.append(v)
    if len(order) != graph.vertex_count - len(dead):
        raise CycleBreakError(
            "digraph still contains a cycle after removing %d vertices" % len(dead)
        )
    return order


def locality_toposort(graph: CRWIDigraph, excluding: Sequence[int] = ()) -> List[int]:
    """Topological order minimizing jumps across the version file.

    Kahn's algorithm with a *nearest-neighbor* frontier: at every step
    the available vertex whose id (= write-offset rank) is closest to
    the one just emitted is taken, so the write head moves as little as
    the conflict edges allow.  Plain ascending order is the wrong
    heuristic here — content shifted toward higher offsets forces
    *descending* application within its run, and an ascending frontier
    thrashes between such runs.  Measurements (`bench_flash_wear`)
    show the remaining orders differ only marginally once trailing adds
    are accounted for; this is the principled choice among them.

    Raises on residual cycles; run an eviction stage first.
    """
    from bisect import bisect_left, insort

    dead = set(excluding)
    indegree = [0] * graph.vertex_count
    for u in range(graph.vertex_count):
        if u in dead:
            continue
        for v in graph.successors[u]:
            if v not in dead:
                indegree[v] += 1
    frontier: List[int] = sorted(
        v for v in range(graph.vertex_count) if v not in dead and indegree[v] == 0
    )
    order: List[int] = []
    cursor = 0
    while frontier:
        i = bisect_left(frontier, cursor)
        candidates = [c for c in (i - 1, i) if 0 <= c < len(frontier)]
        pick = min(candidates, key=lambda c: abs(frontier[c] - cursor))
        u = frontier.pop(pick)
        order.append(u)
        cursor = u
        for v in graph.successors[u]:
            if v in dead:
                continue
            indegree[v] -= 1
            if indegree[v] == 0:
                insort(frontier, v)
    if len(order) != graph.vertex_count - len(dead):
        raise CycleBreakError(
            "digraph still contains a cycle after removing %d vertices" % len(dead)
        )
    return order


def order_respects_edges(graph: CRWIDigraph, result: ToposortResult) -> bool:
    """True when ``result.order`` places u before v for every surviving edge u->v."""
    position = {v: i for i, v in enumerate(result.order)}
    dead = set(result.evicted)
    for u in range(graph.vertex_count):
        if u in dead:
            continue
        for v in graph.successors[u]:
            if v in dead:
                continue
            if position[u] >= position[v]:
                return False
    return True
