"""Topological sort with on-line cycle detection and breaking.

Step 4 of the paper's algorithm: order the CRWI digraph's vertices so
every conflict edge ``u -> v`` places ``u`` before ``v``; whenever the
sort discovers a cycle, hand it to a
:class:`~repro.core.policies.CyclePolicy`, evict the chosen vertex (its
copy command will be re-encoded as an add), and carry on.  The output is
a total topological order of the surviving vertices plus the eviction
set.

The sort runs in two stages:

1. **Acyclic peel.**  A forward Kahn pass strips vertices whose
   ancestors contain no cycle (layered indegree-zero waves, ascending
   within each wave), and a mirrored reverse pass strips vertices whose
   descendants contain no cycle (outdegree-zero waves).  On an acyclic
   digraph this *is* the whole sort — an array-native frontier-batched
   peel when the fast paths are on (:mod:`repro.core._kernels`), a
   scalar reference loop with identical wave order otherwise.  Real
   delta scripts put only a few percent of their copies on cycles, so
   the scalar stage that follows touches a small residual core.

2. **Gray-path DFS on the cyclic core.**  The remaining vertices — each
   with a cycle among both its ancestors and its descendants — go
   through the iterative depth-first search producing reverse postorder.
   A back edge to a gray vertex exposes a cycle as the gray-path segment
   from that vertex to the top of the stack:

   * when the policy evicts the top-of-stack vertex (always the case for
     the constant-time policy) the sort simply abandons that vertex — O(1);
   * when it evicts a vertex deeper in the gray path (possible under
     locally-minimum), the stack is unwound to the victim and the popped
     descendants are reset to white for re-exploration — the extra work
     the paper attributes to the locally-minimum policy.

   Reset vertices are queued for retry so none is lost when its
   outer-loop root index has already passed.

The final order is ``forward waves + core reverse postorder + reverse
waves (wave order flipped)``; no edge can point from a later stage into
an earlier one, so the composition is a topological order of the
survivors.  The tests verify both that the final order respects every
surviving edge and that the evicted set is a feedback vertex set; the
fast and scalar peels are pinned bit-identical by
``tests/test_vectorized_oracle.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .. import perf
from ..exceptions import CycleBreakError
from . import _kernels as _k
from .crwi import CRWIDigraph
from .policies import CyclePolicy

_WHITE, _GRAY, _BLACK = 0, 1, 2


@dataclass
class ToposortResult:
    """Outcome of one cycle-breaking topological sort.

    ``order`` lists surviving vertex ids in a topological order of the
    residual digraph; ``evicted`` lists evicted vertex ids in the order
    the policy removed them.  The counters feed the benches: the paper's
    runtime discussion keys on how many cycles were found and how long
    the walked cycles were.  ``peeled`` counts the vertices the acyclic
    peel kept away from the DFS.
    """

    order: List[int] = field(default_factory=list)
    evicted: List[int] = field(default_factory=list)
    cycles_found: int = 0
    total_cycle_length: int = 0
    revisits: int = 0
    peeled: int = 0


def _peel_reference(graph: CRWIDigraph) -> Tuple[List[int], List[int], List[int]]:
    """Scalar acyclic peel; the oracle for :func:`_kernels.toposort_peel`.

    Returns ``(prefix, core, suffix)``: the forward-wave order, the
    cyclic core (ascending), and the suffix order (reverse waves,
    flipped wave-by-wave, ascending within each wave).
    """
    n = graph.vertex_count
    flat, bounds = graph.flat_successors()
    pred_row = graph.pred_row_reader()
    active = [True] * n

    # A degree counter hits zero exactly once, so the candidate buffers
    # cannot collect duplicates and plain lists beat sets here.
    indeg = graph.indegrees()
    prefix: List[int] = []
    frontier = [v for v in range(n) if indeg[v] == 0]
    while frontier:
        prefix.extend(frontier)
        for u in frontier:
            active[u] = False
        cand: List[int] = []
        for u in frontier:
            for v in flat[bounds[u]:bounds[u + 1]]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    cand.append(v)
        frontier = sorted(v for v in cand if active[v])

    outdeg = graph.outdegrees()
    waves: List[List[int]] = []
    frontier = [v for v in range(n) if active[v] and outdeg[v] == 0]
    while frontier:
        waves.append(frontier)
        for u in frontier:
            active[u] = False
        cand = []
        for u in frontier:
            for p in pred_row(u):
                outdeg[p] -= 1
                if outdeg[p] == 0:
                    cand.append(p)
        frontier = sorted(p for p in cand if active[p])

    suffix = [v for wave in reversed(waves) for v in wave]
    core = [v for v in range(n) if active[v]]
    return prefix, core, suffix


def _peel(graph: CRWIDigraph) -> Tuple[List[int], List[int], List[int], bool]:
    """Dispatch the acyclic peel to the array kernel or the scalar oracle.

    The kernel only pays off on graphs big enough to peel in wide waves
    (``ARRAY_PEEL_MIN``), and above the gate it is adaptive: the flat
    row readers let it hand narrow-wave fringes back to the scalar
    loop (``NARROW_WAVE``).  Both spellings produce the same waves, so
    the dispatch never changes the order.
    """
    if _k.fast_enabled() and graph.vertex_count >= _k.ARRAY_PEEL_MIN:
        csr = graph.csr()
        pred = graph.pred_csr()
        if csr is not None and pred is not None:
            flat, bounds = graph.flat_successors()
            # The reverse fallback touches only its tail waves' rows, so
            # slicing the CSR transpose per row beats a bulk ``tolist``.
            prefix, core, suffix = _k.toposort_peel(
                csr[0], csr[1], pred[0], pred[1],
                lambda u: flat[bounds[u]:bounds[u + 1]],
                lambda u: pred[1][pred[0][u]:pred[0][u + 1]])
            return prefix.tolist(), core.tolist(), suffix.tolist(), True
    prefix, core, suffix = _peel_reference(graph)
    return prefix, core, suffix, False


def cycle_breaking_toposort(
    graph: CRWIDigraph,
    policy: CyclePolicy,
    costs: Optional[Sequence[int]] = None,
) -> ToposortResult:
    """Topologically sort ``graph``, evicting vertices to break cycles.

    ``costs`` (per-vertex eviction costs) defaults to
    :meth:`CRWIDigraph.costs`; it is consulted only by cost-aware
    policies.
    """
    started = time.perf_counter()
    n = graph.vertex_count
    if costs is None:
        costs = graph.costs()
    result = ToposortResult()

    prefix, core, suffix, used_fast = _peel(graph)
    result.peeled = len(prefix) + len(suffix)
    if not core:
        result.order = prefix + suffix
        _record_sort(started, result, used_fast)
        return result

    # Gray-path DFS over the cyclic core only; everything peeled is
    # finished (black) from the start and never re-entered.
    color = [_BLACK] * n
    for v in core:
        color[v] = _WHITE
    is_evicted = [False] * n
    pos_in_path = [-1] * n
    path: List[int] = []
    postorder: List[int] = []
    retry: List[int] = []
    # Bound once: the flat adjacency (two tolist calls on a kernel-built
    # graph, a pure-Python flatten otherwise) replaces per-vertex list
    # lookups in the edge loop with flat-array scans.
    flat, bounds = graph.flat_successors()

    def drive(color_=color, pos_=pos_in_path, path_=path, flat_=flat,
              bounds_=bounds, evicted_=is_evicted, post_=postorder) -> None:
        # One invocation sorts every root: the default arguments alias
        # the shared state once at definition time (locals in the hot
        # loop, not closure cells), and root selection is folded into
        # the traversal machine so no per-root call overhead remains.
        # The current vertex and its absolute scan window into the flat
        # adjacency live in plain locals; ``saved[i]`` holds the resume
        # position of ``path_[i]`` for every non-top path vertex — no
        # per-vertex frame objects.
        saved: List[int] = []
        core_iter = iter(core)
        while True:
            # Pick the next root: every core vertex in ascending order,
            # then the eviction-reset vertices LIFO.
            root = -1
            for r in core_iter:
                if color_[r] == _WHITE and not evicted_[r]:
                    root = r
                    break
            if root < 0:
                while retry:
                    r = retry.pop()
                    if color_[r] == _WHITE and not evicted_[r]:
                        root = r
                        break
                if root < 0:
                    return
            u = root
            color_[u] = _GRAY
            pos_[u] = 0
            path_.append(u)
            edge_pos = bounds_[u]
            end = bounds_[u + 1]
            while True:
                moved = False
                while edge_pos < end:
                    v = flat_[edge_pos]
                    edge_pos += 1
                    if evicted_[v] or color_[v] == _BLACK:
                        continue
                    if color_[v] == _WHITE:
                        saved.append(edge_pos)
                        color_[v] = _GRAY
                        pos_[v] = len(path_)
                        path_.append(v)
                        u = v
                        edge_pos = bounds_[u]
                        end = bounds_[u + 1]
                        moved = True
                        break
                    # Back edge u -> v with v gray: the cycle is the gray
                    # path from v through u.
                    cycle = path_[pos_[v]:]
                    victim = policy.choose(cycle, costs)
                    if not (0 <= victim < n and color_[victim] == _GRAY
                            and pos_[victim] >= pos_[v]):
                        raise CycleBreakError(
                            "policy %r chose vertex %d outside the cycle"
                            % (getattr(policy, "name", policy), victim)
                        )
                    result.cycles_found += 1
                    result.total_cycle_length += len(cycle)
                    evicted_[victim] = True
                    result.evicted.append(victim)
                    # Unwind to the victim; the popped descendants return
                    # to white and are re-explored later.  Only pop counts
                    # matter for ``saved`` — the entries themselves are
                    # stale.
                    w = path_.pop()
                    pos_[w] = -1
                    while w != victim:
                        color_[w] = _WHITE
                        retry.append(w)
                        result.revisits += 1
                        saved.pop()
                        w = path_.pop()
                        pos_[w] = -1
                    if not path_:
                        break
                    u = path_[-1]
                    end = bounds_[u + 1]
                    edge_pos = saved.pop()
                    moved = True
                    break
                if not moved:
                    if path_:
                        # All edges of u examined: u is finished.
                        path_.pop()
                        pos_[u] = -1
                        color_[u] = _BLACK
                        post_.append(u)
                        if not path_:
                            break
                        u = path_[-1]
                        end = bounds_[u + 1]
                        edge_pos = saved.pop()
                    else:
                        # An unwind emptied the path; pick the next root.
                        break

    drive()

    result.order = prefix + list(reversed(postorder)) + suffix
    _record_sort(started, result, used_fast)
    return result


def _record_sort(started: float, result: ToposortResult, used_fast: bool) -> None:
    recorder = perf.active()
    if recorder is not None:
        recorder.merge({
            "toposort.calls": 1,
            "toposort.seconds": time.perf_counter() - started,
            "toposort.peeled": result.peeled,
            "toposort.core": (len(result.order) + len(result.evicted)
                              - result.peeled),
            "toposort.fast": 1 if used_fast else 0,
        })


def plain_toposort(graph: CRWIDigraph, excluding: Sequence[int] = ()) -> List[int]:
    """Topological order of ``graph`` minus ``excluding``; raises on cycles.

    Kahn's algorithm in layered waves (ascending within each
    indegree-zero wave) — the same order from the array kernel and the
    scalar reference.  Used after a whole-graph eviction solver has
    already made the digraph acyclic, and by tests as an independent
    check on the DFS sorter.
    """
    dead = set(excluding)
    n = graph.vertex_count
    order: Optional[List[int]] = None
    if _k.fast_enabled() and n >= _k.ARRAY_PEEL_MIN:
        csr = graph.csr()
        if csr is not None:
            np = _k.np
            dead_mask = np.zeros(n, dtype=bool)
            if dead:
                dead_mask[np.array(sorted(dead), dtype=np.int64)] = True
            waves = _k.layered_toposort(csr[0], csr[1], dead_mask)
            if waves is None:
                raise CycleBreakError(
                    "digraph still contains a cycle after removing %d vertices"
                    % len(dead)
                )
            return waves.tolist()
    # Scalar reference: identical wave order.
    succ = graph.successors
    indeg = [0] * n
    for u in range(n):
        if u in dead:
            continue
        for v in succ[u]:
            if v not in dead:
                indeg[v] += 1
    active = [v not in dead for v in range(n)]
    order = []
    frontier = [v for v in range(n) if active[v] and indeg[v] == 0]
    while frontier:
        order.extend(frontier)
        for u in frontier:
            active[u] = False
        cand = set()
        for u in frontier:
            for v in succ[u]:
                if v in dead:
                    continue
                indeg[v] -= 1
                if indeg[v] == 0:
                    cand.add(v)
        frontier = sorted(v for v in cand if active[v])
    if len(order) != n - len(dead):
        raise CycleBreakError(
            "digraph still contains a cycle after removing %d vertices" % len(dead)
        )
    return order


def locality_toposort(graph: CRWIDigraph, excluding: Sequence[int] = ()) -> List[int]:
    """Topological order minimizing jumps across the version file.

    Kahn's algorithm with a *nearest-neighbor* frontier: at every step
    the available vertex whose id (= write-offset rank) is closest to
    the one just emitted is taken, so the write head moves as little as
    the conflict edges allow.  Plain ascending order is the wrong
    heuristic here — content shifted toward higher offsets forces
    *descending* application within its run, and an ascending frontier
    thrashes between such runs.  Measurements (`bench_flash_wear`)
    show the remaining orders differ only marginally once trailing adds
    are accounted for; this is the principled choice among them.

    The emission loop is inherently sequential (each pick depends on the
    previous cursor), but the indegree initialization batches through
    the CSR kernels when the fast paths are on — the restricted
    indegrees are plain counts, so both spellings agree exactly.

    Raises on residual cycles; run an eviction stage first.
    """
    from bisect import bisect_left, insort

    dead = set(excluding)
    n = graph.vertex_count
    indegree: Optional[List[int]] = None
    if _k.fast_enabled() and n >= _k.ARRAY_SETUP_MIN:
        csr = graph.csr()
        if csr is not None:
            np = _k.np
            dead_mask = np.zeros(n, dtype=bool)
            if dead:
                dead_mask[np.array(sorted(dead), dtype=np.int64)] = True
            indegree = _k.restricted_indegrees(csr[0], csr[1], dead_mask).tolist()
    if indegree is None:
        indegree = [0] * n
        for u in range(n):
            if u in dead:
                continue
            for v in graph.successors[u]:
                if v not in dead:
                    indegree[v] += 1
    frontier: List[int] = sorted(
        v for v in range(n) if v not in dead and indegree[v] == 0
    )
    order: List[int] = []
    cursor = 0
    while frontier:
        i = bisect_left(frontier, cursor)
        candidates = [c for c in (i - 1, i) if 0 <= c < len(frontier)]
        pick = min(candidates, key=lambda c: abs(frontier[c] - cursor))
        u = frontier.pop(pick)
        order.append(u)
        cursor = u
        for v in graph.successors[u]:
            if v in dead:
                continue
            indegree[v] -= 1
            if indegree[v] == 0:
                insort(frontier, v)
    if len(order) != n - len(dead):
        raise CycleBreakError(
            "digraph still contains a cycle after removing %d vertices" % len(dead)
        )
    return order


def order_respects_edges(graph: CRWIDigraph, result: ToposortResult) -> bool:
    """True when ``result.order`` places u before v for every surviving edge u->v."""
    position = {v: i for i, v in enumerate(result.order)}
    dead = set(result.evicted)
    for u in range(graph.vertex_count):
        if u in dead:
            continue
        for v in graph.successors[u]:
            if v in dead:
                continue
            if position[u] >= position[v]:
                return False
    return True
