"""Conflicting read-write interval (CRWI) digraph construction.

Section 4.2 of the paper encodes the potential write-before-read
conflicts of a delta file in a digraph:

* one vertex per copy command, with copies sorted by increasing write
  offset (``t``);
* a directed edge ``v_i -> v_j`` whenever copy ``c_i`` *reads* from the
  interval copy ``c_j`` *writes* (``[f_i, f_i+l_i-1] ∩ [t_j, t_j+l_j-1]
  ≠ ∅``), meaning ``c_i`` must execute before ``c_j``.

Because the write intervals of a delta script are disjoint, the edge
relation is computed with one binary search per copy command over the
write intervals sorted by start offset — ``O(|C| log |C| + |E|)`` total,
the bound of section 4.3.  The class records enough bookkeeping to check
Lemma 1 (``|E| <= L_V``) empirically.

Two equivalent representations back the digraph:

* canonical python adjacency lists (``successors``/``predecessors``) —
  what tests hand-build and the policies index; and
* a CSR view (``indptr``/``indices`` flat arrays, plus the transpose)
  that the vectorized builder produces directly and the array-native
  toposort peels consume.

Whichever exists is the source of truth; the other is derived lazily.
The fast builder (:mod:`repro.core._kernels`) replaces the per-copy
``IntervalIndex.overlapping`` loop with two whole-set ``searchsorted``
passes and one ragged expansion; ``_build_reference`` keeps the scalar
loop as the oracle, and the two are pinned bit-identical by
``tests/test_vectorized_oracle.py``.

Self-edges are excluded: a copy command does not conflict with itself;
overlapping read/write intervals within one command are handled by
directional copying at apply time (section 4.1).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from .. import perf
from . import _kernels as _k
from .commands import CopyCommand, DeltaScript
from .intervals import Interval, IntervalIndex

#: The ``|f|`` term of the eviction cost model: either a fixed field
#: width in bytes (the paper's 1998 codewords) or a function mapping an
#: offset value to its encoded size (``repro.delta.varint.varint_size``
#: for the library's default varint wire format, where a near offset
#: costs 1 byte and a far one up to 5).
OffsetPricing = Union[int, Callable[[int], int]]


def field_width(pricing: OffsetPricing, value: int) -> int:
    """Encoded size of an offset/length field ``value`` under ``pricing``."""
    return pricing(value) if callable(pricing) else pricing


def _is_varint_pricing(pricing: OffsetPricing) -> bool:
    """True when ``pricing`` is the library's own ``varint_size``.

    Identity check with a deferred import (``repro.delta`` depends on
    ``repro.core``): only the known function may be batch-priced by the
    vectorized kernel — an arbitrary callable must run per-offset.
    """
    if not callable(pricing):
        return False
    from ..delta.varint import varint_size

    return pricing is varint_size


class CRWIDigraph:
    """The conflict digraph of one delta script's copy commands.

    ``vertices[i]`` is the copy command for vertex ``i``; vertices are
    numbered in increasing write-offset order, the paper's ``c_1 ... c_n``
    convention.  ``successors[i]`` lists the vertices whose write interval
    vertex ``i`` reads from (edges out of ``i``); ``predecessors`` is the
    transposed relation.

    The adjacency lists remain the canonical mutable API (tests build
    graphs by appending to them); a graph constructed by the fast
    builder starts life as CSR arrays and materializes the lists only
    when first read.  Anything that mutates the lists after construction
    must call :meth:`invalidate_caches`, which also discards the CSR
    view so it is rebuilt from the mutated lists.
    """

    def __init__(
        self,
        vertices: Optional[List[CopyCommand]] = None,
        successors: Optional[List[List[int]]] = None,
        predecessors: Optional[List[List[int]]] = None,
    ):
        self.vertices: List[CopyCommand] = vertices if vertices is not None else []
        self._successors: Optional[List[List[int]]] = (
            successors if successors is not None else [])
        self._predecessors: Optional[List[List[int]]] = (
            predecessors if predecessors is not None else [])
        # CSR views (successor orientation + transpose), int64 arrays.
        self._indptr = None
        self._indices = None
        self._pred_indptr = None
        self._pred_indices = None
        # Derived scalar caches.
        self._succ_sets: Optional[List[set]] = None
        self._edge_count: Optional[int] = None
        self._flat_succ: Optional[Tuple[List[int], List[int]]] = None
        self._flat_pred: Optional[Tuple[List[int], List[int]]] = None
        # (srcs, dsts, lens) int64 arrays of the vertex commands, cached
        # for batch pricing; set for free by the fast builder.
        self._cmd_arrays = None

    @classmethod
    def _from_csr(cls, vertices, indptr, indices, pred_indptr, pred_indices,
                  cmd_arrays=None) -> "CRWIDigraph":
        """Internal: wrap kernel-built CSR arrays without list materialization."""
        graph = cls(vertices=vertices)
        graph._successors = None
        graph._predecessors = None
        graph._indptr = indptr
        graph._indices = indices
        graph._pred_indptr = pred_indptr
        graph._pred_indices = pred_indices
        graph._edge_count = int(indptr[-1]) if len(indptr) else 0
        graph._cmd_arrays = cmd_arrays
        return graph

    # -- representation management ------------------------------------

    @property
    def successors(self) -> List[List[int]]:
        """Canonical successor adjacency lists (materialized from CSR lazily)."""
        if self._successors is None:
            self._successors = _k.rows_from_csr(self._indptr, self._indices)
        return self._successors

    @successors.setter
    def successors(self, value: List[List[int]]) -> None:
        self._successors = value
        self.invalidate_caches()

    @property
    def predecessors(self) -> List[List[int]]:
        """Canonical predecessor adjacency lists (materialized from CSR lazily)."""
        if self._predecessors is None:
            self._predecessors = _k.rows_from_csr(
                self._pred_indptr, self._pred_indices)
        return self._predecessors

    @predecessors.setter
    def predecessors(self, value: List[List[int]]) -> None:
        self._predecessors = value
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop derived edge caches after a direct adjacency mutation.

        When the adjacency lists have been materialized they are the
        (possibly mutated) source of truth, so the CSR view is dropped
        too and rebuilt on demand; a CSR-only graph cannot have been
        mutated and keeps its arrays.
        """
        self._succ_sets = None
        self._edge_count = None
        self._flat_succ = None
        self._flat_pred = None
        if self._successors is not None:
            self._indptr = None
            self._indices = None
        if self._predecessors is not None:
            self._pred_indptr = None
            self._pred_indices = None

    def csr(self) -> Optional[Tuple["_k.np.ndarray", "_k.np.ndarray"]]:
        """The successor adjacency as ``(indptr, indices)`` int64 arrays.

        Built from the lists on first use when the graph was constructed
        scalar-side; ``None`` without numpy.
        """
        if self._indptr is None:
            if not _k.HAVE_NUMPY:
                return None
            np = _k.np
            succ = self.successors
            indptr = np.zeros(len(succ) + 1, dtype=np.int64)
            np.cumsum(np.array([len(a) for a in succ], dtype=np.int64),
                      out=indptr[1:])
            flat = [v for adj in succ for v in adj]
            self._indptr = indptr
            self._indices = np.array(flat, dtype=np.int64)
        return self._indptr, self._indices

    def pred_csr(self) -> Optional[Tuple["_k.np.ndarray", "_k.np.ndarray"]]:
        """The predecessor (transposed) adjacency as CSR arrays."""
        if self._pred_indptr is None:
            if not _k.HAVE_NUMPY:
                return None
            np = _k.np
            pred = self.predecessors
            indptr = np.zeros(len(pred) + 1, dtype=np.int64)
            np.cumsum(np.array([len(a) for a in pred], dtype=np.int64),
                      out=indptr[1:])
            flat = [v for adj in pred for v in adj]
            self._pred_indptr = indptr
            self._pred_indices = np.array(flat, dtype=np.int64)
        return self._pred_indptr, self._pred_indices

    def flat_successors(self) -> Tuple[List[int], List[int]]:
        """The successor adjacency as flat ``(targets, bounds)`` lists.

        ``targets[bounds[u]:bounds[u + 1]]`` is ``successors[u]`` — the
        encoding the toposort machinery scans, so a kernel-built graph
        never materializes per-vertex lists just to be sorted.  From CSR
        arrays this is two ``tolist`` calls; a list-built graph flattens
        (pure Python, no numpy needed).  Cached until the next
        :meth:`invalidate_caches`.
        """
        if self._flat_succ is None:
            if self._successors is None:
                self._flat_succ = (self._indices.tolist(),
                                   self._indptr.tolist())
            else:
                bounds = [0] * (len(self._successors) + 1)
                total = 0
                for i, adj in enumerate(self._successors):
                    total += len(adj)
                    bounds[i + 1] = total
                flat = [v for adj in self._successors for v in adj]
                self._flat_succ = (flat, bounds)
        return self._flat_succ

    def outdegrees(self) -> List[int]:
        """Per-vertex successor counts (CSR row widths when lists are lazy)."""
        if self._successors is None:
            return _k.np.diff(self._indptr).tolist()
        return [len(s) for s in self._successors]

    def indegrees(self) -> List[int]:
        """Per-vertex predecessor counts.

        Reads the CSR row bounds when the predecessor lists have not been
        materialized — the acyclic peel needs only the counts, so a
        kernel-built graph should not pay for the lists up front.
        """
        if self._predecessors is None:
            return _k.np.diff(self._pred_indptr).tolist()
        return [len(p) for p in self._predecessors]

    def pred_row_reader(self) -> Callable[[int], List[int]]:
        """A ``vertex -> predecessor row`` accessor.

        On a kernel-built graph this slices rows out of flat ``tolist``
        conversions of the CSR transpose (cached alongside
        :meth:`flat_successors`, dropped by :meth:`invalidate_caches`)
        instead of materializing every per-vertex list.  Rows are
        identical to ``predecessors[u]`` either way.
        """
        if self._predecessors is None:
            if self._flat_pred is None:
                self._flat_pred = (self._pred_indices.tolist(),
                                   self._pred_indptr.tolist())
            flat, bounds = self._flat_pred
            return lambda u: flat[bounds[u]:bounds[u + 1]]
        return self._predecessors.__getitem__

    def _command_arrays(self):
        """Cached ``(srcs, dsts, lens)`` int64 arrays of the vertex commands."""
        if self._cmd_arrays is None and _k.HAVE_NUMPY:
            np = _k.np
            n = len(self.vertices)
            self._cmd_arrays = (
                np.fromiter((c.src for c in self.vertices), np.int64, n),
                np.fromiter((c.dst for c in self.vertices), np.int64, n),
                np.fromiter((c.length for c in self.vertices), np.int64, n),
            )
        return self._cmd_arrays

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CRWIDigraph(vertices=%d, edges=%d)" % (
            self.vertex_count, self.edge_count)

    # -- queries -------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """Number of vertices (= number of copy commands)."""
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        """Number of directed conflict edges (cached after first use)."""
        if self._edge_count is None:
            if self._successors is None:
                self._edge_count = int(self._indptr[-1])
            else:
                self._edge_count = sum(len(adj) for adj in self._successors)
        return self._edge_count

    def cost(self, vertex: int, offset_encoding_size: OffsetPricing = 4) -> int:
        """Compression lost by evicting ``vertex`` (converting copy to add).

        Replacing copy ``<f, t, l>`` with add ``<t, l> + data`` grows the
        delta by ``l - |f|`` bytes, where ``|f|`` is the encoded size of
        the dropped ``f`` field (section 5).  Under the varint wire
        format ``|f|`` depends on the offset value, so
        ``offset_encoding_size`` accepts a per-offset size function
        (``varint_size``) as well as a fixed width; the fixed default of
        4 keeps the paper's 1998 codeword model.  The cost is clamped at
        1 so every eviction has positive cost, as the optimization
        problem in the paper requires.
        """
        cmd = self.vertices[vertex]
        return max(1, cmd.length - field_width(offset_encoding_size, cmd.src))

    def costs(self, offset_encoding_size: OffsetPricing = 4) -> List[int]:
        """Eviction costs for every vertex, in vertex order.

        Batch-priced through the array kernels when the fast paths are
        on: fixed widths vectorize directly, and the library's own
        ``varint_size`` is recognized by identity and priced with the
        ``searchsorted`` size kernel; any other callable falls back to
        the per-vertex scalar loop.
        """
        if _k.fast_enabled() and self.vertex_count:
            fixed: Optional[int]
            if not callable(offset_encoding_size):
                fixed = offset_encoding_size
            elif _is_varint_pricing(offset_encoding_size):
                fixed = None
            else:
                fixed = -1  # sentinel: unknown callable, no batch path
            if fixed is None or fixed >= 0:
                srcs, _dsts, lens = self._command_arrays()
                return _k.eviction_costs(lens, srcs, fixed).tolist()
        return [self.cost(v, offset_encoding_size)
                for v in range(self.vertex_count)]

    def has_edge(self, u: int, v: int) -> bool:
        """True when the conflict edge ``u -> v`` exists.

        O(1) via a successor-set view built on first use (the adjacency
        lists stay the canonical representation).
        """
        if self._succ_sets is None:
            self._succ_sets = [set(adj) for adj in self.successors]
        return v in self._succ_sets[u]

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate all directed edges as ``(u, v)`` pairs.

        Reads the CSR view directly when the lists have not been
        materialized; both spellings yield the same pairs in the same
        order.
        """
        if self._successors is None:
            bounds = self._indptr.tolist()
            flat = self._indices.tolist()
            for u in range(len(bounds) - 1):
                for pos in range(bounds[u], bounds[u + 1]):
                    yield (u, flat[pos])
            return
        for u, adj in enumerate(self._successors):
            for v in adj:
                yield (u, v)

    def without_vertices(self, removed: Iterable[int]) -> "CRWIDigraph":
        """A copy of the digraph with ``removed`` vertices (and their edges) deleted.

        Vertex numbering is compacted; used by the whole-graph eviction
        solvers and by tests that check feedback-vertex-set properties.
        """
        dead = set(removed)
        if _k.fast_enabled() and self.vertex_count:
            csr = self.csr()
            if csr is not None:
                np = _k.np
                keep_mask = np.ones(self.vertex_count, dtype=bool)
                if dead:
                    keep_mask[np.array(sorted(dead), dtype=np.int64)] = False
                indptr, indices = _k.subgraph_csr(csr[0], csr[1], keep_mask)
                pred_indptr, pred_indices = _k.csr_transpose(
                    indptr, indices, int(keep_mask.sum()))
                kept = [self.vertices[v] for v in range(self.vertex_count)
                        if v not in dead]
                arrays = self._command_arrays()
                sub_arrays = (tuple(a[keep_mask] for a in arrays)
                              if arrays is not None else None)
                return CRWIDigraph._from_csr(
                    kept, indptr, indices, pred_indptr, pred_indices,
                    cmd_arrays=sub_arrays)
        return self._without_vertices_reference(dead)

    def _without_vertices_reference(self, dead: set) -> "CRWIDigraph":
        """Scalar subgraph rebuild; the oracle for the CSR masking kernel."""
        keep = [v for v in range(self.vertex_count) if v not in dead]
        renumber = {old: new for new, old in enumerate(keep)}
        sub = CRWIDigraph(
            vertices=[self.vertices[v] for v in keep],
            successors=[[] for _ in keep],
            predecessors=[[] for _ in keep],
        )
        for old in keep:
            for succ in self.successors[old]:
                if succ in renumber:
                    sub.successors[renumber[old]].append(renumber[succ])
                    sub.predecessors[renumber[succ]].append(renumber[old])
        sub.invalidate_caches()
        return sub

    def is_acyclic(self) -> bool:
        """Kahn's-algorithm acyclicity check (independent of the DFS sorter)."""
        if _k.fast_enabled() and self.vertex_count >= _k.ARRAY_PEEL_MIN:
            csr = self.csr()
            pred = self.pred_csr()
            if csr is not None and pred is not None:
                flat, bounds = self.flat_successors()
                prefix, _core, _suffix = _k.toposort_peel(
                    csr[0], csr[1], pred[0], pred[1],
                    lambda u: flat[bounds[u]:bounds[u + 1]],
                    lambda u: pred[1][pred[0][u]:pred[0][u + 1]])
                return int(prefix.shape[0]) == self.vertex_count
        indegree = self.indegrees()
        frontier = [v for v, d in enumerate(indegree) if d == 0]
        seen = 0
        while frontier:
            u = frontier.pop()
            seen += 1
            for v in self.successors[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    frontier.append(v)
        return seen == self.vertex_count


def _iter_copies(script: DeltaScript) -> List[CopyCommand]:
    """All copy commands of ``script`` in one pass over the command list."""
    return [c for c in script.commands if isinstance(c, CopyCommand)]


def build_crwi_digraph(script: DeltaScript) -> CRWIDigraph:
    """Construct the CRWI digraph for the copy commands of ``script``.

    Steps 2-3 of the paper's algorithm: sort copies by write offset, then
    for each copy's read interval locate the write intervals it intersects
    via binary search over the disjoint, sorted write intervals.  With
    the fast paths on, all binary searches run as two ``searchsorted``
    passes over the whole command set and the adjacency materializes as
    CSR arrays; the scalar ``IntervalIndex`` loop is retained as the
    bit-identical reference.
    """
    return _build_from_sorted(sorted(_iter_copies(script), key=lambda c: c.dst))


def _build_from_sorted(copies: List[CopyCommand]) -> CRWIDigraph:
    """Digraph over copies already sorted by write offset.

    Entry point shared with the integrated builder
    (:class:`repro.core.integrated.InPlaceDeltaBuilder`), whose feed
    order guarantees sortedness; dispatches to the vectorized or the
    reference constructor and records the convert-plane counters.
    """
    started = time.perf_counter()
    if _k.fast_enabled() and copies:
        graph = _build_fast(copies)
        fast = 1
    else:
        graph = _build_reference(copies)
        fast = 0
    recorder = perf.active()
    if recorder is not None:
        recorder.merge({
            "crwi.build.calls": 1,
            "crwi.build.seconds": time.perf_counter() - started,
            "crwi.build.fast": fast,
        })
    return graph


def _build_fast(copies: List[CopyCommand]) -> CRWIDigraph:
    """Vectorized digraph construction (copies pre-sorted by write offset)."""
    np = _k.np
    n = len(copies)
    srcs = np.fromiter((c.src for c in copies), np.int64, n)
    dsts = np.fromiter((c.dst for c in copies), np.int64, n)
    lens = np.fromiter((c.length for c in copies), np.int64, n)
    stops = dsts + lens - 1
    # Same disjointness contract (and error) as IntervalIndex.
    bad = np.flatnonzero(dsts[1:] <= stops[:-1])
    if bad.size:
        k = int(bad[0])
        raise ValueError(
            "IntervalIndex requires disjoint intervals; %r overlaps %r"
            % (Interval(int(dsts[k]), int(stops[k])),
               Interval(int(dsts[k + 1]), int(stops[k + 1])))
        )
    indptr, indices = _k.crwi_edges(srcs, dsts, lens)
    pred_indptr, pred_indices = _k.csr_transpose(indptr, indices, n)
    return CRWIDigraph._from_csr(
        copies, indptr, indices, pred_indptr, pred_indices,
        cmd_arrays=(srcs, dsts, lens))


def _build_reference(copies: List[CopyCommand]) -> CRWIDigraph:
    """Scalar digraph construction; the oracle for :func:`_build_fast`."""
    graph = CRWIDigraph(
        vertices=copies,
        successors=[[] for _ in copies],
        predecessors=[[] for _ in copies],
    )
    if not copies:
        return graph
    index = IntervalIndex([c.write_interval for c in copies])
    for i, cmd in enumerate(copies):
        for j in index.overlapping(cmd.read_interval):
            if j != i:
                graph.successors[i].append(j)
                graph.predecessors[j].append(i)
    graph.invalidate_caches()
    return graph


def lemma1_bound(script: DeltaScript) -> int:
    """The Lemma 1 upper bound on CRWI edges: the version file length ``L_V``."""
    return script.version_length


def read_bytes_bound(script: DeltaScript) -> int:
    """Tighter form of the Lemma 1 argument: the sum of all copy read lengths.

    Each copy command ``i`` can conflict with at most ``l_i`` other
    commands, and the read lengths sum to at most ``L_V``; this returns
    the first quantity, which the tests check dominates the realized edge
    count.  One tight pass over the command list — the analysis reports
    call this alongside the digraph build, so it must not rescan with
    stacked generator sweeps.
    """
    total = 0
    for c in script.commands:
        if isinstance(c, CopyCommand):
            total += c.length
    return total
