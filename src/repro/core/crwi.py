"""Conflicting read-write interval (CRWI) digraph construction.

Section 4.2 of the paper encodes the potential write-before-read
conflicts of a delta file in a digraph:

* one vertex per copy command, with copies sorted by increasing write
  offset (``t``);
* a directed edge ``v_i -> v_j`` whenever copy ``c_i`` *reads* from the
  interval copy ``c_j`` *writes* (``[f_i, f_i+l_i-1] ∩ [t_j, t_j+l_j-1]
  ≠ ∅``), meaning ``c_i`` must execute before ``c_j``.

Because the write intervals of a delta script are disjoint, the edge
relation is computed with one binary search per copy command over the
write intervals sorted by start offset — ``O(|C| log |C| + |E|)`` total,
the bound of section 4.3.  The class records enough bookkeeping to check
Lemma 1 (``|E| <= L_V``) empirically.

Self-edges are excluded: a copy command does not conflict with itself;
overlapping read/write intervals within one command are handled by
directional copying at apply time (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .commands import CopyCommand, DeltaScript
from .intervals import Interval, IntervalIndex

#: The ``|f|`` term of the eviction cost model: either a fixed field
#: width in bytes (the paper's 1998 codewords) or a function mapping an
#: offset value to its encoded size (``repro.delta.varint.varint_size``
#: for the library's default varint wire format, where a near offset
#: costs 1 byte and a far one up to 5).
OffsetPricing = Union[int, Callable[[int], int]]


def field_width(pricing: OffsetPricing, value: int) -> int:
    """Encoded size of an offset/length field ``value`` under ``pricing``."""
    return pricing(value) if callable(pricing) else pricing


@dataclass
class CRWIDigraph:
    """The conflict digraph of one delta script's copy commands.

    ``vertices[i]`` is the copy command for vertex ``i``; vertices are
    numbered in increasing write-offset order, the paper's ``c_1 ... c_n``
    convention.  ``successors[i]`` lists the vertices whose write interval
    vertex ``i`` reads from (edges out of ``i``); ``predecessors`` is the
    transposed relation.
    """

    vertices: List[CopyCommand] = field(default_factory=list)
    successors: List[List[int]] = field(default_factory=list)
    predecessors: List[List[int]] = field(default_factory=list)

    # Lazily derived views of the adjacency lists.  The eviction solvers
    # and analysis reports call has_edge/edge_count inside loops over
    # candidate vertex sets, so membership must not rescan successor
    # lists.  Anything that mutates successors/predecessors after
    # construction must call invalidate_caches().
    _succ_sets: Optional[List[set]] = field(
        default=None, init=False, repr=False, compare=False)
    _edge_count: Optional[int] = field(
        default=None, init=False, repr=False, compare=False)

    def invalidate_caches(self) -> None:
        """Drop derived edge caches after a direct adjacency mutation."""
        self._succ_sets = None
        self._edge_count = None

    @property
    def vertex_count(self) -> int:
        """Number of vertices (= number of copy commands)."""
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        """Number of directed conflict edges (cached after first use)."""
        if self._edge_count is None:
            self._edge_count = sum(len(adj) for adj in self.successors)
        return self._edge_count

    def cost(self, vertex: int, offset_encoding_size: OffsetPricing = 4) -> int:
        """Compression lost by evicting ``vertex`` (converting copy to add).

        Replacing copy ``<f, t, l>`` with add ``<t, l> + data`` grows the
        delta by ``l - |f|`` bytes, where ``|f|`` is the encoded size of
        the dropped ``f`` field (section 5).  Under the varint wire
        format ``|f|`` depends on the offset value, so
        ``offset_encoding_size`` accepts a per-offset size function
        (``varint_size``) as well as a fixed width; the fixed default of
        4 keeps the paper's 1998 codeword model.  The cost is clamped at
        1 so every eviction has positive cost, as the optimization
        problem in the paper requires.
        """
        cmd = self.vertices[vertex]
        return max(1, cmd.length - field_width(offset_encoding_size, cmd.src))

    def costs(self, offset_encoding_size: OffsetPricing = 4) -> List[int]:
        """Eviction costs for every vertex, in vertex order."""
        return [self.cost(v, offset_encoding_size) for v in range(self.vertex_count)]

    def has_edge(self, u: int, v: int) -> bool:
        """True when the conflict edge ``u -> v`` exists.

        O(1) via a successor-set view built on first use (the adjacency
        lists stay the canonical representation).
        """
        if self._succ_sets is None:
            self._succ_sets = [set(adj) for adj in self.successors]
        return v in self._succ_sets[u]

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate all directed edges as ``(u, v)`` pairs."""
        for u, adj in enumerate(self.successors):
            for v in adj:
                yield (u, v)

    def without_vertices(self, removed: Iterable[int]) -> "CRWIDigraph":
        """A copy of the digraph with ``removed`` vertices (and their edges) deleted.

        Vertex numbering is compacted; used by the whole-graph eviction
        solvers and by tests that check feedback-vertex-set properties.
        """
        dead = set(removed)
        keep = [v for v in range(self.vertex_count) if v not in dead]
        renumber = {old: new for new, old in enumerate(keep)}
        sub = CRWIDigraph(
            vertices=[self.vertices[v] for v in keep],
            successors=[[] for _ in keep],
            predecessors=[[] for _ in keep],
        )
        for old in keep:
            for succ in self.successors[old]:
                if succ in renumber:
                    sub.successors[renumber[old]].append(renumber[succ])
                    sub.predecessors[renumber[succ]].append(renumber[old])
        sub.invalidate_caches()
        return sub

    def is_acyclic(self) -> bool:
        """Kahn's-algorithm acyclicity check (independent of the DFS sorter)."""
        indegree = [len(p) for p in self.predecessors]
        frontier = [v for v, d in enumerate(indegree) if d == 0]
        seen = 0
        while frontier:
            u = frontier.pop()
            seen += 1
            for v in self.successors[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    frontier.append(v)
        return seen == self.vertex_count


def build_crwi_digraph(script: DeltaScript) -> CRWIDigraph:
    """Construct the CRWI digraph for the copy commands of ``script``.

    Steps 2-3 of the paper's algorithm: sort copies by write offset, then
    for each copy's read interval locate the write intervals it intersects
    via binary search over the disjoint, sorted write intervals.
    """
    copies = sorted(
        (c for c in script.commands if isinstance(c, CopyCommand)),
        key=lambda c: c.dst,
    )
    graph = CRWIDigraph(
        vertices=copies,
        successors=[[] for _ in copies],
        predecessors=[[] for _ in copies],
    )
    if not copies:
        return graph
    index = IntervalIndex([c.write_interval for c in copies])
    for i, cmd in enumerate(copies):
        for j in index.overlapping(cmd.read_interval):
            if j != i:
                graph.successors[i].append(j)
                graph.predecessors[j].append(i)
    graph.invalidate_caches()
    return graph


def lemma1_bound(script: DeltaScript) -> int:
    """The Lemma 1 upper bound on CRWI edges: the version file length ``L_V``."""
    return script.version_length


def read_bytes_bound(script: DeltaScript) -> int:
    """Tighter form of the Lemma 1 argument: the sum of all copy read lengths.

    Each copy command ``i`` can conflict with at most ``l_i`` other
    commands, and the read lengths sum to at most ``L_V``; this returns
    the first quantity, which the tests check dominates the realized edge
    count.
    """
    return sum(c.length for c in script.commands if isinstance(c, CopyCommand))
