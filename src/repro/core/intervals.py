"""Closed integer intervals and interval-set queries.

The paper reasons about copy commands through the closed byte intervals
they read (``[f, f+l-1]``) and write (``[t, t+l-1]``).  This module
provides a small :class:`Interval` value type with the exact overlap
predicate of Equation 1, plus an :class:`IntervalIndex` that answers
"which write intervals intersect this read interval?" in ``O(log n + k)``
by binary search over intervals sorted by start offset — the data
structure behind the paper's ``O(|C| log |C|)`` digraph construction.

All intervals here are closed and inclusive on both ends, matching the
paper's notation.  Empty intervals (length 0) are represented with
``stop < start`` and never intersect anything.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, stop]`` of byte offsets.

    ``length == 0`` is encoded as ``stop == start - 1``; such intervals
    intersect nothing and contain nothing.
    """

    start: int
    stop: int

    @classmethod
    def from_length(cls, start: int, length: int) -> "Interval":
        """Build the interval covering ``length`` bytes beginning at ``start``."""
        if length < 0:
            raise ValueError("interval length must be non-negative, got %d" % length)
        return cls(start, start + length - 1)

    @property
    def length(self) -> int:
        """Number of bytes covered (0 for an empty interval)."""
        return max(0, self.stop - self.start + 1)

    @property
    def empty(self) -> bool:
        """True when the interval covers no bytes."""
        return self.stop < self.start

    def intersects(self, other: "Interval") -> bool:
        """Equation 1 of the paper: do the closed intervals share a byte?"""
        if self.empty or other.empty:
            return False
        return self.start <= other.stop and other.start <= self.stop

    def intersection(self, other: "Interval") -> "Interval":
        """The (possibly empty) common sub-interval."""
        return Interval(max(self.start, other.start), min(self.stop, other.stop))

    def contains(self, offset: int) -> bool:
        """True when ``offset`` lies inside the closed interval."""
        return self.start <= offset <= self.stop

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely inside this interval."""
        if other.empty:
            return True
        return self.start <= other.start and other.stop <= self.stop

    def shift(self, delta: int) -> "Interval":
        """The interval translated by ``delta`` bytes."""
        return Interval(self.start + delta, self.stop + delta)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.stop + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.empty:
            return "Interval(empty@%d)" % self.start
        return "Interval[%d, %d]" % (self.start, self.stop)


def total_length(intervals: Iterable[Interval]) -> int:
    """Sum of the lengths of ``intervals`` (overlaps counted twice)."""
    return sum(iv.length for iv in intervals)


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Coalesce intervals into a minimal sorted list of disjoint intervals.

    Adjacent intervals (``a.stop + 1 == b.start``) are merged as well,
    since together they cover a contiguous byte range.
    """
    items = sorted(iv for iv in intervals if not iv.empty)
    merged: List[Interval] = []
    for iv in items:
        if merged and iv.start <= merged[-1].stop + 1:
            if iv.stop > merged[-1].stop:
                merged[-1] = Interval(merged[-1].start, iv.stop)
        else:
            merged.append(iv)
    return merged


def find_gaps(intervals: Iterable[Interval], span: Interval) -> List[Interval]:
    """Sub-intervals of ``span`` not covered by any of ``intervals``."""
    gaps: List[Interval] = []
    cursor = span.start
    for iv in merge_intervals(intervals):
        if iv.stop < span.start or iv.start > span.stop:
            continue
        if iv.start > cursor:
            gaps.append(Interval(cursor, min(iv.start - 1, span.stop)))
        cursor = max(cursor, iv.stop + 1)
        if cursor > span.stop:
            break
    if cursor <= span.stop:
        gaps.append(Interval(cursor, span.stop))
    return gaps


def are_disjoint(intervals: Iterable[Interval]) -> bool:
    """True when no two of the intervals share a byte."""
    items = sorted(iv for iv in intervals if not iv.empty)
    for prev, cur in zip(items, items[1:]):
        if cur.start <= prev.stop:
            return False
    return True


class IntervalIndex:
    """Query structure over a fixed set of *disjoint* intervals.

    The paper sorts copy commands by write offset and finds, for each read
    interval, the write intervals it intersects by binary search.  This
    class is that structure: it is built once from disjoint intervals
    (each carrying an opaque payload, typically the index of a copy
    command) and answers stabbing and overlap queries in
    ``O(log n + k)``.
    """

    def __init__(self, intervals: Sequence[Interval], payloads: Optional[Sequence[int]] = None):
        pairs = [
            (iv, (payloads[i] if payloads is not None else i))
            for i, iv in enumerate(intervals)
            if not iv.empty
        ]
        pairs.sort(key=lambda p: p[0].start)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if b.start <= a.stop:
                raise ValueError(
                    "IntervalIndex requires disjoint intervals; %r overlaps %r" % (a, b)
                )
        self._intervals: List[Interval] = [p[0] for p in pairs]
        self._payloads: List[int] = [p[1] for p in pairs]
        self._starts: List[int] = [iv.start for iv in self._intervals]

    def __len__(self) -> int:
        return len(self._intervals)

    def stab(self, offset: int) -> Optional[int]:
        """Payload of the interval containing ``offset``, or ``None``."""
        pos = bisect_right(self._starts, offset) - 1
        if pos >= 0 and self._intervals[pos].contains(offset):
            return self._payloads[pos]
        return None

    def overlapping(self, query: Interval) -> List[int]:
        """Payloads of all stored intervals intersecting ``query``, sorted by start.

        Because the stored intervals are disjoint, the intersecting ones
        form a contiguous run in start order; two binary searches locate
        the run's ends.
        """
        if query.empty or not self._intervals:
            return []
        # First interval that could intersect: the one containing
        # query.start, else the first starting after it.
        lo = bisect_right(self._starts, query.start) - 1
        if lo < 0 or self._intervals[lo].stop < query.start:
            lo += 1
        # Last candidate: the last interval starting at or before query.stop.
        hi = bisect_right(self._starts, query.stop)
        return self._payloads[lo:hi]

    def count_overlapping(self, query: Interval) -> int:
        """Number of stored intervals intersecting ``query`` (no list built)."""
        if query.empty or not self._intervals:
            return 0
        lo = bisect_right(self._starts, query.start) - 1
        if lo < 0 or self._intervals[lo].stop < query.start:
            lo += 1
        hi = bisect_right(self._starts, query.stop)
        return max(0, hi - lo)


class DynamicIntervalSet:
    """Mutable set of disjoint intervals supporting insertion and queries.

    Used by the in-place applier to track the region of the buffer already
    written, and by the verifier to check Equation 2 incrementally.  Backed
    by a sorted list of merged intervals; insertion is ``O(n)`` worst case
    but amortizes well for the mostly-ordered insertions delta application
    produces.
    """

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._stops: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def covered_bytes(self) -> int:
        """Total number of bytes in the set."""
        return sum(b - a + 1 for a, b in zip(self._starts, self._stops))

    def intervals(self) -> List[Interval]:
        """Snapshot of the merged intervals, in start order."""
        return [Interval(a, b) for a, b in zip(self._starts, self._stops)]

    def intersects(self, query: Interval) -> bool:
        """True when any byte of ``query`` is in the set."""
        if query.empty or not self._starts:
            return False
        pos = bisect_right(self._starts, query.stop) - 1
        return pos >= 0 and self._stops[pos] >= query.start

    def first_intersection(self, query: Interval) -> Optional[Interval]:
        """The lowest-offset common bytes with ``query``, or ``None``."""
        if query.empty or not self._starts:
            return None
        pos = bisect_right(self._starts, query.start) - 1
        if pos < 0 or self._stops[pos] < query.start:
            pos += 1
        if pos >= len(self._starts) or self._starts[pos] > query.stop:
            return None
        hit = Interval(self._starts[pos], self._stops[pos]).intersection(query)
        return hit

    def add(self, iv: Interval) -> None:
        """Insert ``iv``, merging with any intervals it touches."""
        if iv.empty:
            return
        lo = bisect_left(self._stops, iv.start - 1)
        hi = bisect_right(self._starts, iv.stop + 1)
        if lo < hi:
            new_start = min(iv.start, self._starts[lo])
            new_stop = max(iv.stop, self._stops[hi - 1])
            del self._starts[lo:hi]
            del self._stops[lo:hi]
        else:
            new_start, new_stop = iv.start, iv.stop
        self._starts.insert(lo, new_start)
        self._stops.insert(lo, new_stop)
