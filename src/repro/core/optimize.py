"""Script optimization: shrink a delta's encoded size without changing output.

The differencing algorithms optimize match coverage, not codeword
economy, and the converter can only grow a script.  This pass closes the
gap with three size-only rewrites, each safe because it preserves the
byte function the script computes:

* **coalesce** — adjacent commands with contiguous sources merge
  (re-export of :meth:`DeltaScript.coalesced` semantics, applied
  per-run without disturbing application order);
* **inline tiny copies** — a copy whose codeword costs more than its
  data (e.g. a 2-byte copy with 3 varint fields) becomes an add,
  *reducing* size — the mirror image of the converter's lossy
  copy-to-add eviction, and also one less CRWI vertex;
* **merge add runs** — adds separated only by inlined copies fuse, then
  re-split optimally at encode time.

The pass needs the reference bytes (to inline copies) and an encoding
cost model (:func:`repro.delta.encode.encoded_size` on single commands
via the same field arithmetic).  It runs before conversion — fewer and
larger commands also mean a smaller conflict digraph — or after, since
it never reorders commands with interfering intervals (inlining moves
no reads; coalescing only fuses *adjacent* commands, which preserves
Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..delta.varint import varint_size
from .commands import AddCommand, Command, CopyCommand, DeltaScript

Buffer = Union[bytes, bytearray, memoryview]


@dataclass
class OptimizeReport:
    """What one optimization pass changed."""

    coalesced: int = 0
    inlined_copies: int = 0
    inlined_bytes: int = 0
    merged_adds: int = 0

    @property
    def total_rewrites(self) -> int:
        """Commands affected by any rewrite."""
        return self.coalesced + self.inlined_copies + self.merged_adds


def copy_codeword_size(cmd: CopyCommand, *, with_offsets: bool = True) -> int:
    """Encoded size of one copy codeword in the varint formats."""
    size = 1 + varint_size(cmd.src) + varint_size(cmd.length)
    if with_offsets:
        size += varint_size(cmd.dst)
    return size


def add_codeword_size(length: int, dst: int, *, with_offsets: bool = True) -> int:
    """Encoded size of ``length`` literal bytes at ``dst`` (chunked adds)."""
    size = 0
    done = 0
    while done < length:
        step = min(255, length - done)
        size += 1 + 1 + step
        if with_offsets:
            size += varint_size(dst + done)
        done += step
    return size


def _try_merge(prev: Command, cur: Command) -> Optional[Command]:
    """The single command equivalent to ``prev`` then ``cur``, if one exists."""
    if isinstance(prev, CopyCommand) and isinstance(cur, CopyCommand):
        if prev.dst + prev.length == cur.dst and prev.src + prev.length == cur.src:
            return CopyCommand(prev.src, prev.dst, prev.length + cur.length)
    if isinstance(prev, AddCommand) and isinstance(cur, AddCommand):
        if prev.dst + prev.length == cur.dst:
            return AddCommand(prev.dst, prev.data + cur.data)
    return None


def optimize_script(
    script: DeltaScript,
    reference: Optional[Buffer] = None,
    *,
    with_offsets: bool = True,
) -> "tuple[DeltaScript, OptimizeReport]":
    """Rewrite ``script`` for a smaller encoding; output is equivalent.

    Only plain copy/add scripts are rewritten; scripts containing
    scratch commands are returned unchanged (their layout is the
    converter's business).  ``reference`` enables copy inlining; without
    it only coalescing runs.  ``with_offsets`` selects the cost model
    (in-place codewords carry a ``t`` field).
    """
    report = OptimizeReport()
    if any(not isinstance(c, (CopyCommand, AddCommand)) for c in script.commands):
        return script, report

    out: List[Command] = []
    for cmd in script.commands:
        # Inline copies whose codeword outweighs their data.
        if (
            reference is not None
            and isinstance(cmd, CopyCommand)
            and copy_codeword_size(cmd, with_offsets=with_offsets)
            >= add_codeword_size(cmd.length, cmd.dst, with_offsets=with_offsets)
        ):
            cmd = cmd.to_add(reference)
            report.inlined_copies += 1
            report.inlined_bytes += cmd.length
        # Fuse with the previous command when possible.
        if out:
            merged = _try_merge(out[-1], cmd)
            if merged is not None:
                if isinstance(cmd, AddCommand) and isinstance(out[-1], AddCommand):
                    report.merged_adds += 1
                else:
                    report.coalesced += 1
                out[-1] = merged
                continue
        out.append(cmd)
    return DeltaScript(out, script.version_length), report
