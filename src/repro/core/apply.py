"""Reconstruction engines: two-space and in-place application.

Two engines execute a :class:`~repro.core.commands.DeltaScript`:

* :func:`apply_delta` is the conventional reconstructor.  It reads from a
  reference buffer and writes a *separate* version buffer, so command
  order is irrelevant.  This models a host with scratch space.

* :func:`apply_in_place` models the paper's constrained device.  It
  executes the script against a single buffer that initially holds the
  reference and finally holds the version, reading and writing the same
  storage.  Commands run *serially in script order*; a copy whose read and
  write intervals overlap is performed directionally (left-to-right when
  ``src >= dst``, right-to-left otherwise — paper, section 4.1), optionally
  through a bounded staging buffer to model a device with a small RAM
  window.

``apply_in_place`` on an unconverted script silently produces garbage on
inputs with write-before-read conflicts — exactly the failure mode the
paper opens with.  Pass ``strict=True`` to raise
:class:`~repro.exceptions.WriteBeforeReadError` at the first conflicting
command instead; the tests and benches use both modes.
"""

from __future__ import annotations

import zlib
from time import perf_counter
from typing import Optional, Union

from .. import perf
from ..exceptions import DeltaRangeError, IntegrityError, WriteBeforeReadError
from .commands import AddCommand, CopyCommand, DeltaScript, FillCommand, SpillCommand
from .intervals import DynamicIntervalSet

Buffer = Union[bytes, bytearray, memoryview]


def storage_crc32(storage, length: Optional[int] = None,
                  chunk: int = 1 << 16) -> int:
    """CRC32 of the first ``length`` bytes of any sliceable storage.

    Works on plain buffers and on device storage objects (flash arrays,
    crash-simulating wrappers) that only expose ``__len__`` and slice
    reads, without materializing a full copy: the digest is folded one
    bounded chunk at a time.
    """
    if length is None:
        length = len(storage)
    crc = 0
    pos = 0
    while pos < length:
        step = min(chunk, length - pos)
        piece = storage[pos:pos + step]
        if not isinstance(piece, (bytes, bytearray, memoryview)):
            # Exotic storage (e.g. a list-backed flash model) may yield
            # non-buffer slices; everything else feeds crc32 directly.
            piece = bytes(piece)
        crc = zlib.crc32(piece, crc)
        pos += step
    perf.add("apply.crc_bytes", length)
    return crc & 0xFFFFFFFF


def verify_reference(header, storage, *, length: Optional[int] = None) -> None:
    """Check ``storage`` against the reference digest recorded in ``header``.

    No-op when the header carries no reference digest (``IPD1``, or an
    ``IPD2`` produced without one).  Raises
    :class:`~repro.exceptions.IntegrityError` with ``kind="reference"``
    when the length or CRC32 does not match — the caller must not let a
    destructive apply proceed past this.

    ``length`` bounds how many bytes of ``storage`` constitute the
    image (defaults to all of it) — devices whose storage is larger
    than the installed image pass the image length.
    """
    if not getattr(header, "has_reference", False):
        return
    if length is None:
        length = len(storage)
    if header.reference_length is not None and \
            length != header.reference_length:
        raise IntegrityError(
            "reference is %d bytes but the delta was built against %d — "
            "refusing to destroy the image"
            % (length, header.reference_length),
            kind="reference",
            expected=header.reference_length, actual=length,
        )
    actual = storage_crc32(storage, length)
    if actual != header.reference_crc32:
        raise IntegrityError(
            "reference checksum 0x%08x does not match the delta's "
            "0x%08x — wrong or corrupted base image; refusing to "
            "destroy it" % (actual, header.reference_crc32),
            kind="reference",
            expected=header.reference_crc32, actual=actual,
        )


def preflight_in_place(script: DeltaScript, header, storage, *,
                       length: Optional[int] = None) -> None:
    """Verify-then-mutate gate: everything checkable before the first write.

    In-place application is destructive — the first copy command
    overwrites reference bytes that cannot be recovered — so this gate
    runs every check that does not require mutating ``storage``:

    * the reference digest recorded in the header (length + CRC32)
      matches the target image (:func:`verify_reference`);
    * every command's reads fall inside the reference and its writes
      inside the version region;
    * spill/fill scratch accesses fall inside the declared scratch.

    Raises :class:`~repro.exceptions.IntegrityError` or
    :class:`~repro.exceptions.DeltaRangeError` with ``storage``
    untouched.  The delta's own wire integrity (trailer, segments) is
    verified by :func:`~repro.delta.encode.decode_delta` before a
    script even exists, so a caller running ``decode -> preflight ->
    apply`` holds the full abort-before-mutate contract.
    """
    verify_reference(header, storage, length=length)
    reference_length = length if length is not None else len(storage)
    version_length = script.version_length
    write_bound = max(version_length, reference_length)
    scratch_length = script.scratch_length
    for i, cmd in enumerate(script.commands):
        if isinstance(cmd, (CopyCommand, SpillCommand)):
            if cmd.src + cmd.length > reference_length:
                raise DeltaRangeError(
                    "command %d reads [%d, %d) beyond reference of length %d"
                    % (i, cmd.src, cmd.src + cmd.length, reference_length)
                )
        if isinstance(cmd, SpillCommand):
            if cmd.scratch + cmd.length > scratch_length:
                raise DeltaRangeError(
                    "spill %d writes beyond declared scratch size %d"
                    % (i, scratch_length)
                )
            continue
        if isinstance(cmd, FillCommand) and \
                cmd.scratch + cmd.length > scratch_length:
            raise DeltaRangeError(
                "fill %d reads beyond declared scratch size %d"
                % (i, scratch_length)
            )
        if cmd.dst + cmd.length > write_bound:
            raise DeltaRangeError(
                "command %d writes [%d, %d) beyond the %d-byte version "
                "region" % (i, cmd.dst, cmd.dst + cmd.length, write_bound)
            )


def apply_delta(script: DeltaScript, reference: Buffer) -> bytes:
    """Materialize the version file in fresh storage (two-space apply).

    The script's write intervals must be disjoint and cover the version;
    call :meth:`DeltaScript.validate` first if the script is untrusted.
    Spill/fill commands are honoured so scratch-using in-place scripts
    also apply two-space (useful for verification on the server side).
    """
    recorder = perf.active()
    started = perf_counter() if recorder is not None else 0.0
    ref = memoryview(reference) if not isinstance(reference, memoryview) else reference
    out = bytearray(script.version_length)
    scratch = bytearray(script.scratch_length)
    for i, cmd in enumerate(script.commands):
        if isinstance(cmd, CopyCommand):
            end = cmd.src + cmd.length
            if end > len(ref):
                raise DeltaRangeError(
                    "command %d reads [%d, %d) beyond reference of length %d"
                    % (i, cmd.src, end, len(ref))
                )
            out[cmd.dst:cmd.dst + cmd.length] = ref[cmd.src:end]
        elif isinstance(cmd, AddCommand):
            out[cmd.dst:cmd.dst + cmd.length] = cmd.data
        elif isinstance(cmd, SpillCommand):
            end = cmd.src + cmd.length
            if end > len(ref):
                raise DeltaRangeError(
                    "spill %d reads [%d, %d) beyond reference of length %d"
                    % (i, cmd.src, end, len(ref))
                )
            scratch[cmd.scratch:cmd.scratch + cmd.length] = ref[cmd.src:end]
        else:  # FillCommand
            out[cmd.dst:cmd.dst + cmd.length] = \
                scratch[cmd.scratch:cmd.scratch + cmd.length]
    if recorder is not None:
        recorder.merge({
            "apply.two_space.calls": 1,
            "apply.two_space.seconds": perf_counter() - started,
            "apply.two_space.commands": len(script.commands),
            "apply.two_space.bytes": script.version_length,
        })
    return bytes(out)


def _directional_copy(buf: bytearray, src: int, dst: int, length: int, chunk: int) -> None:
    """Copy ``length`` bytes inside ``buf`` from ``src`` to ``dst``.

    Safe for overlapping ranges: copies left-to-right when ``src >= dst``
    and right-to-left otherwise, moving a window of at most ``chunk``
    bytes at a time (the paper's read/write buffer of any size).
    """
    if src == dst or length == 0:
        return
    if src >= dst:
        done = 0
        while done < length:
            step = min(chunk, length - done)
            buf[dst + done:dst + done + step] = buf[src + done:src + done + step]
            done += step
    else:
        done = length
        while done > 0:
            step = min(chunk, done)
            done -= step
            buf[dst + done:dst + done + step] = buf[src + done:src + done + step]


def apply_in_place(
    script: DeltaScript,
    buffer: bytearray,
    *,
    strict: bool = False,
    chunk_size: int = 4096,
) -> bytearray:
    """Execute ``script`` against ``buffer``, transforming reference to version.

    ``buffer`` enters holding the reference file and returns holding the
    version file; it is resized when the version is longer or shorter than
    the reference.  Commands execute serially in script order — the order
    the in-place converter chose.

    ``strict=True`` tracks written regions and raises
    :class:`WriteBeforeReadError` the moment a copy reads a byte some
    earlier command already wrote (a violation of Equation 2).  This is an
    executable proof of in-place safety and is used throughout the tests.

    ``chunk_size`` bounds the staging window for self-overlapping copies,
    modelling a device that can only buffer a few KiB of data in RAM.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive, got %d" % chunk_size)
    recorder = perf.active()
    started = perf_counter() if recorder is not None else 0.0
    original_length = len(buffer)
    needed = max(script.version_length, original_length)
    if needed > len(buffer):
        buffer.extend(b"\x00" * (needed - len(buffer)))

    written: Optional[DynamicIntervalSet] = DynamicIntervalSet() if strict else None
    scratch = bytearray(script.scratch_length)

    def check_read(i: int, cmd) -> None:
        end = cmd.src + cmd.length
        if end > original_length:
            raise DeltaRangeError(
                "command %d reads [%d, %d) beyond reference of length %d"
                % (i, cmd.src, end, original_length)
            )
        if written is not None:
            clash = written.first_intersection(cmd.read_interval)
            if clash is not None:
                raise WriteBeforeReadError(
                    "command %d reads [%d, %d] but bytes [%d, %d] were already "
                    "written; script is not in-place safe"
                    % (
                        i,
                        cmd.read_interval.start,
                        cmd.read_interval.stop,
                        clash.start,
                        clash.stop,
                    ),
                    reader_index=i,
                )

    for i, cmd in enumerate(script.commands):
        if isinstance(cmd, CopyCommand):
            check_read(i, cmd)
            _directional_copy(buffer, cmd.src, cmd.dst, cmd.length, chunk_size)
            if written is not None:
                written.add(cmd.write_interval)
        elif isinstance(cmd, AddCommand):
            buffer[cmd.dst:cmd.dst + cmd.length] = cmd.data
            if written is not None:
                written.add(cmd.write_interval)
        elif isinstance(cmd, SpillCommand):
            check_read(i, cmd)
            if cmd.scratch + cmd.length > len(scratch):
                raise DeltaRangeError(
                    "spill %d writes beyond declared scratch size %d"
                    % (i, len(scratch))
                )
            scratch[cmd.scratch:cmd.scratch + cmd.length] = \
                buffer[cmd.src:cmd.src + cmd.length]
        else:  # FillCommand: reads only scratch, immune to buffer writes
            if cmd.scratch + cmd.length > len(scratch):
                raise DeltaRangeError(
                    "fill %d reads beyond declared scratch size %d"
                    % (i, len(scratch))
                )
            buffer[cmd.dst:cmd.dst + cmd.length] = \
                scratch[cmd.scratch:cmd.scratch + cmd.length]
            if written is not None:
                written.add(cmd.write_interval)

    del buffer[script.version_length:]
    if recorder is not None:
        recorder.merge({
            "apply.in_place.calls": 1,
            "apply.in_place.seconds": perf_counter() - started,
            "apply.in_place.commands": len(script.commands),
            "apply.in_place.bytes": script.version_length,
        })
    return buffer


def reconstruct(script: DeltaScript, reference: Buffer, *, in_place: bool = False) -> bytes:
    """Convenience wrapper: rebuild the version from ``reference``.

    ``in_place=False`` uses the two-space engine; ``in_place=True`` copies
    the reference into a working buffer and runs the strict in-place
    engine (so unsafe scripts raise rather than corrupt).
    """
    if not in_place:
        return apply_delta(script, reference)
    buf = bytearray(reference)
    return bytes(apply_in_place(script, buf, strict=True))
