"""Reconstruction engines: two-space and in-place application.

Two engines execute a :class:`~repro.core.commands.DeltaScript`:

* :func:`apply_delta` is the conventional reconstructor.  It reads from a
  reference buffer and writes a *separate* version buffer, so command
  order is irrelevant.  This models a host with scratch space.

* :func:`apply_in_place` models the paper's constrained device.  It
  executes the script against a single buffer that initially holds the
  reference and finally holds the version, reading and writing the same
  storage.  Commands run *serially in script order*; a copy whose read and
  write intervals overlap is performed directionally (left-to-right when
  ``src >= dst``, right-to-left otherwise — paper, section 4.1), optionally
  through a bounded staging buffer to model a device with a small RAM
  window.

``apply_in_place`` on an unconverted script silently produces garbage on
inputs with write-before-read conflicts — exactly the failure mode the
paper opens with.  Pass ``strict=True`` to raise
:class:`~repro.exceptions.WriteBeforeReadError` at the first conflicting
command instead; the tests and benches use both modes.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import DeltaRangeError, WriteBeforeReadError
from .commands import AddCommand, CopyCommand, DeltaScript, FillCommand, SpillCommand
from .intervals import DynamicIntervalSet

Buffer = Union[bytes, bytearray, memoryview]


def apply_delta(script: DeltaScript, reference: Buffer) -> bytes:
    """Materialize the version file in fresh storage (two-space apply).

    The script's write intervals must be disjoint and cover the version;
    call :meth:`DeltaScript.validate` first if the script is untrusted.
    Spill/fill commands are honoured so scratch-using in-place scripts
    also apply two-space (useful for verification on the server side).
    """
    ref = memoryview(reference) if not isinstance(reference, memoryview) else reference
    out = bytearray(script.version_length)
    scratch = bytearray(script.scratch_length)
    for i, cmd in enumerate(script.commands):
        if isinstance(cmd, CopyCommand):
            end = cmd.src + cmd.length
            if end > len(ref):
                raise DeltaRangeError(
                    "command %d reads [%d, %d) beyond reference of length %d"
                    % (i, cmd.src, end, len(ref))
                )
            out[cmd.dst:cmd.dst + cmd.length] = ref[cmd.src:end]
        elif isinstance(cmd, AddCommand):
            out[cmd.dst:cmd.dst + cmd.length] = cmd.data
        elif isinstance(cmd, SpillCommand):
            end = cmd.src + cmd.length
            if end > len(ref):
                raise DeltaRangeError(
                    "spill %d reads [%d, %d) beyond reference of length %d"
                    % (i, cmd.src, end, len(ref))
                )
            scratch[cmd.scratch:cmd.scratch + cmd.length] = ref[cmd.src:end]
        else:  # FillCommand
            out[cmd.dst:cmd.dst + cmd.length] = \
                scratch[cmd.scratch:cmd.scratch + cmd.length]
    return bytes(out)


def _directional_copy(buf: bytearray, src: int, dst: int, length: int, chunk: int) -> None:
    """Copy ``length`` bytes inside ``buf`` from ``src`` to ``dst``.

    Safe for overlapping ranges: copies left-to-right when ``src >= dst``
    and right-to-left otherwise, moving a window of at most ``chunk``
    bytes at a time (the paper's read/write buffer of any size).
    """
    if src == dst or length == 0:
        return
    if src >= dst:
        done = 0
        while done < length:
            step = min(chunk, length - done)
            buf[dst + done:dst + done + step] = buf[src + done:src + done + step]
            done += step
    else:
        done = length
        while done > 0:
            step = min(chunk, done)
            done -= step
            buf[dst + done:dst + done + step] = buf[src + done:src + done + step]


def apply_in_place(
    script: DeltaScript,
    buffer: bytearray,
    *,
    strict: bool = False,
    chunk_size: int = 4096,
) -> bytearray:
    """Execute ``script`` against ``buffer``, transforming reference to version.

    ``buffer`` enters holding the reference file and returns holding the
    version file; it is resized when the version is longer or shorter than
    the reference.  Commands execute serially in script order — the order
    the in-place converter chose.

    ``strict=True`` tracks written regions and raises
    :class:`WriteBeforeReadError` the moment a copy reads a byte some
    earlier command already wrote (a violation of Equation 2).  This is an
    executable proof of in-place safety and is used throughout the tests.

    ``chunk_size`` bounds the staging window for self-overlapping copies,
    modelling a device that can only buffer a few KiB of data in RAM.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive, got %d" % chunk_size)
    original_length = len(buffer)
    needed = max(script.version_length, original_length)
    if needed > len(buffer):
        buffer.extend(b"\x00" * (needed - len(buffer)))

    written: Optional[DynamicIntervalSet] = DynamicIntervalSet() if strict else None
    scratch = bytearray(script.scratch_length)

    def check_read(i: int, cmd) -> None:
        end = cmd.src + cmd.length
        if end > original_length:
            raise DeltaRangeError(
                "command %d reads [%d, %d) beyond reference of length %d"
                % (i, cmd.src, end, original_length)
            )
        if written is not None:
            clash = written.first_intersection(cmd.read_interval)
            if clash is not None:
                raise WriteBeforeReadError(
                    "command %d reads [%d, %d] but bytes [%d, %d] were already "
                    "written; script is not in-place safe"
                    % (
                        i,
                        cmd.read_interval.start,
                        cmd.read_interval.stop,
                        clash.start,
                        clash.stop,
                    ),
                    reader_index=i,
                )

    for i, cmd in enumerate(script.commands):
        if isinstance(cmd, CopyCommand):
            check_read(i, cmd)
            _directional_copy(buffer, cmd.src, cmd.dst, cmd.length, chunk_size)
            if written is not None:
                written.add(cmd.write_interval)
        elif isinstance(cmd, AddCommand):
            buffer[cmd.dst:cmd.dst + cmd.length] = cmd.data
            if written is not None:
                written.add(cmd.write_interval)
        elif isinstance(cmd, SpillCommand):
            check_read(i, cmd)
            scratch[cmd.scratch:cmd.scratch + cmd.length] = \
                buffer[cmd.src:cmd.src + cmd.length]
        else:  # FillCommand: reads only scratch, immune to buffer writes
            buffer[cmd.dst:cmd.dst + cmd.length] = \
                scratch[cmd.scratch:cmd.scratch + cmd.length]
            if written is not None:
                written.add(cmd.write_interval)

    del buffer[script.version_length:]
    return buffer


def reconstruct(script: DeltaScript, reference: Buffer, *, in_place: bool = False) -> bytes:
    """Convenience wrapper: rebuild the version from ``reference``.

    ``in_place=False`` uses the two-space engine; ``in_place=True`` copies
    the reference into a working buffer and runs the strict in-place
    engine (so unsafe scripts raise rather than corrupt).
    """
    if not in_place:
        return apply_delta(script, reference)
    buf = bytearray(reference)
    return bytes(apply_in_place(script, buf, strict=True))
