"""Core algorithms: command model, CRWI digraph, in-place conversion, apply."""

from .apply import (
    apply_delta,
    apply_in_place,
    preflight_in_place,
    reconstruct,
    storage_crc32,
    verify_reference,
)
from .compose import compose_chain, compose_scripts
from .commands import (
    AddCommand,
    Command,
    CopyCommand,
    DeltaScript,
    FillCommand,
    SpillCommand,
    VersionWriter,
)
from .convert import (
    ConversionReport,
    InPlaceResult,
    compare_policies,
    make_in_place,
)
from .crwi import CRWIDigraph, build_crwi_digraph, lemma1_bound, read_bytes_bound
from .integrated import InPlaceDeltaBuilder, diff_in_place_integrated
from .optimize import OptimizeReport, optimize_script
from .intervals import DynamicIntervalSet, Interval, IntervalIndex
from .policies import (
    ConstantTimePolicy,
    CyclePolicy,
    LocallyMinimumPolicy,
    MaxOutDegreePolicy,
    exact_minimum_evictions,
    greedy_evictions,
    is_feedback_vertex_set,
    make_policy,
)
from .toposort import (
    ToposortResult,
    cycle_breaking_toposort,
    locality_toposort,
    plain_toposort,
)
from .verify import (
    adds_are_last,
    check_in_place_safe,
    count_wr_conflicts,
    find_first_conflict,
    is_in_place_safe,
    lint_in_place,
)

__all__ = [
    "AddCommand",
    "Command",
    "ConstantTimePolicy",
    "ConversionReport",
    "CopyCommand",
    "CRWIDigraph",
    "CyclePolicy",
    "DeltaScript",
    "DynamicIntervalSet",
    "FillCommand",
    "SpillCommand",
    "VersionWriter",
    "InPlaceDeltaBuilder",
    "InPlaceResult",
    "Interval",
    "IntervalIndex",
    "LocallyMinimumPolicy",
    "MaxOutDegreePolicy",
    "ToposortResult",
    "adds_are_last",
    "apply_delta",
    "apply_in_place",
    "preflight_in_place",
    "build_crwi_digraph",
    "check_in_place_safe",
    "compare_policies",
    "compose_chain",
    "compose_scripts",
    "count_wr_conflicts",
    "cycle_breaking_toposort",
    "diff_in_place_integrated",
    "exact_minimum_evictions",
    "find_first_conflict",
    "greedy_evictions",
    "is_feedback_vertex_set",
    "is_in_place_safe",
    "lemma1_bound",
    "lint_in_place",
    "locality_toposort",
    "make_in_place",
    "make_policy",
    "OptimizeReport",
    "optimize_script",
    "plain_toposort",
    "read_bytes_bound",
    "reconstruct",
    "storage_crc32",
    "verify_reference",
]
