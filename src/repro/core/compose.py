"""Delta composition: fold a chain of deltas into one.

A device several releases behind needs `v0 -> vN`.  The server holds
per-release deltas `d1: v0 -> v1, ..., dN: v(N-1) -> vN`; recomputing a
direct delta needs both full versions, but the deltas alone suffice:
**composition** rewrites `d2`'s commands to read from `v0` by mapping
each copy's read interval through `d1`'s write intervals,

* the part of a read that `d1` produced with a *copy* becomes a copy
  from `v0` (offsets translated through that copy);
* the part `d1` produced with an *add* becomes an add carrying those
  literal bytes sliced out of `d1`;

so ``apply(compose(d1, d2), v0) == apply(d2, apply(d1, v0))`` holds for
all inputs — the associativity the tests verify.  Because write
intervals are disjoint and sorted, each mapping is an
:class:`~repro.core.intervals.IntervalIndex` run: composition costs
``O(|d2| log |d1| + output)`` and never touches file data beyond the
adds already inside the deltas.

Composed deltas accumulate fragmentation (a read spanning many `d1`
commands splits), so :func:`compose_scripts` coalesces adjacent output
commands; the chain-update bench measures how composed size compares to
a direct delta across release chains.

Scratch-using scripts cannot be composed directly (spill/fill pairs are
tied to their own script's schedule); compose the *plain* deltas, then
convert the result for in-place application.
"""

from __future__ import annotations

from typing import List, Union

from ..exceptions import DeltaRangeError, ReproError
from .commands import AddCommand, Command, CopyCommand, DeltaScript
from .intervals import Interval, IntervalIndex

Buffer = Union[bytes, bytearray, memoryview]


class _Mapper:
    """Maps intervals of ``first``'s version space back to its reference."""

    def __init__(self, first: DeltaScript):
        self._commands = first.commands
        for cmd in self._commands:
            if not isinstance(cmd, (CopyCommand, AddCommand)):
                raise ReproError(
                    "cannot compose through %r; compose plain deltas and "
                    "convert the result instead" % (cmd,)
                )
        self._index = IntervalIndex([c.write_interval for c in self._commands])
        self._version_length = first.version_length

    def map_read(self, read: Interval, dst: int) -> List[Command]:
        """Commands producing the bytes of ``read`` at output offset ``dst``."""
        out: List[Command] = []
        cursor = read.start
        for j in self._index.overlapping(read):
            cmd = self._commands[j]
            part = cmd.write_interval.intersection(read)
            if part.start != cursor:
                raise DeltaRangeError(
                    "composition read [%d, %d] falls into a hole of the "
                    "first delta at offset %d" % (read.start, read.stop, cursor)
                )
            offset_in_cmd = part.start - cmd.write_interval.start
            out_dst = dst + (part.start - read.start)
            if isinstance(cmd, CopyCommand):
                out.append(
                    CopyCommand(cmd.src + offset_in_cmd, out_dst, part.length)
                )
            else:
                out.append(AddCommand(
                    out_dst,
                    cmd.data[offset_in_cmd:offset_in_cmd + part.length],
                ))
            cursor = part.stop + 1
        if cursor != read.stop + 1:
            raise DeltaRangeError(
                "composition read [%d, %d] extends past the first delta's "
                "version (length %d)"
                % (read.start, read.stop, self._version_length)
            )
        return out


def compose_scripts(first: DeltaScript, second: DeltaScript) -> DeltaScript:
    """The single delta equivalent to applying ``first`` then ``second``.

    Both inputs must be plain (copy/add) scripts; ``first`` must cover
    every byte ``second`` reads.  The result reads only ``first``'s
    reference and writes ``second``'s version, and is coalesced so
    adjacent mapped fragments merge back into single commands.
    """
    mapper = _Mapper(first)
    commands: List[Command] = []
    for cmd in second.commands:
        if isinstance(cmd, CopyCommand):
            commands.extend(mapper.map_read(cmd.read_interval, cmd.dst))
        elif isinstance(cmd, AddCommand):
            commands.append(cmd)
        else:
            raise ReproError(
                "cannot compose scripts containing %r; compose plain deltas "
                "and convert afterwards" % (cmd,)
            )
    composed = DeltaScript(commands, second.version_length)
    return composed.coalesced()


def compose_chain(deltas: List[DeltaScript]) -> DeltaScript:
    """Fold a whole release chain left to right into one delta."""
    if not deltas:
        raise ValueError("cannot compose an empty delta chain")
    result = deltas[0]
    for nxt in deltas[1:]:
        result = compose_scripts(result, nxt)
    return result
