"""Delta command model: copy commands, add commands, and delta scripts.

A delta file (paper, section 3) is an ordered sequence of two command
kinds:

* a **copy command** ``<f, t, l>`` copies the ``l`` bytes at reference
  offset ``f`` to version offset ``t``;
* an **add command** ``<t, l>`` followed by ``l`` literal bytes writes
  those bytes at version offset ``t``.

The write intervals of the commands in one script are disjoint and, for a
complete script, cover the whole version file, so any application order
materializes the same version — *when two file spaces are available*.
In-place application additionally requires the read-before-write order
that :mod:`repro.core.convert` establishes.

:class:`DeltaScript` is the in-memory representation shared by the
differencing algorithms (which produce it), the converter (which permutes
it), the codecs (which serialize it), and the appliers (which execute it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import DeltaRangeError, IncompleteCoverError, OverlappingWriteError
from .intervals import Interval, are_disjoint, find_gaps, merge_intervals, merge_intervals


@dataclass(frozen=True)
class CopyCommand:
    """Copy ``length`` bytes from reference offset ``src`` to version offset ``dst``.

    This is the paper's ordered triple ``<f, t, l>`` with ``f = src``,
    ``t = dst``, ``l = length``.
    """

    src: int
    dst: int
    length: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise DeltaRangeError(
                "copy offsets must be non-negative: src=%d dst=%d" % (self.src, self.dst)
            )
        if self.length <= 0:
            raise DeltaRangeError("copy length must be positive, got %d" % self.length)

    @property
    def read_interval(self) -> Interval:
        """The closed reference interval ``[f, f+l-1]`` this command reads."""
        return Interval.from_length(self.src, self.length)

    @property
    def write_interval(self) -> Interval:
        """The closed version interval ``[t, t+l-1]`` this command writes."""
        return Interval.from_length(self.dst, self.length)

    @property
    def self_overlapping(self) -> bool:
        """True when the read and write intervals intersect.

        Such a command is still safe in place: copy left-to-right when
        ``src >= dst`` and right-to-left otherwise (paper, section 4.1).
        """
        return self.read_interval.intersects(self.write_interval)

    def conflicts_with(self, later: "CopyCommand") -> bool:
        """Equation 1: would executing ``self`` before ``later`` corrupt ``later``?

        True when ``self``'s write interval intersects ``later``'s read
        interval, i.e. ``self`` overwrites bytes ``later`` still needs.
        """
        return self.write_interval.intersects(later.read_interval)

    def to_add(self, reference: Union[bytes, bytearray, memoryview]) -> "AddCommand":
        """The equivalent add command, with data taken from ``reference``.

        This is the conversion the cycle-breaking step performs: the copied
        string is materialized into the delta itself.
        """
        end = self.src + self.length
        if end > len(reference):
            raise DeltaRangeError(
                "copy reads [%d, %d) beyond reference of length %d"
                % (self.src, end, len(reference))
            )
        return AddCommand(self.dst, bytes(reference[self.src:end]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Copy(src=%d, dst=%d, len=%d)" % (self.src, self.dst, self.length)


@dataclass(frozen=True)
class AddCommand:
    """Write the literal ``data`` at version offset ``dst``.

    This is the paper's ordered pair ``<t, l>`` followed by ``l`` bytes.
    """

    dst: int
    data: bytes

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise DeltaRangeError("add offset must be non-negative, got %d" % self.dst)
        if len(self.data) == 0:
            raise DeltaRangeError("add command must carry at least one byte")

    @property
    def length(self) -> int:
        """Number of literal bytes written."""
        return len(self.data)

    @property
    def write_interval(self) -> Interval:
        """The closed version interval ``[t, t+l-1]`` this command writes."""
        return Interval.from_length(self.dst, self.length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.data[:8]
        return "Add(dst=%d, len=%d, data=%r%s)" % (
            self.dst,
            self.length,
            preview,
            "..." if self.length > 8 else "",
        )


@dataclass(frozen=True)
class SpillCommand:
    """Save ``length`` reference bytes at ``src`` into scratch at ``scratch``.

    The bounded-scratch extension (anticipated by the paper's conclusion
    and developed in the authors' journal follow-up): instead of paying
    ``l - |f|`` bytes of compression to convert a cycle-breaking copy to
    an add, the copy's *source* data is saved to a small scratch buffer
    before any write clobbers it, and later restored by the matching
    :class:`FillCommand`.  A spill reads the reference and writes only
    scratch, so placed at the front of a script it can never conflict.
    """

    src: int
    scratch: int
    length: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.scratch < 0:
            raise DeltaRangeError(
                "spill offsets must be non-negative: src=%d scratch=%d"
                % (self.src, self.scratch)
            )
        if self.length <= 0:
            raise DeltaRangeError("spill length must be positive, got %d" % self.length)

    @property
    def read_interval(self) -> Interval:
        """The reference interval this command reads."""
        return Interval.from_length(self.src, self.length)

    @property
    def scratch_interval(self) -> Interval:
        """The scratch interval this command fills."""
        return Interval.from_length(self.scratch, self.length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Spill(src=%d, scratch=%d, len=%d)" % (self.src, self.scratch, self.length)


@dataclass(frozen=True)
class FillCommand:
    """Write ``length`` bytes from scratch offset ``scratch`` to version ``dst``.

    The restoring half of a spill/fill pair.  Fills read only scratch
    (which no copy or add can overwrite), so like adds they are placed
    after every copy command.
    """

    scratch: int
    dst: int
    length: int

    def __post_init__(self) -> None:
        if self.scratch < 0 or self.dst < 0:
            raise DeltaRangeError(
                "fill offsets must be non-negative: scratch=%d dst=%d"
                % (self.scratch, self.dst)
            )
        if self.length <= 0:
            raise DeltaRangeError("fill length must be positive, got %d" % self.length)

    @property
    def scratch_interval(self) -> Interval:
        """The scratch interval this command reads."""
        return Interval.from_length(self.scratch, self.length)

    @property
    def write_interval(self) -> Interval:
        """The closed version interval this command writes."""
        return Interval.from_length(self.dst, self.length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Fill(scratch=%d, dst=%d, len=%d)" % (self.scratch, self.dst, self.length)


Command = Union[CopyCommand, AddCommand, SpillCommand, FillCommand]

#: Commands that write an interval of the version file.
VersionWriter = (CopyCommand, AddCommand, FillCommand)


@dataclass
class DeltaScript:
    """An ordered sequence of delta commands encoding one version file.

    ``commands`` preserves application order, which matters only for
    in-place scripts; for ordinary two-space scripts any order is
    equivalent.  ``version_length`` records the length of the version file
    the script materializes (the paper's ``L_V``); it is validated against
    the commands when :meth:`validate` runs.
    """

    commands: List[Command] = field(default_factory=list)
    version_length: int = 0

    # -- construction -------------------------------------------------

    @classmethod
    def from_commands(
        cls, commands: Iterable[Command], version_length: Optional[int] = None
    ) -> "DeltaScript":
        """Build a script, inferring ``version_length`` when not given."""
        cmds = list(commands)
        if version_length is None:
            version_length = 0
            for cmd in cmds:
                if isinstance(cmd, VersionWriter):
                    version_length = max(version_length, cmd.write_interval.stop + 1)
        return cls(cmds, version_length)

    # -- views ---------------------------------------------------------

    def copies(self) -> List[CopyCommand]:
        """The copy commands, in script order."""
        return [c for c in self.commands if isinstance(c, CopyCommand)]

    def adds(self) -> List[AddCommand]:
        """The add commands, in script order."""
        return [c for c in self.commands if isinstance(c, AddCommand)]

    def spills(self) -> List[SpillCommand]:
        """The spill commands (reference -> scratch), in script order."""
        return [c for c in self.commands if isinstance(c, SpillCommand)]

    def fills(self) -> List[FillCommand]:
        """The fill commands (scratch -> version), in script order."""
        return [c for c in self.commands if isinstance(c, FillCommand)]

    @property
    def scratch_length(self) -> int:
        """Bytes of scratch buffer this script needs (0 when none used)."""
        needed = 0
        for cmd in self.commands:
            if isinstance(cmd, (SpillCommand, FillCommand)):
                needed = max(needed, cmd.scratch_interval.stop + 1)
        return needed

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self) -> Iterator[Command]:
        return iter(self.commands)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeltaScript):
            return NotImplemented
        return (
            self.commands == other.commands
            and self.version_length == other.version_length
        )

    # -- statistics ----------------------------------------------------

    @property
    def copied_bytes(self) -> int:
        """Total bytes materialized through copy commands."""
        return sum(c.length for c in self.commands if isinstance(c, CopyCommand))

    @property
    def added_bytes(self) -> int:
        """Total literal bytes carried in add commands."""
        return sum(c.length for c in self.commands if isinstance(c, AddCommand))

    def stats(self) -> dict:
        """Summary counters used by the analysis and CLI layers."""
        copies = self.copies()
        adds = self.adds()
        fills = self.fills()
        return {
            "commands": len(self.commands),
            "copies": len(copies),
            "adds": len(adds),
            "spills": len(self.spills()),
            "fills": len(fills),
            "copied_bytes": sum(c.length for c in copies),
            "added_bytes": sum(a.length for a in adds),
            "scratch_bytes": sum(f.length for f in fills),
            "scratch_length": self.scratch_length,
            "version_length": self.version_length,
            "self_overlapping_copies": sum(1 for c in copies if c.self_overlapping),
        }

    # -- validation ----------------------------------------------------

    def validate(
        self,
        reference_length: Optional[int] = None,
        require_cover: bool = True,
    ) -> None:
        """Check the structural invariants of a well-formed delta script.

        * write intervals are pairwise disjoint;
        * write intervals lie inside ``[0, version_length)``;
        * read intervals lie inside ``[0, reference_length)`` when a
          reference length is supplied;
        * when ``require_cover`` is set, the write intervals exactly cover
          the version file.

        Raises the matching :mod:`repro.exceptions` subtype on the first
        violation found.
        """
        writers = [
            (i, cmd) for i, cmd in enumerate(self.commands)
            if isinstance(cmd, VersionWriter)
        ]
        writes = [cmd.write_interval for _, cmd in writers]
        if not are_disjoint(writes):
            items = sorted((cmd.write_interval, i) for i, cmd in writers)
            for (a, ai), (b, bi) in zip(items, items[1:]):
                if b.start <= a.stop:
                    raise OverlappingWriteError(
                        "commands %d and %d write overlapping intervals %r and %r"
                        % (ai, bi, a, b)
                    )
        for i, cmd in writers:
            wi = cmd.write_interval
            if wi.stop >= self.version_length:
                raise DeltaRangeError(
                    "command %d writes %r beyond version length %d"
                    % (i, wi, self.version_length)
                )
        if reference_length is not None:
            for i, cmd in enumerate(self.commands):
                if isinstance(cmd, (CopyCommand, SpillCommand)):
                    ri = cmd.read_interval
                    if ri.stop >= reference_length:
                        raise DeltaRangeError(
                            "command %d reads %r beyond reference length %d"
                            % (i, ri, reference_length)
                        )
        self._validate_scratch()
        if require_cover and self.version_length > 0:
            gaps = find_gaps(writes, Interval(0, self.version_length - 1))
            if gaps:
                raise IncompleteCoverError(
                    "version bytes not produced by any command: %s"
                    % ", ".join("[%d, %d]" % (g.start, g.stop) for g in gaps[:5]),
                    gaps=[(g.start, g.stop + 1) for g in gaps],
                )

    def _validate_scratch(self) -> None:
        """Check spill/fill consistency: disjoint spills covering all fills."""
        spill_intervals = [cmd.scratch_interval for cmd in self.spills()]
        if not are_disjoint(spill_intervals):
            raise OverlappingWriteError(
                "spill commands write overlapping scratch intervals"
            )
        fills = self.fills()
        if fills:
            covered = merge_intervals(spill_intervals)
            for i, cmd in enumerate(fills):
                if not any(iv.contains_interval(cmd.scratch_interval) for iv in covered):
                    raise DeltaRangeError(
                        "fill %d reads scratch %r that no single spill region covers"
                        % (i, cmd.scratch_interval)
                    )

    def is_valid(self, reference_length: Optional[int] = None) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(reference_length=reference_length)
        except Exception:
            return False
        return True

    # -- transforms ----------------------------------------------------

    @staticmethod
    def _write_order_key(cmd: Command) -> int:
        """Sort key by version write offset; spills (no write) sort first."""
        if isinstance(cmd, VersionWriter):
            return cmd.write_interval.start
        return -1

    def in_write_order(self) -> "DeltaScript":
        """A copy of the script with commands sorted by write offset."""
        ordered = sorted(self.commands, key=self._write_order_key)
        return DeltaScript(ordered, self.version_length)

    def coalesced(self) -> "DeltaScript":
        """Merge adjacent commands that can be expressed as one.

        Consecutive-in-write-order copies with contiguous source and
        destination ranges merge into one copy; adjacent adds merge into
        one add.  Spills and fills are never merged.  Used by the
        differencing algorithms to tidy output and by tests to normalize
        scripts for comparison.
        """
        ordered = sorted(self.commands, key=self._write_order_key)
        merged: List[Command] = []
        for cmd in ordered:
            if merged:
                prev = merged[-1]
                if (
                    isinstance(prev, CopyCommand)
                    and isinstance(cmd, CopyCommand)
                    and prev.dst + prev.length == cmd.dst
                    and prev.src + prev.length == cmd.src
                ):
                    merged[-1] = CopyCommand(prev.src, prev.dst, prev.length + cmd.length)
                    continue
                if (
                    isinstance(prev, AddCommand)
                    and isinstance(cmd, AddCommand)
                    and prev.dst + prev.length == cmd.dst
                ):
                    merged[-1] = AddCommand(prev.dst, prev.data + cmd.data)
                    continue
            merged.append(cmd)
        return DeltaScript(merged, self.version_length)
