"""Array kernels for the convert plane (CRWI construction and toposort).

Mirrors ``repro.delta._kernels``: every kernel here is a vectorized
twin of a scalar loop that stays in the library as the ``_reference``
oracle, and `tests/test_vectorized_oracle.py` pins the two bit-identical.
The kernels operate on flat int64 arrays:

* the CRWI adjacency is CSR (``indptr``/``indices``) — per-vertex
  successor runs in one contiguous ``indices`` buffer, the
  representation Kammer & Sajenko's in-place graph traversals assume;
* edge construction exploits the paper's section-4.3 observation that
  the write intervals are disjoint and sorted, so each copy's read
  interval overlaps a *contiguous run* of write intervals found by two
  ``searchsorted`` passes over the whole command set at once;
* the toposort peels (forward indegree / reverse outdegree) advance in
  whole frontier waves via ``bincount`` decrements instead of
  one-vertex-at-a-time queue pops.

Everything degrades gracefully: when numpy is missing, ``HAVE_NUMPY``
is False and the callers fall back to their scalar references.  The
fast/scalar switch is shared with the differencing plane
(``repro.delta.rolling.use_fast_paths`` / ``REPRO_NO_FAST``) so one pin
freezes the whole library to its oracles.
"""

from __future__ import annotations

from typing import Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


def fast_enabled() -> bool:
    """True when numpy is present and the library-wide fast-path switch is on.

    The switch lives in ``repro.delta.rolling`` (set via
    ``use_fast_paths`` or the ``REPRO_NO_FAST`` environment pin); the
    import is deferred because ``repro.delta`` imports ``repro.core`` at
    package load.
    """
    if not HAVE_NUMPY:
        return False
    from ..delta.rolling import fast_paths_enabled

    return fast_paths_enabled()


# --------------------------------------------------------------------------
# CRWI edge construction


def crwi_edges(srcs: "np.ndarray", dsts: "np.ndarray", lens: "np.ndarray",
               ) -> Tuple["np.ndarray", "np.ndarray"]:
    """CSR successor adjacency for copies sorted by write offset.

    ``dsts`` must be ascending with disjoint write intervals
    ``[dst, dst+len-1]`` (the caller validates).  Edge ``i -> j`` exists
    when ``i``'s read interval ``[src, src+len-1]`` meets ``j``'s write
    interval; because the write intervals are disjoint and sorted, the
    ``j`` for a given ``i`` form a contiguous run ``[lo_i, hi_i)``
    located with two ``searchsorted`` passes.  Self-edges are masked out
    during the ragged expansion.  Row order is ascending ``j``, matching
    the scalar ``IntervalIndex.overlapping`` append order.
    """
    n = int(srcs.shape[0])
    starts = dsts
    stops = dsts + lens - 1
    read_start = srcs
    read_stop = srcs + lens - 1
    lo = np.searchsorted(starts, read_start, side="right") - 1
    # The run starts one later when the interval at lo ends before the
    # read begins (or lo underflowed).
    bump = (lo < 0) | (stops[np.maximum(lo, 0)] < read_start)
    lo = lo + bump
    hi = np.searchsorted(starts, read_stop, side="right")
    counts = np.maximum(hi - lo, 0)
    rows = np.arange(n, dtype=np.int64)
    has_self = (lo <= rows) & (rows < hi) & (counts > 0)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts - has_self, out=indptr[1:])
    total = int(counts.sum())
    if total == 0:
        return indptr, np.empty(0, dtype=np.int64)
    rep_rows = np.repeat(rows, counts)
    run_base = np.cumsum(counts) - counts
    flat = (np.arange(total, dtype=np.int64)
            - np.repeat(run_base, counts)
            + np.repeat(lo, counts))
    indices = flat[flat != rep_rows]
    return indptr, indices


def csr_transpose(indptr: "np.ndarray", indices: "np.ndarray", n: int,
                  ) -> Tuple["np.ndarray", "np.ndarray"]:
    """Predecessor CSR from a successor CSR.

    The stable argsort keeps each predecessor row in ascending source
    order — exactly the order the scalar builder appends them in.
    """
    pred_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(indices, minlength=n), out=pred_indptr[1:])
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    pred_indices = rows[np.argsort(indices, kind="stable")]
    return pred_indptr, pred_indices


def rows_from_csr(indptr: "np.ndarray", indices: "np.ndarray") -> list:
    """Materialize CSR rows back into canonical python adjacency lists."""
    flat = indices.tolist()
    bounds = indptr.tolist()
    return [flat[bounds[i]:bounds[i + 1]] for i in range(len(bounds) - 1)]


def subgraph_csr(indptr: "np.ndarray", indices: "np.ndarray",
                 keep: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
    """CSR of the induced subgraph on ``keep`` (bool mask), renumbered.

    Within-row edge order is preserved, so the result matches the scalar
    rebuild that replays surviving successor lists in order.
    """
    n = int(keep.shape[0])
    renumber = np.cumsum(keep) - 1
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    keep_edge = keep[rows] & keep[indices]
    new_rows = renumber[rows[keep_edge]]
    new_cols = renumber[indices[keep_edge]]
    m = int(keep.sum())
    new_indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(new_rows, minlength=m), out=new_indptr[1:])
    return new_indptr, new_cols.astype(np.int64, copy=False)


# --------------------------------------------------------------------------
# Eviction pricing

# varint_size(v) = 1 + (number of thresholds 128^k <= v); int64 values
# never need more than 9 bytes, so k runs 1..8.
_VARINT_THRESHOLDS: Optional["np.ndarray"] = None


def varint_sizes(values: "np.ndarray") -> "np.ndarray":
    """Encoded LEB128 sizes for an array of non-negative offsets."""
    global _VARINT_THRESHOLDS
    if _VARINT_THRESHOLDS is None:
        _VARINT_THRESHOLDS = np.array(
            [1 << (7 * k) for k in range(1, 9)], dtype=np.int64)
    return 1 + np.searchsorted(_VARINT_THRESHOLDS, values, side="right")


def eviction_costs(lens: "np.ndarray", srcs: "np.ndarray",
                   fixed_width: Optional[int]) -> "np.ndarray":
    """Batch ``max(1, length - |f|)`` pricing (section 5 cost model).

    ``fixed_width=None`` selects varint pricing of the source offsets.
    """
    widths = varint_sizes(srcs) if fixed_width is None else fixed_width
    return np.maximum(lens - widths, 1)


# --------------------------------------------------------------------------
# Toposort peels

#: Minimum vertex count before the wave peels dispatch to numpy.  Each
#: wave costs ~10 kernel launches regardless of width, so tiny graphs
#: are pure overhead; above the gate the peel is adaptive (see
#: ``NARROW_WAVE``), so the worst case is one wasted setup pass.
#: Mirrors the `_FLATTEN_AFTER` hybrid in ``repro.delta._kernels``.
ARRAY_PEEL_MIN = 4096

#: Frontier width below which a peel wave is cheaper in the scalar
#: loop than as a batch of kernel launches.  Shift-driven delta graphs
#: peel in long narrow chains (wave width a handful), where the numpy
#: wave loop loses by integer factors; Figure 3-family graphs peel in
#: one wave proportional to the input, where it wins.  The peels start
#: vectorized and hand the remaining fringe to the scalar loop the
#: first time a wave comes in under this width — the wave sequence is
#: identical on both sides of the switch, so the hybrid stays
#: bit-compatible with the pure-scalar oracle.
NARROW_WAVE = 64

#: Minimum vertex count for one-shot array setup passes (restricted
#: indegree counting, subgraph masking) — a handful of kernel launches
#: with no wave loop, so they amortize much earlier than the peels.
ARRAY_SETUP_MIN = 512


def _gather(indptr: "np.ndarray", indices: "np.ndarray",
            rows: "np.ndarray") -> "np.ndarray":
    """Concatenate the CSR rows of ``rows`` (ragged multi-row gather)."""
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    run_base = np.cumsum(counts) - counts
    rel = np.arange(total, dtype=np.int64) - np.repeat(run_base, counts)
    return indices[np.repeat(indptr[rows], counts) + rel]


def _next_wave(degree: "np.ndarray", active: "np.ndarray",
               touched: "np.ndarray") -> "np.ndarray":
    """Ascending active vertices of ``touched`` whose degree just hit zero.

    ``touched`` may repeat a vertex (several wave members share a
    neighbor); a counter reaches zero exactly once per peel, so the
    duplicates are all within this call and one sorted adjacent-dedup
    pass restores the reference's set semantics.  Kept to a handful of
    cheap launches — this runs once per wave, and waves can number in
    the thousands on chain-shaped graphs.
    """
    wave = touched[(degree[touched] == 0) & active[touched]]
    if wave.size > 1:
        wave = np.sort(wave)
        keep = np.empty(wave.shape[0], dtype=bool)
        keep[0] = True
        np.not_equal(wave[1:], wave[:-1], out=keep[1:])
        wave = wave[keep]
    return wave


def _finish_peel_scalar(degree: "np.ndarray", active: "np.ndarray",
                        frontier: "np.ndarray", row) -> Tuple[list, "np.ndarray"]:
    """Finish one peel direction with the scalar wave loop.

    Takes over mid-peel when the frontier narrows: ``degree`` is the
    live indegree (forward) or outdegree (reverse) array, ``row`` maps a
    vertex to the neighbor list its removal decrements.  Returns the
    remaining waves and the updated active mask.  A degree counter hits
    zero exactly once, so the candidate buffers cannot collect
    duplicates; sorting them reproduces the kernel's ascending waves.
    """
    deg = degree.tolist()
    act = active.tolist()
    wave = frontier.tolist()
    waves = []
    while wave:
        waves.append(wave)
        for u in wave:
            act[u] = False
        cand: list = []
        for u in wave:
            for v in row(u):
                deg[v] -= 1
                if deg[v] == 0:
                    cand.append(v)
        wave = sorted(v for v in cand if act[v])
    return waves, np.array(act, dtype=bool)


def toposort_peel(indptr: "np.ndarray", indices: "np.ndarray",
                  pred_indptr: "np.ndarray", pred_indices: "np.ndarray",
                  succ_row=None, pred_row=None,
                  ) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Peel the acyclic fringe off a digraph in frontier waves.

    Returns ``(prefix, core, suffix)``:

    * ``prefix`` — vertices with no cycle among their ancestors, in
      layered Kahn order (ascending within each indegree-zero wave);
    * ``core`` — the remaining cyclic core, ascending (the scalar
      gray-path DFS takes over here);
    * ``suffix`` — vertices with no cycle among their descendants,
      ordered so every edge into them is satisfied when the suffix is
      appended after the core (reverse outdegree peel, waves reversed).

    On an acyclic graph ``core`` and ``suffix`` are empty and ``prefix``
    is a complete layered topological order.

    ``succ_row`` / ``pred_row`` (vertex -> neighbor list callables)
    enable the adaptive narrow-wave fallback: each peel direction runs
    vectorized while its waves are at least ``NARROW_WAVE`` wide and
    hands the rest to the scalar loop the first time one is not, so
    chain-shaped fringes never pay per-wave kernel-launch overhead.
    Without the callables the peel stays pure numpy.
    """
    n = int(indptr.shape[0]) - 1
    empty = np.empty(0, dtype=np.int64)
    active = np.ones(n, dtype=bool)

    indeg = np.diff(pred_indptr).copy()
    prefix_waves = []
    frontier = np.flatnonzero(indeg == 0)
    while frontier.size:
        if succ_row is not None and frontier.size < NARROW_WAVE:
            tail, active = _finish_peel_scalar(indeg, active, frontier,
                                               succ_row)
            prefix_waves.extend(
                np.array(w, dtype=np.int64) for w in tail)
            break
        prefix_waves.append(frontier)
        active[frontier] = False
        succs = _gather(indptr, indices, frontier)
        if not succs.size:
            break
        np.subtract.at(indeg, succs, 1)
        frontier = _next_wave(indeg, active, succs)

    outdeg = np.diff(indptr).copy()
    suffix_waves = []
    frontier = np.flatnonzero(active & (outdeg == 0))
    while frontier.size:
        if pred_row is not None and frontier.size < NARROW_WAVE:
            tail, active = _finish_peel_scalar(outdeg, active, frontier,
                                               pred_row)
            suffix_waves.extend(
                np.array(w, dtype=np.int64) for w in tail)
            break
        suffix_waves.append(frontier)
        active[frontier] = False
        preds = _gather(pred_indptr, pred_indices, frontier)
        if not preds.size:
            break
        np.subtract.at(outdeg, preds, 1)
        frontier = _next_wave(outdeg, active, preds)

    prefix = np.concatenate(prefix_waves) if prefix_waves else empty
    suffix = (np.concatenate(suffix_waves[::-1]) if suffix_waves else empty)
    return prefix, np.flatnonzero(active), suffix


def layered_toposort(indptr: "np.ndarray", indices: "np.ndarray",
                     dead: "np.ndarray") -> Optional["np.ndarray"]:
    """Layered Kahn order of the live subgraph; None if a cycle remains.

    ``dead`` is a bool mask of excluded vertices.  Waves are emitted in
    ascending order, matching the scalar reference peel.
    """
    n = int(dead.shape[0])
    live = ~dead
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    keep_edge = live[rows] & live[indices]
    indeg = np.bincount(indices[keep_edge], minlength=n)
    active = live.copy()
    waves = []
    emitted = 0
    frontier = np.flatnonzero(live & (indeg == 0))
    while frontier.size:
        waves.append(frontier)
        emitted += int(frontier.size)
        active[frontier] = False
        succs = _gather(indptr, indices, frontier)
        succs = succs[live[succs]]
        if not succs.size:
            break
        np.subtract.at(indeg, succs, 1)
        frontier = _next_wave(indeg, active, succs)
    if emitted != int(live.sum()):
        return None
    return (np.concatenate(waves) if waves else np.empty(0, dtype=np.int64))


def restricted_indegrees(indptr: "np.ndarray", indices: "np.ndarray",
                         dead: "np.ndarray") -> "np.ndarray":
    """Indegrees of the live subgraph (edges with both endpoints live)."""
    n = int(dead.shape[0])
    live = ~dead
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    keep_edge = live[rows] & live[indices]
    return np.bincount(indices[keep_edge], minlength=n)
