"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The subtypes
distinguish the three phases a delta travels through: construction
(differencing and encoding), conversion (in-place post-processing), and
application (reconstruction on the target).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DeltaFormatError(ReproError):
    """A serialized delta file is malformed or truncated."""


class DeltaRangeError(ReproError):
    """A delta command addresses bytes outside its file bounds."""


class OverlappingWriteError(ReproError):
    """Two commands in one delta script write to intersecting intervals.

    Delta scripts must have disjoint write intervals (paper, section 3);
    a script violating this cannot encode a well-defined version file.
    """


class IncompleteCoverError(ReproError):
    """A delta script's write intervals do not cover the whole version."""

    def __init__(self, message: str, gaps=None):
        super().__init__(message)
        #: List of (start, stop) half-open gaps left uncovered, if known.
        self.gaps = list(gaps) if gaps is not None else []


class WriteBeforeReadError(ReproError):
    """An in-place script would read a region it has already written.

    Raised by the verifier (and by the strict in-place applier) when a
    script violates Equation 2 of the paper.
    """

    def __init__(self, message: str, writer_index: int = -1, reader_index: int = -1):
        super().__init__(message)
        #: Position (in application order) of the earlier, writing command.
        self.writer_index = writer_index
        #: Position (in application order) of the later, reading command.
        self.reader_index = reader_index


class CycleBreakError(ReproError):
    """A cycle-breaking policy failed to produce a usable eviction."""


class DeviceError(ReproError):
    """Base class for simulated-device failures."""


class OutOfMemoryError(DeviceError):
    """The simulated device exceeded its RAM budget."""


class StorageBoundsError(DeviceError):
    """An access fell outside the simulated device's storage image."""


class TransmissionError(DeviceError):
    """The simulated channel dropped or corrupted a payload."""


class VerificationError(ReproError):
    """A reconstructed image failed its integrity check."""


class IntegrityError(ReproError):
    """A digest guarding a delta, reference, or journal did not match.

    Raised *before* destructive work whenever possible (the preflight
    gate) and with position info when corruption is caught mid-stream.
    ``kind`` names the failed check so handlers can distinguish a
    corrupt delivery (retransmittable) from a wrong reference image
    (deterministic — retrying cannot help):

    ``trailer``
        The delta file's end-of-file CRC over the whole payload failed.
    ``segment``
        A rolling per-segment CRC failed mid-stream; ``offset`` is the
        wire position of the failing checkpoint.
    ``reference``
        The target buffer does not match the digest the delta was built
        against — applying would brick the image.
    ``version``
        The reconstructed image failed the version checksum.
    ``journal``
        A journal record's CRC failed somewhere other than the torn
        tail (bit rot in the journal sector).
    ``resume``
        After a power cut, the already-applied regions of storage no
        longer match the journal's cumulative digest.
    """

    def __init__(self, message: str, *, kind: str = "", offset: int = -1,
                 expected: int = -1, actual: int = -1):
        super().__init__(message)
        #: Which check failed (see class docstring).
        self.kind = kind
        #: Byte position of the failure, when known (-1 otherwise).
        self.offset = offset
        #: Expected digest value, when known (-1 otherwise).
        self.expected = expected
        #: Observed digest value, when known (-1 otherwise).
        self.actual = actual


class InjectedFault(ReproError):
    """A deterministic fault raised by the fault-injection plane.

    Carries the site it fired at so handlers and traces can attribute
    the failure without parsing the message.
    """

    def __init__(self, message: str, site: str = "", index: int = 0):
        super().__init__(message)
        #: Fault site name (``"diff.worker"``, ``"channel.transmit"``, ...).
        self.site = site
        #: 1-based call index at which the site fired.
        self.index = index


class StageTimeoutError(ReproError):
    """A pipeline stage exceeded its configured wall-clock budget.

    Raised both by the pipeline's watchdog (a stage genuinely overran)
    and by the fault plane's ``timeout`` error kind (a simulated stall).
    """


class StoreError(ReproError):
    """A persistent pack store is damaged or was misused.

    ``kind`` names the failure class so callers (and ``fsck`` reports)
    can distinguish recoverable damage from misuse:

    ``torn``
        The pack file ends in a partially-written record (a crash mid
        append).  Intact records before the tear stay readable;
        ``gc(repair=True)`` truncates the tear.
    ``index``
        The index file disagrees with the pack (missing, corrupt, or
        describing records beyond the pack's end).  The store falls
        back to scanning the pack; ``gc(repair=True)`` rewrites it.
    ``pack``
        The pack file itself is unusable (bad magic, missing file).
    ``damaged``
        A mutating operation was attempted on a store with known
        damage; run ``gc(repair=True)`` first.
    ``chain``
        A delta chain exceeded its configured depth bound or references
        a missing base object.
    ``object``
        A stored object failed verification when read back (its record
        re-reads damaged, or the reconstructed bytes do not match the
        content digest it was filed under).
    """

    def __init__(self, message: str, *, kind: str = "", offset: int = -1):
        super().__init__(message)
        #: Which failure class (see class docstring).
        self.kind = kind
        #: Byte position in the pack file, when known (-1 otherwise).
        self.offset = offset
