"""Process-global, opt-in performance counters and timers.

Design constraints (the hot paths this instruments run millions of
Python operations per second):

* **Disabled is near-free.**  Instrumented code calls module-level
  :func:`add`/:func:`timer` — each checks one module global against
  ``None`` and returns.  Hot loops never call into this module per
  iteration; they accumulate into local variables and report one
  aggregate per call, and they may skip even that accumulation when
  :func:`active` returned ``None`` at entry.

* **Thread-safe when enabled.**  The pipeline's thread pools report
  concurrently; :class:`PerfRecorder` guards its dict with a lock.

* **Counters are flat.**  ``"diff.greedy.calls" -> 3`` — a plain dict
  keyed by dotted names, trivially JSON-serializable into bench
  artifacts.  The counter names are documented in
  ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

Number = float


class PerfRecorder:
    """A bag of named counters with add/merge/snapshot operations."""

    __slots__ = ("_lock", "_counters")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Accumulate ``value`` into counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def merge(self, counters: Dict[str, Number]) -> None:
        """Accumulate a whole counter dict (e.g. another recorder's)."""
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value

    @property
    def counters(self) -> Dict[str, Number]:
        """A snapshot copy of the counters."""
        with self._lock:
            return dict(self._counters)

    def get(self, name: str, default: Number = 0) -> Number:
        with self._lock:
            return self._counters.get(name, default)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PerfRecorder(%r)" % (self.counters,)


#: The active recorder, or None (the default: telemetry off).
_ACTIVE: Optional[PerfRecorder] = None
_ACTIVATION_LOCK = threading.Lock()


def active() -> Optional[PerfRecorder]:
    """The currently active recorder, or ``None`` when telemetry is off.

    Hot paths call this once at function entry and branch on the result,
    so per-iteration work stays untouched when recording is disabled.
    """
    return _ACTIVE


def add(name: str, value: Number = 1) -> None:
    """Accumulate into the active recorder; no-op when telemetry is off."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.add(name, value)


def merge(counters: Dict[str, Number]) -> None:
    """Merge a counter dict into the active recorder; no-op when off.

    This is how worker-process telemetry reaches the parent: pipeline
    workers run their stage under a local recorder, ship the counter
    snapshot back with the stage result, and the parent merges it here —
    so counters recorded inside ``"process"``/``"process-shm"`` workers
    aggregate instead of dying with the worker.
    """
    recorder = _ACTIVE
    if recorder is not None and counters:
        recorder.merge(counters)


@contextmanager
def recording(recorder: Optional[PerfRecorder] = None) -> Iterator[PerfRecorder]:
    """Activate a recorder for the dynamic extent of the ``with`` block.

    Nested activations stack: the inner recorder wins for its extent and
    the outer one is restored afterwards.  (One recorder is active per
    *process*, not per thread — pipeline workers all report into the
    recorder their batch runs under, which is the useful aggregation.)
    """
    global _ACTIVE
    if recorder is None:
        recorder = PerfRecorder()
    with _ACTIVATION_LOCK:
        previous = _ACTIVE
        _ACTIVE = recorder
    try:
        yield recorder
    finally:
        with _ACTIVATION_LOCK:
            _ACTIVE = previous


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Time the block into ``<name>.seconds`` and bump ``<name>.calls``.

    When telemetry is off the block runs with zero added work beyond the
    two clock reads being skipped entirely.
    """
    recorder = _ACTIVE
    if recorder is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        recorder.add(name + ".seconds", time.perf_counter() - t0)
        recorder.add(name + ".calls", 1)
