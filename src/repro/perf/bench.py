"""The ``ipdelta bench`` runner: a fixed suite, machine-readable artifacts.

Each benchmark operation runs against deterministically generated corpus
inputs (fixed seeds, so every machine measures the same work) and writes
one ``BENCH_<name>.json`` artifact::

    {
      "schema": "repro.perf.bench/1",
      "name": "diff_greedy_1536k",
      "op": "diff.greedy",
      "input_bytes": {"reference": ..., "version": ...},
      "wall_seconds": ...,          # best of `repeats`
      "throughput_mb_s": ...,       # processed bytes / wall / 1e6
      "repeats": ...,
      "counters": {...},            # repro.perf counters from the best run
      "meta": {"fast_paths": ..., "numpy": ..., "python": ...,
               "oracle_identical": ...}
    }

Differencing artifacts carry ``meta.oracle_identical``: when the fast
paths are on, the runner re-runs the diff with
:func:`repro.delta.rolling.use_fast_paths` disabled and asserts the
encoded delta is byte-identical — the bench never reports a throughput
win for output that drifted from the oracle.

``repro.perf.compare`` consumes two directories of these artifacts and
gates regressions; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..core.apply import apply_delta, apply_in_place, reconstruct
from ..core.convert import make_in_place
from ..core.crwi import build_crwi_digraph
from ..core.policies import LocallyMinimumPolicy
from ..core.toposort import cycle_breaking_toposort
from ..delta import _kernels
from ..delta import encode_delta, greedy_delta, onepass_delta, correcting_delta
from ..delta.rolling import (
    DEFAULT_SEED_LENGTH,
    FullSeedIndex,
    SeedTable,
    fast_paths_enabled,
    seed_fingerprints,
    use_fast_paths,
)
from ..delta.varint import varint_size
from ..pipeline import DeltaPipeline, PipelineConfig, PipelineJob
from ..pipeline.cache import ReferenceIndexCache
from ..workloads.mutators import MutationProfile, mutate
from ..workloads.sources import make_binary_blob
from . import recording

SCHEMA = "repro.perf.bench/1"

#: Seed for the deterministic bench corpus (the paper's publication
#: venue date) — fixed so artifacts measure identical work everywhere.
_SEED = 19980601

#: The tentpole's ">= 1 MiB corpus input": a 1.5 MiB binary blob and a
#: realistically mutated successor (the corpus generator's binary
#: mutation profile).
LARGE_SIZE = 1_572_864
#: A smaller pair for the cheap operations.
SMALL_SIZE = 262_144

_DIFFERS = {
    "greedy": greedy_delta,
    "onepass": onepass_delta,
    "correcting": correcting_delta,
}


def bench_pair(size: int = LARGE_SIZE, seed: int = _SEED):
    """The deterministic (reference, version) pair of the bench suite."""
    rng = random.Random(seed)
    reference = make_binary_blob(rng, size)
    version = mutate(reference, rng,
                     MutationProfile(edits_per_kb=0.55, max_edit=768))
    return reference, version


class BenchOp:
    """One benchmark operation: a label, a body, and its byte volume."""

    def __init__(self, name: str, op: str, run: Callable[[], object],
                 input_bytes: Dict[str, int], processed_bytes: int,
                 quick: bool = False,
                 oracle: Optional[Callable[[object], bool]] = None,
                 cleanup: Optional[Callable[[], None]] = None,
                 min_seconds: float = 0.0):
        self.name = name
        self.op = op
        self.run = run
        self.input_bytes = input_bytes
        self.processed_bytes = processed_bytes
        #: Included in ``--quick`` runs.
        self.quick = quick
        #: Given the fast-path result, True when the oracle path agrees.
        self.oracle = oracle
        #: Teardown run after the suite (close pools, unlink segments).
        self.cleanup = cleanup
        #: Keep re-running (best-of) until this much timed wall has
        #: accumulated.  Sub-millisecond ops are pure scheduler noise at
        #: a handful of repeats; a small time budget pins their best run
        #: tightly enough to gate speedup floors on.  Zero keeps the
        #: plain ``repeats`` behavior of the long ops.
        self.min_seconds = min_seconds


def _diff_op(name_suffix: str, algorithm: str, reference, version,
             quick: bool, cache: Optional[ReferenceIndexCache] = None) -> BenchOp:
    differ = _DIFFERS[algorithm]
    kwargs = {"cache": cache} if cache is not None else {}

    def run():
        return differ(reference, version, **kwargs)

    def oracle(script) -> bool:
        previous = use_fast_paths(False)
        try:
            # Mirror the measured call's cache configuration: the cache
            # budget decides the greedy index *tier* (full vs sparse),
            # so the scalar re-run must make the same tier choice or the
            # comparison is between two different algorithms' outputs.
            okwargs = {}
            if cache is not None:
                okwargs["cache"] = ReferenceIndexCache(
                    max_bytes=cache.max_bytes)
            expected = differ(reference, version, **okwargs)
        finally:
            use_fast_paths(previous)
        return encode_delta(script) == encode_delta(expected) and \
            bytes(apply_delta(script, reference)) == bytes(version)

    return BenchOp(
        name="diff_%s_%s" % (algorithm, name_suffix),
        op="diff.%s" % algorithm,
        run=run,
        input_bytes={"reference": len(reference), "version": len(version)},
        processed_bytes=len(version),
        quick=quick,
        oracle=oracle,
    )


def _convert_op(name_suffix: str, script, reference,
                input_bytes: Dict[str, int], processed_bytes: int) -> BenchOp:
    """An in-place conversion op with a byte-identity oracle.

    The oracle re-runs the conversion with the fast paths pinned off and
    requires the encoded in-place delta — and the report's accounting —
    to match exactly: the vectorized convert plane may only be faster,
    never different.
    """

    def run():
        return make_in_place(script, reference,
                             offset_encoding_size=varint_size)

    def oracle(result) -> bool:
        previous = use_fast_paths(False)
        try:
            expected = make_in_place(script, reference,
                                     offset_encoding_size=varint_size)
        finally:
            use_fast_paths(previous)
        got, want = result.report, expected.report
        return (
            encode_delta(result.script) == encode_delta(expected.script)
            and got.evicted_count == want.evicted_count
            and got.eviction_cost == want.eviction_cost
            and got.cycles_found == want.cycles_found
            and got.peeled == want.peeled
        )

    return BenchOp(
        name="convert_" + name_suffix,
        op="convert.in_place",
        run=run,
        input_bytes=input_bytes,
        processed_bytes=processed_bytes,
        quick=True,
        oracle=oracle,
        min_seconds=0.5,
    )


def _toposort_op() -> BenchOp:
    """Cycle-breaking toposort on a dense-edit 1.5 MiB digraph.

    A content-edit-heavy 4.5 edits/KiB profile (no block moves) yields
    a graph past ``ARRAY_PEEL_MIN`` whose cost is the acyclic peel, not
    the policy DFS — the stage the adaptive array/scalar hybrid covers.
    Such shift-driven graphs peel in narrow chain waves, the adversarial
    shape for a wave-batched kernel, so this op is the never-worse
    tripwire for the dispatch heuristics rather than a speedup
    showcase.  The digraph and costs are prebuilt (under whichever mode
    the run pins), so the clock sees the sorter alone.  The oracle
    replays graph build + sort on the scalar reference paths and
    requires the identical order, eviction set, and peel split.
    """
    rng = random.Random(_SEED + 2)
    reference = make_binary_blob(rng, LARGE_SIZE)
    version = mutate(reference, rng,
                     MutationProfile(edits_per_kb=4.5, max_edit=192,
                                     weights={"insert": 0.35, "delete": 0.3,
                                              "replace": 0.35}))
    script = greedy_delta(reference, version)
    graph = build_crwi_digraph(script)
    costs = graph.costs(varint_size)

    def run():
        return cycle_breaking_toposort(graph, LocallyMinimumPolicy(), costs)

    def oracle(result) -> bool:
        previous = use_fast_paths(False)
        try:
            oracle_graph = build_crwi_digraph(script)
            expected = cycle_breaking_toposort(
                oracle_graph, LocallyMinimumPolicy(),
                oracle_graph.costs(varint_size))
        finally:
            use_fast_paths(previous)
        return (
            result.order == expected.order
            and result.evicted == expected.evicted
            and result.cycles_found == expected.cycles_found
            and result.peeled == expected.peeled
        )

    return BenchOp(
        name="toposort_1536k",
        op="convert.toposort",
        run=run,
        input_bytes={"reference": len(reference), "version": len(version)},
        processed_bytes=len(version),
        quick=True,
        oracle=oracle,
        min_seconds=0.5,
    )


def build_suite(quick: bool) -> List[BenchOp]:
    """The benchmark suite; ``quick`` selects the CI smoke subset."""
    reference, version = bench_pair(LARGE_SIZE)
    ops: List[BenchOp] = []

    large = "1536k"
    ops.append(_diff_op(large, "greedy", reference, version, quick=True))
    ops.append(_diff_op(large, "correcting", reference, version, quick=True))
    ops.append(_diff_op(large, "onepass", reference, version, quick=True))

    # Differencing with a warm reference cache: the batch-serving shape,
    # where one reference index serves many versions.
    cache = ReferenceIndexCache()
    cache.warm("greedy", reference)
    ops.append(_diff_op(large + "_cached", "greedy", reference, version,
                        quick=False, cache=cache))

    ops.append(BenchOp(
        name="fingerprints_" + large,
        op="index.fingerprints",
        run=lambda: seed_fingerprints(reference, DEFAULT_SEED_LENGTH),
        input_bytes={"reference": len(reference)},
        processed_bytes=len(reference),
        quick=True,
    ))
    ops.append(BenchOp(
        name="full_index_" + large,
        op="index.full",
        run=lambda: FullSeedIndex(reference, DEFAULT_SEED_LENGTH, 64),
        input_bytes={"reference": len(reference)},
        processed_bytes=len(reference),
        quick=False,
    ))
    ops.append(BenchOp(
        name="seed_table_" + large,
        op="index.seed_table",
        run=lambda: SeedTable.from_fingerprints(
            seed_fingerprints(reference, DEFAULT_SEED_LENGTH)),
        input_bytes={"reference": len(reference)},
        processed_bytes=len(reference),
        quick=False,
    ))

    # Conversion + application on the small pair (these stages are cheap
    # relative to differencing — the imbalance the tentpole attacks).
    small_ref, small_ver = bench_pair(SMALL_SIZE, seed=_SEED + 1)
    script = greedy_delta(small_ref, small_ver)
    converted = make_in_place(script, small_ref,
                              offset_encoding_size=varint_size)

    def run_apply_two_space():
        return apply_delta(script, small_ref)

    def run_apply_in_place():
        return apply_in_place(converted.script, bytearray(small_ref))

    small_sizes = {"reference": len(small_ref), "version": len(small_ver)}
    ops.append(_convert_op("256k", script, small_ref, small_sizes,
                           len(small_ver)))
    # Conversion at the tentpole's >= 1 MiB scale: the large pair's
    # greedy script through the full convert plane (CRWI build, pricing,
    # cycle breaking, emission).
    large_script = greedy_delta(reference, version)
    ops.append(_convert_op(large, large_script, reference,
                           {"reference": len(reference),
                            "version": len(version)},
                           len(version)))
    ops.append(_toposort_op())
    ops.append(BenchOp("apply_two_space_256k", "apply.two_space",
                       run_apply_two_space, small_sizes, len(small_ver),
                       quick=True, min_seconds=0.25,
                       oracle=lambda out: bytes(out) == bytes(small_ver)))
    ops.append(BenchOp("apply_in_place_256k", "apply.in_place",
                       run_apply_in_place, small_sizes, len(small_ver),
                       quick=False, min_seconds=0.25,
                       oracle=lambda out: bytes(out) == bytes(small_ver)))

    # Batch-pipeline transport comparison: one reference serving a batch
    # of small chunk updates, through the "process" executor (the
    # reference pickled to the workers per job) and "process-shm" (the
    # reference published once into shared memory, jobs carrying tiny
    # descriptors).  The compare gate holds their ratio; the executors
    # must agree byte-for-byte with a serial run.
    jobs = _pipeline_jobs(small_ref, count=16, version_bytes=32_768)
    ops.append(_pipeline_op("process", jobs, "256k", quick=False))
    ops.append(_pipeline_op("process-shm", jobs, "256k", quick=False))

    # Greedy over the sparse index tier: the 1.5 MiB reference's full
    # greedy index prices over the cache's budget share, so the cache
    # serves the retained SparseSeedIndex instead of rebuilding a full
    # index per job (the cache-thrash footgun this op gates).
    sparse_jobs = _pipeline_jobs(reference, count=8, version_bytes=32_768)
    ops.append(_pipeline_op("thread", sparse_jobs, large, quick=True,
                            algorithm="greedy",
                            name="pipeline_greedy_sparse_" + large))

    # Fleet campaign smoke: ~200 devices through the journaled updater
    # with the fault plan on.  The oracle is the robustness acceptance
    # bar itself — zero silent failures with faults actually firing.
    ops.append(_campaign_op())

    # Serving smoke: 200 concurrent pulls through the delta daemon under
    # a network fault storm.  Same acceptance-bar oracle, network plane.
    ops.append(_serve_op())

    # Pack-store chain collapse: a client 11 versions behind served one
    # composed in-place delta from stored chain hops.
    ops.append(_store_op())

    if quick:
        return [op for op in ops if op.quick]
    return ops


def _pipeline_jobs(reference: bytes, count: int,
                   version_bytes: int) -> List[PipelineJob]:
    """``count`` small version files diffed against one big reference.

    Each version is a deterministically chosen chunk of the reference
    with realistic mutations — the fleet-serving shape where the
    reference dominates the bytes in flight, which is exactly where the
    executors' transport strategies diverge.
    """
    jobs = []
    for i in range(count):
        rng = random.Random(_SEED + 100 + i)
        start = rng.randrange(len(reference) - version_bytes)
        version = mutate(reference[start:start + version_bytes], rng,
                         MutationProfile(edits_per_kb=0.3, max_edit=512))
        jobs.append(PipelineJob(reference, version, "v%d" % i))
    return jobs


def _pipeline_op(executor: str, jobs: List[PipelineJob], size_label: str,
                 quick: bool, algorithm: str = "correcting",
                 name: Optional[str] = None) -> BenchOp:
    """One batch through a persistent pipeline on ``executor``.

    The pipeline (and so its process pool and per-worker caches) lives
    for the whole bench: the untimed warmup run absorbs pool spawn and
    cache fill, and the timed repeats measure the steady serving state —
    where the executors differ purely in how job buffers reach the
    workers.  The oracle re-runs the batch serially (same algorithm and
    default cache budget, so the same greedy index tier) and requires
    byte-identical payloads.
    """
    pipe = DeltaPipeline(PipelineConfig(
        algorithm=algorithm, executor=executor,
        diff_workers=2, convert_workers=2,
    ))
    total_version_bytes = sum(len(j.version) for j in jobs)

    def run():
        return pipe.run(jobs)

    def oracle(batch) -> bool:
        if batch.ok_jobs != len(jobs):
            return False
        with DeltaPipeline(PipelineConfig(
                algorithm=algorithm, executor="serial")) as serial:
            expected = serial.run(jobs)
        return [r.payload for r in batch.results] == \
            [r.payload for r in expected.results]

    return BenchOp(
        name=name or "pipeline_%s_%s" % (executor.replace("-", "_"),
                                         size_label),
        op="pipeline.%s" % executor,
        run=run,
        input_bytes={"reference": len(jobs[0].reference),
                     "versions": total_version_bytes},
        processed_bytes=total_version_bytes,
        quick=quick,
        oracle=oracle,
        cleanup=pipe.close,
    )


def _campaign_op() -> BenchOp:
    """A 200-device fault-injected campaign through the real updater.

    Throughput is installed image bytes per second.  The oracle enforces
    the campaign's protocol invariant: every device lands in a terminal
    state (updated / quarantined-with-reason), no silent failures, and
    the fault plan actually fired — a campaign that dodged its faults
    measures nothing.
    """
    from ..faults import FaultPlan
    from ..fleet import RolloutPolicy, make_fleet, make_release_train, \
        run_campaign

    devices = 200
    train = make_release_train(("app", "kernel"), releases=3, size=32_768,
                               seed=_SEED)
    fleet = make_fleet(devices, train, seed=_SEED)
    plan = FaultPlan.parse(
        "device.power:p=0.08:fuel=4000; delta.truncate:p=0.05; "
        "delta.bitflip:p=0.05; channel.transmit:p=0.05",
        seed=_SEED,
    )
    image_bytes = sum(len(train[d.package][-1]) for d in fleet)

    def run():
        return run_campaign(train, fleet, policy=RolloutPolicy(),
                            fault_plan=plan, seed=_SEED, executor="serial")

    def oracle(report) -> bool:
        counters = report.counters
        return (
            not report.silent_failures()
            and counters["devices"] == devices
            and (counters["updated"] + counters["quarantined"]
                 + counters["deferred"]) == devices
            and counters["power_cuts"] > 0
            and counters["fault_events"] > 0
        )

    return BenchOp(
        name="campaign_smoke_200dev",
        op="fleet.campaign",
        run=run,
        input_bytes={"devices": devices, "images": image_bytes},
        processed_bytes=image_bytes,
        quick=True,
        oracle=oracle,
    )


def _serve_op() -> BenchOp:
    """200 concurrent pulls through the delta daemon under a fault storm.

    Throughput is applied image bytes per second across the whole run —
    encode, framed transfer, journaled in-place apply.  The oracle is
    the serving acceptance bar: every client terminal, applied means
    byte-exact, duplicate (reference, target) pairs coalesced to one
    encode each, and the injected faults actually fired.
    """
    from ..faults import FaultPlan
    from ..serve import run_load

    clients = 200
    size = 8_192
    server_plan = FaultPlan.parse(
        "serve.accept:p=0.05;serve.frame:p=0.02", seed=_SEED)
    client_plan = FaultPlan.parse("client.recv:p=0.03", seed=_SEED + 1)

    def run():
        return run_load(
            clients=clients,
            packages=3,
            releases=3,
            size=size,
            seed=_SEED,
            server_fault_plan=server_plan,
            client_fault_plan=client_plan,
            power_cut_client=17,
            power_cut_fuel=600,
            max_attempts=8,
            backoff_base=0.001,
            chunk_size=1 << 12,
        )

    def oracle(report) -> bool:
        return (
            not report.silent
            and report.terminal == clients
            and report.byte_exact == report.applied
            and report.applied >= clients * 0.95
            and report.counters.get("serve.encodes") == report.distinct_pairs
            and report.power_cuts > 0
            and report.client_faults > 0
        )

    return BenchOp(
        name="serve_smoke_200pull",
        op="serve.load",
        run=run,
        input_bytes={"clients": clients, "image": size},
        processed_bytes=clients * size,
        quick=True,
        oracle=oracle,
    )


def _store_op() -> BenchOp:
    """Chain collapse over a 12-version pack-store release history.

    A temp-dir :class:`~repro.store.PackStore` holds 12 mutate-derived
    256 KiB releases of one package as stored delta chains; the op is
    ``store.chain(first, latest)`` — decode the stored hops, fold them
    with ``compose_chain``, convert for in-place application, encode
    one ``IPD2`` payload.  Throughput is the chain's image volume per
    second.  The oracle applies the payload in place over the first
    release and demands the latest, byte-exact.
    """
    import shutil
    import tempfile

    from ..store import PackStore, StoreConfig

    releases = 12
    size = SMALL_SIZE
    rng = random.Random(_SEED)
    root = tempfile.mkdtemp(prefix="ipdelta-bench-store-")
    store = PackStore.init(root, StoreConfig(fsync=False))
    image = make_binary_blob(rng, size)
    digests = []
    images = []
    for _ in range(releases):
        digests.append(store.publish("app", image))
        images.append(image)
        image = mutate(image, rng,
                       MutationProfile(edits_per_kb=0.55, max_edit=768))

    def run():
        return store.chain("app", digests[0], digests[-1])

    def oracle(payload) -> bool:
        from .. import patch_in_place
        if payload is None:
            return False
        buf = bytearray(images[0])
        patch_in_place(buf, payload)
        return bytes(buf) == images[-1]

    def cleanup():
        store.close()
        shutil.rmtree(root, ignore_errors=True)

    return BenchOp(
        name="store_chain_collapse",
        op="store.chain",
        run=run,
        input_bytes={"releases": releases, "image": size},
        processed_bytes=(releases - 1) * size,
        quick=True,
        oracle=oracle,
        cleanup=cleanup,
        min_seconds=0.25,
    )


def run_op(op: BenchOp, repeats: int) -> Dict[str, object]:
    """Execute one op ``repeats`` times; artifact dict from the best run.

    One untimed warmup run precedes the timed repeats so one-time costs
    (power-table construction, allocator growth) do not pollute the
    measurement.  An op with ``min_seconds`` set keeps accumulating
    best-of repeats (capped at 10000) until its time budget is spent.
    """
    op.run()
    best_seconds = None
    best_counters: Dict[str, float] = {}
    result = None
    total = 0.0
    runs = 0
    while runs < max(1, repeats) or (total < op.min_seconds
                                     and runs < 10_000):
        with recording() as recorder:
            t0 = time.perf_counter()
            result = op.run()
            elapsed = time.perf_counter() - t0
        total += elapsed
        runs += 1
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
            best_counters = recorder.counters
    oracle_identical = None
    if op.oracle is not None:
        oracle_identical = bool(op.oracle(result))
    return {
        "schema": SCHEMA,
        "name": op.name,
        "op": op.op,
        "input_bytes": op.input_bytes,
        "wall_seconds": best_seconds,
        "throughput_mb_s": op.processed_bytes / best_seconds / 1e6
        if best_seconds else None,
        "repeats": runs,
        "counters": best_counters,
        "meta": {
            "fast_paths": fast_paths_enabled(),
            "numpy": _kernels.HAVE_NUMPY,
            "python": platform.python_version(),
            "seed_length": DEFAULT_SEED_LENGTH,
            "oracle_identical": oracle_identical,
        },
    }


def run_bench(
    output_dir: str = "bench_artifacts",
    *,
    quick: bool = False,
    fast: bool = True,
    repeats: Optional[int] = None,
    ops: Optional[List[str]] = None,
    echo: Callable[[str], None] = print,
) -> List[Path]:
    """Run the suite and write one ``BENCH_<name>.json`` per operation.

    ``fast=False`` pins the scalar reference paths for the whole run —
    the pre-optimization baseline (such artifacts skip the oracle
    cross-check; they *are* the oracle).  ``ops`` filters by artifact
    name substring.  Returns the paths written.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    if repeats is None:
        repeats = 1 if quick else 3
    previous = use_fast_paths(fast)
    written: List[Path] = []
    suite: List[BenchOp] = []
    try:
        suite = build_suite(quick)
        selected = suite
        if ops:
            selected = [op for op in suite
                        if any(wanted in op.name for wanted in ops)]
        for op in selected:
            if not fast:
                op.oracle = None
            artifact = run_op(op, repeats)
            path = out / ("BENCH_%s.json" % op.name)
            path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
            written.append(path)
            identical = artifact["meta"]["oracle_identical"]
            suffix = "" if identical is None else \
                "  oracle=%s" % ("ok" if identical else "MISMATCH")
            echo("%-28s %8.3fs  %8.2f MB/s%s" % (
                op.name, artifact["wall_seconds"],
                artifact["throughput_mb_s"] or 0.0, suffix))
            if identical is False:
                raise AssertionError(
                    "%s: fast-path output differs from the oracle" % op.name)
    finally:
        use_fast_paths(previous)
        # Teardown covers the *whole* suite, not just the selected ops:
        # build_suite creates the pipeline pools either way.
        for op in suite:
            if op.cleanup is not None:
                op.cleanup()
    return written
