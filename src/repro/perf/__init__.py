"""Opt-in performance telemetry: counters, timers, bench artifacts.

The subsystem has three layers:

* :mod:`repro.perf.recorder` — a process-global, opt-in
  :class:`PerfRecorder`.  Instrumented code (the differencing
  algorithms, the reference-index cache, the converter, the appliers,
  the batch pipeline) reports *aggregate* counters per call — never
  per-byte events — and only when a recorder is active, so the
  disabled path costs one global load and an ``is None`` test per
  instrumented call site.

* :mod:`repro.perf.bench` — the ``ipdelta bench`` runner.  It executes
  a fixed suite of operations against deterministically generated
  corpus inputs and writes one machine-readable ``BENCH_<name>.json``
  artifact per operation (schema: op, input sizes, wall time,
  throughput, counters).

* :mod:`repro.perf.compare` — the regression gate.  It diffs two
  artifact directories (a committed baseline vs a fresh run) and fails
  on throughput loss beyond a threshold, or when a required minimum
  speedup between two runs is not met.

Typical uses::

    from repro import perf

    with perf.recording() as rec:
        greedy_delta(reference, version)
    print(rec.counters["diff.greedy.seconds"])

    $ ipdelta bench --quick --output-dir /tmp/bench
    $ python -m repro.perf.compare benchmarks/baselines/current /tmp/bench
"""

from .recorder import (
    PerfRecorder,
    active,
    add,
    merge,
    recording,
    timer,
)

__all__ = [
    "PerfRecorder",
    "active",
    "add",
    "merge",
    "recording",
    "timer",
]
