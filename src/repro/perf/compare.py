"""Bench-regression gate: diff two directories of ``BENCH_*.json`` artifacts.

Given a *baseline* directory (committed, or a fresh oracle run) and a
*current* directory, artifacts are matched by ``name`` and compared on
``throughput_mb_s``:

* a matched artifact whose throughput dropped by more than ``threshold``
  (default 15%) is a **regression** and fails the gate;
* ``--min-speedup NAME=FACTOR`` additionally requires the current run to
  be at least ``FACTOR``x the baseline for that artifact — the form the
  CI smoke job uses to hold the vectorized paths to their promised
  speedup over the scalar oracle *measured on the same machine*, which
  is noise-free in a way cross-machine comparisons are not;
* ``--min-speedup CURNAME/BASENAME=FACTOR`` gates the ratio of two
  *different* artifacts — ``CURNAME`` from the current run against
  ``BASENAME`` from the baseline.  Pointing both directories at the
  same run turns this into a same-machine A/B gate, e.g. holding the
  ``"process-shm"`` pipeline executor to a floor against ``"process"``.

Exit status 0 when every gate passes, 1 otherwise::

    python -m repro.perf.compare BASELINE_DIR CURRENT_DIR \
        --threshold 0.15 --min-speedup diff_greedy_1536k=3.0 \
        --min-speedup pipeline_process_shm_256k/pipeline_process_256k=0.9
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .bench import SCHEMA

DEFAULT_THRESHOLD = 0.15


def load_artifacts(directory: str) -> Dict[str, dict]:
    """Read every ``BENCH_*.json`` under ``directory``, keyed by name."""
    artifacts: Dict[str, dict] = {}
    root = Path(directory)
    for path in sorted(root.glob("BENCH_*.json")):
        data = json.loads(path.read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError("%s: unknown schema %r" % (path, data.get("schema")))
        artifacts[data["name"]] = data
    if not artifacts:
        raise FileNotFoundError("no BENCH_*.json artifacts in %s" % directory)
    return artifacts


@dataclass
class Comparison:
    """Verdict for one artifact name present in either run."""

    name: str
    baseline_mb_s: Optional[float]
    current_mb_s: Optional[float]
    ratio: Optional[float]  # current / baseline
    required_speedup: Optional[float]
    ok: bool
    detail: str


def compare_artifacts(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_speedup: Optional[Dict[str, float]] = None,
) -> List[Comparison]:
    """Compare two artifact sets; one :class:`Comparison` per name.

    Artifacts present on only one side are reported (``ok=True``) but
    cannot regress; a ``min_speedup`` entry whose artifact is missing on
    either side fails, so a misspelled gate cannot silently pass.

    A ``min_speedup`` key of the form ``"CURNAME/BASENAME"`` gates
    ``current[CURNAME] / baseline[BASENAME]`` instead of matching one
    name on both sides — the same-machine A/B form.
    """
    min_speedup = dict(min_speedup or {})
    cross = {name: factor for name, factor in min_speedup.items()
             if "/" in name}
    for name in cross:
        del min_speedup[name]
    results: List[Comparison] = []
    for name in sorted(set(baseline) | set(current) | set(min_speedup)):
        base = baseline.get(name)
        cur = current.get(name)
        required = min_speedup.get(name)
        if base is None or cur is None:
            side = "baseline" if base is None else "current run"
            ok = required is None
            results.append(Comparison(
                name=name,
                baseline_mb_s=base["throughput_mb_s"] if base else None,
                current_mb_s=cur["throughput_mb_s"] if cur else None,
                ratio=None, required_speedup=required, ok=ok,
                detail="missing from %s%s" % (
                    side, "" if ok else " but required by --min-speedup"),
            ))
            continue
        base_tp = base["throughput_mb_s"]
        cur_tp = cur["throughput_mb_s"]
        ratio = cur_tp / base_tp if base_tp else None
        if ratio is None:
            results.append(Comparison(name, base_tp, cur_tp, None, required,
                                      True, "baseline throughput is zero"))
            continue
        if required is not None:
            ok = ratio >= required
            detail = "%.2fx vs required %.2fx" % (ratio, required)
        else:
            ok = ratio >= 1.0 - threshold
            detail = "%.2fx vs floor %.2fx" % (ratio, 1.0 - threshold)
        results.append(Comparison(name, base_tp, cur_tp, ratio, required,
                                  ok, detail))
    for name in sorted(cross):
        required = cross[name]
        cur_name, _, base_name = name.partition("/")
        cur = current.get(cur_name)
        base = baseline.get(base_name)
        if base is None or cur is None:
            missing = base_name if base is None else cur_name
            side = "baseline" if base is None else "current run"
            results.append(Comparison(
                name=name,
                baseline_mb_s=base["throughput_mb_s"] if base else None,
                current_mb_s=cur["throughput_mb_s"] if cur else None,
                ratio=None, required_speedup=required, ok=False,
                detail="%s missing from %s but required by --min-speedup"
                       % (missing, side),
            ))
            continue
        base_tp = base["throughput_mb_s"]
        cur_tp = cur["throughput_mb_s"]
        ratio = cur_tp / base_tp if base_tp else None
        if ratio is None:
            results.append(Comparison(name, base_tp, cur_tp, None, required,
                                      False, "baseline throughput is zero"))
            continue
        ok = ratio >= required
        results.append(Comparison(
            name, base_tp, cur_tp, ratio, required, ok,
            "%.2fx vs required %.2fx" % (ratio, required)))
    return results


def render(results: List[Comparison]) -> str:
    lines = ["%-30s %12s %12s  %s" % ("artifact", "base MB/s", "cur MB/s",
                                      "verdict")]
    for r in results:
        lines.append("%-30s %12s %12s  %s %s" % (
            r.name,
            "-" if r.baseline_mb_s is None else "%.2f" % r.baseline_mb_s,
            "-" if r.current_mb_s is None else "%.2f" % r.current_mb_s,
            "PASS" if r.ok else "FAIL",
            r.detail,
        ))
    return "\n".join(lines)


def parse_min_speedup(pairs: List[str]) -> Dict[str, float]:
    """Parse repeated ``NAME=FACTOR`` options."""
    out: Dict[str, float] = {}
    for pair in pairs:
        name, _, factor = pair.partition("=")
        if not name or not factor:
            raise argparse.ArgumentTypeError(
                "expected NAME=FACTOR, got %r" % pair)
        out[name] = float(factor)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.compare",
        description="Diff two BENCH_*.json artifact directories and fail "
                    "on throughput regressions.",
    )
    parser.add_argument("baseline", help="directory with baseline artifacts")
    parser.add_argument("current", help="directory with current artifacts")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="maximum tolerated throughput loss "
                             "(default %(default)s)")
    parser.add_argument("--min-speedup", action="append", default=[],
                        metavar="NAME=FACTOR",
                        help="require current >= FACTOR x baseline for "
                             "artifact NAME (repeatable)")
    args = parser.parse_args(argv)
    try:
        baseline = load_artifacts(args.baseline)
        current = load_artifacts(args.current)
        min_speedup = parse_min_speedup(args.min_speedup)
    except (OSError, ValueError, json.JSONDecodeError,
            argparse.ArgumentTypeError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    results = compare_artifacts(
        baseline,
        current,
        threshold=args.threshold,
        min_speedup=min_speedup,
    )
    print(render(results))
    failures = [r for r in results if not r.ok]
    if failures:
        print("FAIL: %d of %d gates" % (len(failures), len(results)))
        return 1
    print("OK: %d gates passed" % len(results))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
