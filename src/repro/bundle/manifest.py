"""Package manifests: the file-level identity of a release.

The paper distributes *software packages* — trees of files — while its
algorithm works on single files.  The bundle layer bridges that gap,
and the manifest is its unit of identity: per-file sizes and checksums
for one release of one package.  Manifests decide which files changed
(diff at all?), detect renames (same content under a new path), and let
a device verify a finished upgrade file by file.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class FileEntry:
    """Identity of one file in a release: size plus CRC32."""

    path: str
    size: int
    crc32: int

    @classmethod
    def of(cls, path: str, data: bytes) -> "FileEntry":
        """Compute the entry for ``data`` at ``path``."""
        return cls(path, len(data), zlib.crc32(data) & 0xFFFFFFFF)

    @property
    def content_key(self) -> Tuple[int, int]:
        """(size, crc32): the key rename detection matches on."""
        return (self.size, self.crc32)


@dataclass
class Manifest:
    """All file identities of one release of one package."""

    package: str
    release: int
    files: Dict[str, FileEntry] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, package: str, release: int,
                  tree: Mapping[str, bytes]) -> "Manifest":
        """Build the manifest of an in-memory file tree."""
        return cls(
            package,
            release,
            {path: FileEntry.of(path, data) for path, data in tree.items()},
        )

    @property
    def total_bytes(self) -> int:
        """Sum of all file sizes in the release."""
        return sum(entry.size for entry in self.files.values())

    def paths(self) -> List[str]:
        """All file paths, sorted."""
        return sorted(self.files)

    def verify_tree(self, tree: Mapping[str, bytes]) -> List[str]:
        """Paths whose content does not match this manifest (or are missing).

        Empty list means ``tree`` is exactly this release.
        """
        problems: List[str] = []
        for path, entry in self.files.items():
            data = tree.get(path)
            if data is None:
                problems.append("%s: missing" % path)
            elif FileEntry.of(path, data) != entry:
                problems.append("%s: content mismatch" % path)
        for path in tree:
            if path not in self.files:
                problems.append("%s: unexpected file" % path)
        return sorted(problems)


@dataclass(frozen=True)
class TreeChange:
    """One file-level change between two manifests."""

    #: "modify" | "add" | "remove" | "rename" | "unchanged"
    kind: str
    path: str
    #: For renames: the path the content previously lived at.
    from_path: Optional[str] = None


def classify_changes(old: Manifest, new: Manifest) -> List[TreeChange]:
    """File-level change set between two releases.

    Renames are detected by content identity: a path present only in
    the new release whose (size, crc32) matches a path present only in
    the old release is reported as a rename rather than an add+remove —
    so a moved file costs a directive, not a transfer.
    """
    old_paths = set(old.files)
    new_paths = set(new.files)
    removed = old_paths - new_paths
    added = new_paths - old_paths

    by_content: Dict[Tuple[int, int], List[str]] = {}
    for path in sorted(removed):
        by_content.setdefault(old.files[path].content_key, []).append(path)

    changes: List[TreeChange] = []
    consumed_removals = set()
    for path in sorted(added):
        key = new.files[path].content_key
        sources = by_content.get(key)
        if sources:
            source = sources.pop(0)
            consumed_removals.add(source)
            changes.append(TreeChange("rename", path, from_path=source))
        else:
            changes.append(TreeChange("add", path))
    for path in sorted(removed - consumed_removals):
        changes.append(TreeChange("remove", path))
    for path in sorted(old_paths & new_paths):
        if old.files[path].content_key == new.files[path].content_key:
            changes.append(TreeChange("unchanged", path))
        else:
            changes.append(TreeChange("modify", path))
    return changes
