"""Tree differencing: build and apply whole-package upgrade bundles.

:func:`build_bundle` turns two releases of a package tree into one
:class:`~repro.bundle.archive.Bundle`: unchanged files cost nothing,
modified files carry an in-place delta, renamed files carry a directive
(plus a delta when the content also changed — detected by comparing
against the rename source), added files carry their bytes, removed
files a directive.

:func:`apply_bundle` upgrades a tree dict *in place*: every per-file
delta is applied by the strict in-place engine inside that file's own
buffer, renames re-key buffers without copying storage, and the result
is verified against the bundled expectations.  Peak extra storage is
zero file copies — the bundle layer inherits the paper's guarantee file
by file.
"""

from __future__ import annotations

from typing import Dict, MutableMapping, Union

from ..core.apply import apply_in_place
from ..core.convert import make_in_place
from ..delta import ALGORITHMS
from ..delta.encode import FORMAT_INPLACE, decode_delta, encode_delta, version_checksum
from ..exceptions import ReproError, VerificationError
from .archive import (
    OP_ADD,
    OP_DELTA,
    OP_REMOVE,
    OP_RENAME,
    Bundle,
    BundleEntry,
)
from .manifest import Manifest, classify_changes

Tree = MutableMapping[str, Union[bytes, bytearray]]


def build_bundle(
    package: str,
    from_release: int,
    to_release: int,
    old_tree: Dict[str, bytes],
    new_tree: Dict[str, bytes],
    *,
    algorithm: str = "correcting",
    policy: str = "local-min",
    scratch_budget: int = 0,
) -> Bundle:
    """Diff two package trees into one upgrade bundle.

    Per-file deltas are converted for in-place reconstruction with the
    given policy and scratch budget.  When a delta would be larger than
    the file itself (pathological churn), the file ships as an ADD
    instead — the size guarantee a distribution system needs.
    """
    differ = ALGORITHMS[algorithm]
    old_manifest = Manifest.from_tree(package, from_release, old_tree)
    new_manifest = Manifest.from_tree(package, to_release, new_tree)
    bundle = Bundle(package, from_release, to_release)

    def delta_payload(reference: bytes, version: bytes) -> bytes:
        script = differ(reference, version)
        converted = make_in_place(script, reference, policy=policy,
                                  scratch_budget=scratch_budget)
        return encode_delta(converted.script, FORMAT_INPLACE,
                            version_crc32=version_checksum(version))

    for change in classify_changes(old_manifest, new_manifest):
        if change.kind == "unchanged":
            continue
        if change.kind == "modify":
            payload = delta_payload(old_tree[change.path], new_tree[change.path])
            if len(payload) < len(new_tree[change.path]):
                bundle.entries.append(
                    BundleEntry(OP_DELTA, change.path, payload=payload)
                )
            else:
                bundle.entries.append(
                    BundleEntry(OP_ADD, change.path, content=new_tree[change.path])
                )
        elif change.kind == "add":
            bundle.entries.append(
                BundleEntry(OP_ADD, change.path, content=new_tree[change.path])
            )
        elif change.kind == "rename":
            assert change.from_path is not None
            old_data = old_tree[change.from_path]
            new_data = new_tree[change.path]
            payload = b"" if old_data == new_data else \
                delta_payload(old_data, new_data)
            bundle.entries.append(BundleEntry(
                OP_RENAME, change.path, payload=payload,
                from_path=change.from_path,
            ))
        elif change.kind == "remove":
            bundle.entries.append(BundleEntry(OP_REMOVE, change.path))
        else:  # pragma: no cover - classify_changes is exhaustive
            raise ReproError("unknown change kind %r" % change.kind)
    return bundle


def apply_bundle(tree: Tree, bundle: Bundle, *, chunk_size: int = 4096) -> None:
    """Upgrade ``tree`` in place per the bundle's directives.

    Each file's new version is materialized in the buffer its old
    version occupies (strict in-place engine); renames move buffers by
    re-keying.  Raises on any missing file, conflict, or checksum
    mismatch — after which the tree may be partially upgraded, exactly
    like a half-applied single-file delta (use the journal layer for
    crash safety).
    """
    for entry in bundle.entries:
        if entry.op == OP_DELTA:
            if entry.path not in tree:
                raise ReproError("bundle patches missing file %r" % entry.path)
            buffer = bytearray(tree[entry.path])
            script, header = decode_delta(entry.payload)
            apply_in_place(script, buffer, strict=True, chunk_size=chunk_size)
            if header.version_crc32 and \
                    version_checksum(buffer) != header.version_crc32:
                raise VerificationError(
                    "%s: reconstructed content fails its checksum" % entry.path
                )
            tree[entry.path] = bytes(buffer)
        elif entry.op == OP_ADD:
            tree[entry.path] = entry.content
        elif entry.op == OP_RENAME:
            if entry.from_path not in tree:
                raise ReproError(
                    "bundle renames missing file %r" % entry.from_path
                )
            buffer = bytearray(tree.pop(entry.from_path))
            if entry.payload:
                script, header = decode_delta(entry.payload)
                apply_in_place(script, buffer, strict=True, chunk_size=chunk_size)
                if header.version_crc32 and \
                        version_checksum(buffer) != header.version_crc32:
                    raise VerificationError(
                        "%s: renamed content fails its checksum" % entry.path
                    )
            tree[entry.path] = bytes(buffer)
        elif entry.op == OP_REMOVE:
            if entry.path not in tree:
                raise ReproError("bundle removes missing file %r" % entry.path)
            del tree[entry.path]
        else:
            raise ReproError("unknown bundle op 0x%02x" % entry.op)


def upgrade_and_verify(
    tree: Tree,
    bundle: Bundle,
    new_manifest: Manifest,
    *,
    chunk_size: int = 4096,
) -> None:
    """Apply a bundle, then verify the whole tree against the target manifest."""
    apply_bundle(tree, bundle, chunk_size=chunk_size)
    problems = new_manifest.verify_tree({p: bytes(d) for p, d in tree.items()})
    if problems:
        raise VerificationError(
            "upgraded tree does not match release %d: %s"
            % (new_manifest.release, "; ".join(problems[:5]))
        )
