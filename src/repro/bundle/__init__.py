"""Package-level distribution: manifests, tree diffing, upgrade bundles."""

from .archive import (
    OP_ADD,
    OP_DELTA,
    OP_REMOVE,
    OP_RENAME,
    Bundle,
    BundleEntry,
    decode_bundle,
    encode_bundle,
)
from .manifest import FileEntry, Manifest, TreeChange, classify_changes
from .treediff import apply_bundle, build_bundle, upgrade_and_verify

__all__ = [
    "Bundle",
    "BundleEntry",
    "FileEntry",
    "Manifest",
    "OP_ADD",
    "OP_DELTA",
    "OP_REMOVE",
    "OP_RENAME",
    "TreeChange",
    "apply_bundle",
    "build_bundle",
    "classify_changes",
    "decode_bundle",
    "encode_bundle",
    "upgrade_and_verify",
]
