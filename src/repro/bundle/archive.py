"""Bundle wire format: one payload upgrading a whole package tree.

Layout (all integers LEB128 varints, strings varint-length + UTF-8)::

    magic "IPB1" | package | from_release | to_release | entry_count
    entry*:
        op u8 | path
        op DELTA : payload_len | in-place delta file bytes
        op ADD   : size | raw content | crc32 u32le
        op RENAME: from_path | optional payload_len | delta bytes (0 = exact)
        op REMOVE: (nothing)
    crc32 u32le of everything before it

Per-file deltas embed the single-file format of
:mod:`repro.delta.encode` unchanged (with its own header and checksum),
so a bundle is a container, not a new delta codec.  A rename may carry
a delta when the moved file also changed; ``payload_len == 0`` means
the content moved exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..delta.varint import decode_varint, encode_varint
from ..exceptions import DeltaFormatError

Buffer = Union[bytes, bytearray, memoryview]

BUNDLE_MAGIC = b"IPB1"

OP_DELTA = 0x01
OP_ADD = 0x02
OP_REMOVE = 0x03
OP_RENAME = 0x04

_OP_NAMES = {OP_DELTA: "delta", OP_ADD: "add", OP_REMOVE: "remove",
             OP_RENAME: "rename"}


@dataclass(frozen=True)
class BundleEntry:
    """One directive of a bundle."""

    op: int
    path: str
    #: Serialized single-file delta (DELTA, optionally RENAME), or b"".
    payload: bytes = b""
    #: Raw content (ADD only), or b"".
    content: bytes = b""
    #: Source path (RENAME only).
    from_path: Optional[str] = None

    @property
    def op_name(self) -> str:
        """Human-readable directive name."""
        return _OP_NAMES.get(self.op, "op-0x%02x" % self.op)

    @property
    def wire_bytes(self) -> int:
        """Approximate transfer cost of this entry."""
        return len(self.payload) + len(self.content) + len(self.path) + 2


@dataclass
class Bundle:
    """A parsed (or to-be-serialized) package upgrade."""

    package: str
    from_release: int
    to_release: int
    entries: List[BundleEntry] = field(default_factory=list)

    @property
    def payload_bytes(self) -> int:
        """Total size of embedded payloads and contents."""
        return sum(e.wire_bytes for e in self.entries)

    def summary(self) -> dict:
        """Directive counts, for reports and the CLI."""
        counts = {"delta": 0, "add": 0, "remove": 0, "rename": 0}
        for entry in self.entries:
            counts[entry.op_name] += 1
        return counts


def _put_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    out += encode_varint(len(raw))
    out += raw


def _get_str(data: Buffer, pos: int) -> Tuple[str, int]:
    length, pos = decode_varint(data, pos)
    if pos + length > len(data):
        raise DeltaFormatError("truncated string in bundle at byte %d" % pos)
    return bytes(data[pos:pos + length]).decode("utf-8"), pos + length


def encode_bundle(bundle: Bundle) -> bytes:
    """Serialize a bundle to its wire format."""
    out = bytearray()
    out += BUNDLE_MAGIC
    _put_str(out, bundle.package)
    out += encode_varint(bundle.from_release)
    out += encode_varint(bundle.to_release)
    out += encode_varint(len(bundle.entries))
    for entry in bundle.entries:
        out.append(entry.op)
        _put_str(out, entry.path)
        if entry.op == OP_DELTA:
            out += encode_varint(len(entry.payload))
            out += entry.payload
        elif entry.op == OP_ADD:
            out += encode_varint(len(entry.content))
            out += entry.content
            out += (zlib.crc32(entry.content) & 0xFFFFFFFF).to_bytes(4, "little")
        elif entry.op == OP_RENAME:
            _put_str(out, entry.from_path or "")
            out += encode_varint(len(entry.payload))
            out += entry.payload
        elif entry.op == OP_REMOVE:
            pass
        else:
            raise DeltaFormatError("unknown bundle op 0x%02x" % entry.op)
    out += (zlib.crc32(out) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def decode_bundle(data: Buffer) -> Bundle:
    """Parse a bundle, verifying its trailing checksum."""
    if len(data) < len(BUNDLE_MAGIC) + 4 or bytes(data[:4]) != BUNDLE_MAGIC:
        raise DeltaFormatError("not a bundle (bad magic)")
    body, trailer = data[:-4], data[-4:]
    expected = int.from_bytes(trailer, "little")
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        raise DeltaFormatError("bundle checksum mismatch")

    pos = 4
    package, pos = _get_str(body, pos)
    from_release, pos = decode_varint(body, pos)
    to_release, pos = decode_varint(body, pos)
    count, pos = decode_varint(body, pos)
    bundle = Bundle(package, from_release, to_release)
    for _ in range(count):
        if pos >= len(body):
            raise DeltaFormatError("bundle truncated in entry list")
        op = body[pos]
        pos += 1
        path, pos = _get_str(body, pos)
        if op == OP_DELTA:
            size, pos = decode_varint(body, pos)
            if pos + size > len(body):
                raise DeltaFormatError("bundle delta payload truncated")
            bundle.entries.append(
                BundleEntry(op, path, payload=bytes(body[pos:pos + size]))
            )
            pos += size
        elif op == OP_ADD:
            size, pos = decode_varint(body, pos)
            if pos + size + 4 > len(body):
                raise DeltaFormatError("bundle add content truncated")
            content = bytes(body[pos:pos + size])
            pos += size
            crc = int.from_bytes(body[pos:pos + 4], "little")
            pos += 4
            if zlib.crc32(content) & 0xFFFFFFFF != crc:
                raise DeltaFormatError("bundle add content corrupt: %s" % path)
            bundle.entries.append(BundleEntry(op, path, content=content))
        elif op == OP_RENAME:
            from_path, pos = _get_str(body, pos)
            size, pos = decode_varint(body, pos)
            if pos + size > len(body):
                raise DeltaFormatError("bundle rename payload truncated")
            bundle.entries.append(BundleEntry(
                op, path, payload=bytes(body[pos:pos + size]),
                from_path=from_path,
            ))
            pos += size
        elif op == OP_REMOVE:
            bundle.entries.append(BundleEntry(op, path))
        else:
            raise DeltaFormatError("unknown bundle op 0x%02x" % op)
    if pos != len(body):
        raise DeltaFormatError("trailing garbage in bundle")
    return bundle
