"""Simulated constrained devices, low-bandwidth channels, update sessions."""

from .channel import CHANNELS, Channel, Delivery, get_channel
from .flash import (
    FlashArray,
    WearLimitExceeded,
    WearStats,
    full_reprogram,
    measure_update_wear,
)
from .journal import (
    CrashingStorage,
    Journal,
    JournaledApplier,
    PowerFailureError,
    apply_with_power_failures,
)
from .memory import ConstrainedDevice, RamAccount
from .updater import (
    STRATEGIES,
    JournaledUpdateOutcome,
    UpdateOutcome,
    UpdateServer,
    run_journaled_session,
    run_journaled_update,
    run_update,
)

__all__ = [
    "CHANNELS",
    "Channel",
    "ConstrainedDevice",
    "CrashingStorage",
    "Delivery",
    "FlashArray",
    "Journal",
    "JournaledUpdateOutcome",
    "JournaledApplier",
    "PowerFailureError",
    "RamAccount",
    "STRATEGIES",
    "UpdateOutcome",
    "UpdateServer",
    "WearLimitExceeded",
    "WearStats",
    "apply_with_power_failures",
    "full_reprogram",
    "measure_update_wear",
    "get_channel",
    "run_journaled_session",
    "run_journaled_update",
    "run_update",
]
