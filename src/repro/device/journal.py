"""Power-failure-safe in-place application: journaled, resumable patching.

In-place reconstruction's classic operational hazard: lose power halfway
through and the image is neither the old version nor the new one, and —
because copies destroy their sources — simply re-running the delta does
not recover.  Production in-place updaters solve this with a small
durable *journal*; this module implements that protocol over the
simulated device and proves it with an exhaustive crash-point harness in
the tests.

Why resumption is possible at all is a direct corollary of the paper's
Equation 2: in a converted script **no command reads bytes an earlier
command wrote**, so when commands ``0..i-1`` are done, the bytes command
``i`` wants to read are still exactly the reference bytes — *except*
bytes command ``i`` itself may have half-written (a self-overlapping
copy interrupted mid-flight).  Hence the journal only ever needs:

* the index of the next unfinished command (one integer);
* a pre-image of the current command's read∩write overlap, saved before
  the command starts (non-empty only for self-overlapping copies);
* the scratch buffer contents (spilled bytes live in volatile RAM, but
  later commands depend on them; the journal mirrors scratch as spills
  execute).

Every command is made idempotent by that state, so re-executing the
interrupted command after a crash is always safe, whatever byte the
power died on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..core.apply import _directional_copy
from ..core.commands import (
    AddCommand,
    CopyCommand,
    DeltaScript,
    FillCommand,
    SpillCommand,
)
from ..delta.varint import decode_varint, encode_varint
from ..exceptions import DeltaFormatError, DeviceError, IntegrityError, ReproError

Buffer = Union[bytes, bytearray, memoryview]


class PowerFailureError(DeviceError):
    """Simulated loss of power during a storage write."""


class CrashingStorage:
    """A bytearray-like storage that dies after a set number of written bytes.

    The crash-test harness wraps the device image in this to simulate
    power failure at an exact byte: writes count against ``fuel`` and the
    write that exhausts it is *truncated at the failure point* (earlier
    bytes of that write land, later ones do not) before
    :class:`PowerFailureError` is raised — the nastiest realistic
    behaviour for an updater.
    """

    def __init__(self, data: Buffer, fuel: Optional[int] = None):
        self._data = bytearray(data)
        #: Bytes that may still be written; ``None`` disables crashing.
        self.fuel = fuel
        #: Total bytes written over the storage's lifetime.
        self.bytes_written = 0

    # -- bytearray protocol subset the appliers use ----------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            start, stop, stride = key.indices(len(self._data))
            if stride != 1:
                raise ValueError("strided storage writes are not supported")
            size = len(value)
            if self.fuel is not None and size > self.fuel:
                # Partial write: only `fuel` bytes land, then the lights go out.
                landed = self.fuel
                self._data[start:start + landed] = value[:landed]
                self.bytes_written += landed
                self.fuel = 0
                raise PowerFailureError(
                    "power failed %d bytes into a %d-byte write at offset %d"
                    % (landed, size, start)
                )
            self._data[key] = value
            self.bytes_written += size
            if self.fuel is not None:
                self.fuel -= size
        else:
            if self.fuel is not None and self.fuel < 1:
                raise PowerFailureError("power failed before a 1-byte write")
            self._data[key] = value
            self.bytes_written += 1
            if self.fuel is not None:
                self.fuel -= 1

    def resize(self, size: int) -> None:
        """Grow or shrink to ``size`` bytes (no fuel charge: metadata)."""
        if size < len(self._data):
            del self._data[size:]
        else:
            self._data.extend(b"\x00" * (size - len(self._data)))

    def flip(self, offset: int, mask: int = 0x01) -> None:
        """Flip bits at ``offset`` with no fuel charge (simulated bit rot).

        This is how the fault plane's ``storage.bitflip`` site corrupts
        the image: silently, outside the write path, the way a failing
        flash cell would.
        """
        self._data[offset] ^= mask

    def snapshot(self) -> bytes:
        """Current contents (what would survive the crash)."""
        return bytes(self._data)


#: Journal wire record types (see :meth:`Journal.to_bytes`).
_REC_STATE = 0x01
_REC_SCRATCH = 0x02
_REC_BACKUP = 0x03


@dataclass
class Journal:
    """The durable progress record.  Tiny by design.

    Real devices put this in a reserved flash sector; here it is a plain
    object the crash harness preserves across simulated reboots.  The
    in-memory protocol assumes journal *updates* are atomic (the
    standard one-sector assumption); :meth:`to_bytes` /
    :meth:`from_bytes` serialize the journal with per-record CRCs so a
    journal read back from storage can distinguish a torn tail (the
    power died mid-write of the final record — recoverable, the record
    is dropped) from bit rot in an earlier record (``IntegrityError``).
    """

    next_index: int = 0
    #: Pre-image of the current command's read∩write overlap (start, data).
    backup_offset: int = -1
    backup_data: bytes = b""
    #: Mirror of the volatile scratch buffer (grows as spills execute).
    scratch: bytearray = field(default_factory=bytearray)
    #: Set once the final command completes and the tail is truncated.
    complete: bool = False
    #: CRC32 folded, in order, over the storage bytes each completed
    #: command wrote (commands with disjoint writes — Equation 2's
    #: scripts — make this a digest of every already-applied region).
    applied_crc: int = 0
    #: Set by :meth:`from_bytes` when a partially-written trailing
    #: record was dropped during recovery (informational).
    torn_tail: bool = field(default=False, compare=False)

    @property
    def size_bytes(self) -> int:
        """Footprint a real device would need for this journal state.

        24 fixed bytes: command index, overlap offset, applied-region
        CRC, completion flag, and the record framing/CRCs of
        :meth:`to_bytes`, rounded up.
        """
        return 24 + len(self.backup_data) + len(self.scratch)

    # -- durable serialization -----------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for the journal sector: self-checking records.

        Each record is ``type u8 | length varint | payload | crc32
        u32le`` where the CRC covers the type, length and payload.
        Records are written in write-ahead order — state, scratch
        mirror, then the copy-overlap backup — so a torn final record
        is always the one whose protected action had not begun.
        """
        out = bytearray()

        def record(rtype: int, payload: bytes) -> None:
            rec = bytearray((rtype,))
            rec += encode_varint(len(payload))
            rec += payload
            out.extend(rec)
            out.extend((zlib.crc32(rec) & 0xFFFFFFFF).to_bytes(4, "little"))

        state = bytearray()
        state += encode_varint(self.next_index)
        state += (self.applied_crc & 0xFFFFFFFF).to_bytes(4, "little")
        state.append(1 if self.complete else 0)
        record(_REC_STATE, bytes(state))
        if self.scratch:
            record(_REC_SCRATCH, bytes(self.scratch))
        if self.backup_offset >= 0:
            backup = bytearray()
            backup += encode_varint(self.backup_offset)
            backup += self.backup_data
            record(_REC_BACKUP, bytes(backup))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: Buffer) -> "Journal":
        """Recover a journal from its serialized sector.

        A torn tail — the final record truncated or failing its CRC
        because the power died while it was being written — is
        *dropped*, not fatal: the journal recovers to the last fully
        durable state and ``torn_tail`` is set.  A CRC failure on a
        record that is **not** the last one cannot be explained by a
        torn write and raises :class:`~repro.exceptions.IntegrityError`
        with ``kind="journal"`` — the sector has rotted and resuming
        from it would corrupt the image.
        """
        journal = cls()
        data = bytes(data)
        pos = 0
        while pos < len(data):
            start = pos
            rtype = data[pos]
            try:
                paylen, body = decode_varint(data, pos + 1)
            except DeltaFormatError:
                if len(data) - (pos + 1) >= 10:
                    # Ten bytes were available and still no varint end:
                    # that is corruption, not a torn (truncated) write.
                    raise IntegrityError(
                        "journal record length at byte %d is not a valid "
                        "varint" % (pos + 1),
                        kind="journal", offset=pos + 1,
                    ) from None
                journal.torn_tail = True  # length field itself is torn
                break
            end = body + paylen + 4
            if end > len(data):
                journal.torn_tail = True
                break
            stored = int.from_bytes(data[end - 4:end], "little")
            computed = zlib.crc32(data[start:end - 4]) & 0xFFFFFFFF
            if stored != computed:
                if end == len(data):
                    journal.torn_tail = True  # partially overwritten tail
                    break
                raise IntegrityError(
                    "journal record at byte %d failed its CRC with %d "
                    "bytes following — the journal sector is corrupt, "
                    "not torn; resuming would damage the image"
                    % (start, len(data) - end),
                    kind="journal", offset=start,
                    expected=stored, actual=computed,
                )
            payload = data[body:end - 4]
            if rtype == _REC_STATE:
                journal.next_index, p = decode_varint(payload, 0)
                if p + 5 > len(payload):
                    raise DeltaFormatError(
                        "journal state record payload is short"
                    )
                journal.applied_crc = int.from_bytes(
                    payload[p:p + 4], "little"
                )
                journal.complete = bool(payload[p + 4])
            elif rtype == _REC_SCRATCH:
                journal.scratch = bytearray(payload)
            elif rtype == _REC_BACKUP:
                offset, p = decode_varint(payload, 0)
                journal.backup_offset = offset
                journal.backup_data = payload[p:]
            else:
                raise DeltaFormatError(
                    "unknown journal record type 0x%02x at byte %d"
                    % (rtype, start)
                )
            pos = end
        return journal


class JournaledApplier:
    """Applies an in-place script to storage with crash-safe resumption.

    Usage::

        applier = JournaledApplier(script, journal)   # journal persists
        applier.run(storage)                          # may raise PowerFailureError
        ...reboot...
        JournaledApplier(script, journal).run(storage)   # resumes, finishes

    ``run`` is idempotent once the journal reports completion.  The
    script must be in-place safe (converted); this is not re-verified
    here — the converter and verifier own that contract.
    """

    def __init__(self, script: DeltaScript, journal: Journal):
        self._script = script
        self._journal = journal

    def run(self, storage: CrashingStorage, *, chunk_size: int = 4096,
            verify_resume: bool = True) -> None:
        """Execute (or resume) the script against ``storage``.

        On a resume (the journal shows progress), the storage regions
        written by every completed command are re-digested and checked
        against the journal's cumulative ``applied_crc`` before any new
        write: replay after a clean power cut passes, but storage that
        rotted while the device was down raises
        :class:`~repro.exceptions.IntegrityError` with ``kind="resume"``
        instead of silently building a corrupt image on top.  Pass
        ``verify_resume=False`` to skip (trusted storage).
        """
        journal = self._journal
        script = self._script
        if journal.complete:
            return
        if len(journal.scratch) < script.scratch_length:
            journal.scratch.extend(
                b"\x00" * (script.scratch_length - len(journal.scratch))
            )
        needed = max(script.version_length, len(storage))
        if needed > len(storage):
            storage.resize(needed)
        if verify_resume and journal.next_index > 0:
            self._verify_applied(storage)

        commands = script.commands
        while journal.next_index < len(commands):
            index = journal.next_index
            cmd = commands[index]
            if isinstance(cmd, CopyCommand):
                self._run_copy(storage, cmd, chunk_size)
            elif isinstance(cmd, SpillCommand):
                # Scratch lives in the journal so it survives reboots; by
                # Equation 2 the source region is still pristine, so
                # re-execution after a crash is a pure re-read.
                journal.scratch[cmd.scratch:cmd.scratch + cmd.length] = \
                    storage[cmd.src:cmd.src + cmd.length]
            elif isinstance(cmd, FillCommand):
                storage[cmd.dst:cmd.dst + cmd.length] = bytes(
                    journal.scratch[cmd.scratch:cmd.scratch + cmd.length]
                )
            elif isinstance(cmd, AddCommand):
                storage[cmd.dst:cmd.dst + cmd.length] = cmd.data
            else:  # pragma: no cover - exhaustive over command types
                raise ReproError("unknown command type %r" % (cmd,))
            # Command finished: fold what it wrote into the applied
            # digest, then advance the journal (atomic by assumption)
            # and drop any overlap backup.
            journal.applied_crc = self._fold_applied(
                storage, cmd, journal.applied_crc
            )
            journal.backup_offset = -1
            journal.backup_data = b""
            journal.next_index = index + 1

        storage.resize(script.version_length)
        journal.complete = True

    @staticmethod
    def _fold_applied(storage: CrashingStorage, cmd,
                      crc: int) -> int:
        """Fold one completed command's written storage bytes into ``crc``.

        Spills write no storage, so they fold nothing — their durable
        effect lives in the journal's scratch mirror, which has its own
        record CRC.
        """
        if isinstance(cmd, SpillCommand):
            return crc
        start = cmd.write_interval.start
        stop = cmd.write_interval.stop + 1
        return zlib.crc32(bytes(storage[start:stop]), crc) & 0xFFFFFFFF

    def _verify_applied(self, storage: CrashingStorage) -> None:
        """Re-digest every completed command's written region on resume."""
        journal = self._journal
        crc = 0
        for cmd in self._script.commands[:journal.next_index]:
            crc = self._fold_applied(storage, cmd, crc)
        if crc != journal.applied_crc:
            raise IntegrityError(
                "resume verification failed: the %d already-applied "
                "commands' regions digest to 0x%08x but the journal "
                "recorded 0x%08x — storage was corrupted while the "
                "device was down; halting instead of building on rot"
                % (journal.next_index, crc, journal.applied_crc),
                kind="resume", expected=journal.applied_crc, actual=crc,
            )

    def _run_copy(self, storage: CrashingStorage, cmd: CopyCommand,
                  chunk_size: int) -> None:
        """Execute one copy idempotently.

        Non-overlapping copies re-read an untouched source, so naive
        re-execution is safe.  A self-overlapping copy can clobber its
        own source mid-flight, so the read∩write overlap's pre-image is
        journaled *before* the first byte is written; on resume the
        overlap is restored first, returning the region to its pristine
        state, and the copy re-runs from scratch.
        """
        journal = self._journal
        overlap = cmd.read_interval.intersection(cmd.write_interval)
        if not overlap.empty:
            if journal.backup_offset == overlap.start and \
                    len(journal.backup_data) == overlap.length:
                # Resuming an interrupted attempt: undo its partial writes
                # inside the overlap so the source reads correctly again.
                storage[overlap.start:overlap.stop + 1] = journal.backup_data
            else:
                journal.backup_offset = overlap.start
                journal.backup_data = bytes(
                    storage[overlap.start:overlap.stop + 1]
                )
        # Storage may be a CrashingStorage; _directional_copy only uses
        # the subscript protocol, so it works on either buffer type.
        _directional_copy(storage, cmd.src, cmd.dst, cmd.length, chunk_size)


def apply_with_power_failures(
    script: DeltaScript,
    reference: Buffer,
    crash_fuel_schedule: List[Optional[int]],
    *,
    chunk_size: int = 4096,
) -> bytes:
    """Test harness: apply ``script`` across a series of power failures.

    Each entry of ``crash_fuel_schedule`` is the write budget for one
    boot (``None`` = no crash).  The storage and journal persist across
    boots, exactly like flash and a journal sector.  Returns the final
    image; raises if the schedule ends before the patch completes.
    """
    storage = CrashingStorage(reference)
    journal = Journal()
    for fuel in crash_fuel_schedule:
        storage.fuel = fuel
        try:
            JournaledApplier(script, journal).run(storage, chunk_size=chunk_size)
        except PowerFailureError:
            continue  # reboot with whatever landed
        break
    if not journal.complete:
        raise ReproError("crash schedule exhausted before the patch completed")
    return storage.snapshot()
