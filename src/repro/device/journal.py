"""Power-failure-safe in-place application: journaled, resumable patching.

In-place reconstruction's classic operational hazard: lose power halfway
through and the image is neither the old version nor the new one, and —
because copies destroy their sources — simply re-running the delta does
not recover.  Production in-place updaters solve this with a small
durable *journal*; this module implements that protocol over the
simulated device and proves it with an exhaustive crash-point harness in
the tests.

Why resumption is possible at all is a direct corollary of the paper's
Equation 2: in a converted script **no command reads bytes an earlier
command wrote**, so when commands ``0..i-1`` are done, the bytes command
``i`` wants to read are still exactly the reference bytes — *except*
bytes command ``i`` itself may have half-written (a self-overlapping
copy interrupted mid-flight).  Hence the journal only ever needs:

* the index of the next unfinished command (one integer);
* a pre-image of the current command's read∩write overlap, saved before
  the command starts (non-empty only for self-overlapping copies);
* the scratch buffer contents (spilled bytes live in volatile RAM, but
  later commands depend on them; the journal mirrors scratch as spills
  execute).

Every command is made idempotent by that state, so re-executing the
interrupted command after a crash is always safe, whatever byte the
power died on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..core.apply import _directional_copy
from ..core.commands import (
    AddCommand,
    CopyCommand,
    DeltaScript,
    FillCommand,
    SpillCommand,
)
from ..exceptions import DeviceError, ReproError

Buffer = Union[bytes, bytearray, memoryview]


class PowerFailureError(DeviceError):
    """Simulated loss of power during a storage write."""


class CrashingStorage:
    """A bytearray-like storage that dies after a set number of written bytes.

    The crash-test harness wraps the device image in this to simulate
    power failure at an exact byte: writes count against ``fuel`` and the
    write that exhausts it is *truncated at the failure point* (earlier
    bytes of that write land, later ones do not) before
    :class:`PowerFailureError` is raised — the nastiest realistic
    behaviour for an updater.
    """

    def __init__(self, data: Buffer, fuel: Optional[int] = None):
        self._data = bytearray(data)
        #: Bytes that may still be written; ``None`` disables crashing.
        self.fuel = fuel
        #: Total bytes written over the storage's lifetime.
        self.bytes_written = 0

    # -- bytearray protocol subset the appliers use ----------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            start, stop, stride = key.indices(len(self._data))
            if stride != 1:
                raise ValueError("strided storage writes are not supported")
            size = len(value)
            if self.fuel is not None and size > self.fuel:
                # Partial write: only `fuel` bytes land, then the lights go out.
                landed = self.fuel
                self._data[start:start + landed] = value[:landed]
                self.bytes_written += landed
                self.fuel = 0
                raise PowerFailureError(
                    "power failed %d bytes into a %d-byte write at offset %d"
                    % (landed, size, start)
                )
            self._data[key] = value
            self.bytes_written += size
            if self.fuel is not None:
                self.fuel -= size
        else:
            if self.fuel is not None and self.fuel < 1:
                raise PowerFailureError("power failed before a 1-byte write")
            self._data[key] = value
            self.bytes_written += 1
            if self.fuel is not None:
                self.fuel -= 1

    def resize(self, size: int) -> None:
        """Grow or shrink to ``size`` bytes (no fuel charge: metadata)."""
        if size < len(self._data):
            del self._data[size:]
        else:
            self._data.extend(b"\x00" * (size - len(self._data)))

    def snapshot(self) -> bytes:
        """Current contents (what would survive the crash)."""
        return bytes(self._data)


@dataclass
class Journal:
    """The durable progress record.  Tiny by design.

    Real devices put this in a reserved flash sector; here it is a plain
    object the crash harness preserves across simulated reboots (journal
    writes are assumed atomic, the standard assumption for a one-sector
    journal).
    """

    next_index: int = 0
    #: Pre-image of the current command's read∩write overlap (start, data).
    backup_offset: int = -1
    backup_data: bytes = b""
    #: Mirror of the volatile scratch buffer (grows as spills execute).
    scratch: bytearray = field(default_factory=bytearray)
    #: Set once the final command completes and the tail is truncated.
    complete: bool = False

    @property
    def size_bytes(self) -> int:
        """Footprint a real device would need for this journal state."""
        return 16 + len(self.backup_data) + len(self.scratch)


class JournaledApplier:
    """Applies an in-place script to storage with crash-safe resumption.

    Usage::

        applier = JournaledApplier(script, journal)   # journal persists
        applier.run(storage)                          # may raise PowerFailureError
        ...reboot...
        JournaledApplier(script, journal).run(storage)   # resumes, finishes

    ``run`` is idempotent once the journal reports completion.  The
    script must be in-place safe (converted); this is not re-verified
    here — the converter and verifier own that contract.
    """

    def __init__(self, script: DeltaScript, journal: Journal):
        self._script = script
        self._journal = journal

    def run(self, storage: CrashingStorage, *, chunk_size: int = 4096) -> None:
        """Execute (or resume) the script against ``storage``."""
        journal = self._journal
        script = self._script
        if journal.complete:
            return
        if len(journal.scratch) < script.scratch_length:
            journal.scratch.extend(
                b"\x00" * (script.scratch_length - len(journal.scratch))
            )
        needed = max(script.version_length, len(storage))
        if needed > len(storage):
            storage.resize(needed)

        commands = script.commands
        while journal.next_index < len(commands):
            index = journal.next_index
            cmd = commands[index]
            if isinstance(cmd, CopyCommand):
                self._run_copy(storage, cmd, chunk_size)
            elif isinstance(cmd, SpillCommand):
                # Scratch lives in the journal so it survives reboots; by
                # Equation 2 the source region is still pristine, so
                # re-execution after a crash is a pure re-read.
                journal.scratch[cmd.scratch:cmd.scratch + cmd.length] = \
                    storage[cmd.src:cmd.src + cmd.length]
            elif isinstance(cmd, FillCommand):
                storage[cmd.dst:cmd.dst + cmd.length] = bytes(
                    journal.scratch[cmd.scratch:cmd.scratch + cmd.length]
                )
            elif isinstance(cmd, AddCommand):
                storage[cmd.dst:cmd.dst + cmd.length] = cmd.data
            else:  # pragma: no cover - exhaustive over command types
                raise ReproError("unknown command type %r" % (cmd,))
            # Command finished: advance the journal (atomic by assumption)
            # and drop any overlap backup.
            journal.backup_offset = -1
            journal.backup_data = b""
            journal.next_index = index + 1

        storage.resize(script.version_length)
        journal.complete = True

    def _run_copy(self, storage: CrashingStorage, cmd: CopyCommand,
                  chunk_size: int) -> None:
        """Execute one copy idempotently.

        Non-overlapping copies re-read an untouched source, so naive
        re-execution is safe.  A self-overlapping copy can clobber its
        own source mid-flight, so the read∩write overlap's pre-image is
        journaled *before* the first byte is written; on resume the
        overlap is restored first, returning the region to its pristine
        state, and the copy re-runs from scratch.
        """
        journal = self._journal
        overlap = cmd.read_interval.intersection(cmd.write_interval)
        if not overlap.empty:
            if journal.backup_offset == overlap.start and \
                    len(journal.backup_data) == overlap.length:
                # Resuming an interrupted attempt: undo its partial writes
                # inside the overlap so the source reads correctly again.
                storage[overlap.start:overlap.stop + 1] = journal.backup_data
            else:
                journal.backup_offset = overlap.start
                journal.backup_data = bytes(
                    storage[overlap.start:overlap.stop + 1]
                )
        # Storage may be a CrashingStorage; _directional_copy only uses
        # the subscript protocol, so it works on either buffer type.
        _directional_copy(storage, cmd.src, cmd.dst, cmd.length, chunk_size)


def apply_with_power_failures(
    script: DeltaScript,
    reference: Buffer,
    crash_fuel_schedule: List[Optional[int]],
    *,
    chunk_size: int = 4096,
) -> bytes:
    """Test harness: apply ``script`` across a series of power failures.

    Each entry of ``crash_fuel_schedule`` is the write budget for one
    boot (``None`` = no crash).  The storage and journal persist across
    boots, exactly like flash and a journal sector.  Returns the final
    image; raises if the schedule ends before the patch completes.
    """
    storage = CrashingStorage(reference)
    journal = Journal()
    for fuel in crash_fuel_schedule:
        storage.fuel = fuel
        try:
            JournaledApplier(script, journal).run(storage, chunk_size=chunk_size)
        except PowerFailureError:
            continue  # reboot with whatever landed
        break
    if not journal.complete:
        raise ReproError("crash schedule exhausted before the patch completed")
    return storage.snapshot()
