"""Simulated constrained device: storage image plus a RAM budget.

The paper's motivating targets — PDAs, set-top boxes, sensor controllers
— hold the installed software image in storage and have only a small RAM
working area; they cannot hold two versions of the image at once.
:class:`ConstrainedDevice` models exactly that: a byte-addressable
storage image and an accounted RAM allocator that raises
:class:`~repro.exceptions.OutOfMemoryError` the moment a reconstruction
strategy asks for more working memory than the device has.

The two reconstruction entry points make the paper's contrast executable:

* :meth:`apply_delta_two_space` needs RAM for the whole new version (the
  conventional method's "scratch space") and fails on small devices;
* :meth:`apply_delta_in_place` runs the strict in-place engine over the
  storage image, needing only the staged delta payload and a bounded
  copy window.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.apply import (
    apply_delta,
    apply_in_place,
    preflight_in_place,
    verify_reference,
)
from ..core.commands import DeltaScript
from ..delta.encode import decode_delta
from ..delta.wrapper import INFLATE_RAM, SealedReader, is_sealed, unseal
from ..exceptions import (
    OutOfMemoryError,
    StorageBoundsError,
    VerificationError,
)


@dataclass
class RamAccount:
    """Accounted allocator for a device's working memory."""

    budget: int
    in_use: int = 0
    peak: int = 0
    #: (label, size) of live allocations, for error messages and tests.
    allocations: List[Tuple[str, int]] = field(default_factory=list)

    def allocate(self, label: str, size: int) -> None:
        """Reserve ``size`` bytes; raises when the budget would be exceeded."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if self.in_use + size > self.budget:
            raise OutOfMemoryError(
                "device RAM exhausted: %r needs %d bytes, %d of %d in use"
                % (label, size, self.in_use, self.budget)
            )
        self.in_use += size
        self.peak = max(self.peak, self.in_use)
        self.allocations.append((label, size))

    def free(self, label: str) -> None:
        """Release the most recent allocation with ``label``."""
        for i in range(len(self.allocations) - 1, -1, -1):
            if self.allocations[i][0] == label:
                self.in_use -= self.allocations[i][1]
                del self.allocations[i]
                return
        raise KeyError("no live allocation labelled %r" % label)


class ConstrainedDevice:
    """A network-attached device with a storage image and limited RAM.

    ``storage_limit`` caps the image size (flash capacity); ``ram``
    bounds all working memory a reconstruction may use.  ``copy_window``
    is the read/write buffer for self-overlapping copies (the paper's
    "buffer of any size").
    """

    def __init__(
        self,
        image: bytes,
        *,
        ram: int = 64 * 1024,
        storage_limit: Optional[int] = None,
        copy_window: int = 4096,
        name: str = "device",
    ):
        self.name = name
        self.storage_limit = storage_limit if storage_limit is not None else max(
            len(image) * 2, 1 << 20
        )
        if len(image) > self.storage_limit:
            raise StorageBoundsError(
                "image of %d bytes exceeds storage limit %d"
                % (len(image), self.storage_limit)
            )
        self._storage = bytearray(image)
        self.ram = RamAccount(budget=ram)
        self.copy_window = copy_window
        #: Count of update operations applied, for session logs.
        self.updates_applied = 0

    # -- storage -------------------------------------------------------

    @property
    def image(self) -> bytes:
        """Snapshot of the installed software image."""
        return bytes(self._storage)

    @property
    def image_size(self) -> int:
        """Current installed image size in bytes."""
        return len(self._storage)

    def image_crc32(self) -> int:
        """Integrity checksum of the installed image."""
        return zlib.crc32(self._storage) & 0xFFFFFFFF

    # -- reconstruction strategies --------------------------------------

    def apply_delta_two_space(self, payload: bytes) -> None:
        """Conventional reconstruction: stage payload + whole new version in RAM.

        This is the method the paper argues constrained devices cannot
        afford: scratch space for the complete new version.  Raises
        :class:`OutOfMemoryError` when the budget is too small, leaving
        the image untouched.
        """
        self.ram.allocate("delta-payload", len(payload))
        unsealed = False
        try:
            if is_sealed(payload):
                raw = unseal(payload)
                self.ram.allocate("unsealed-delta", len(raw))
                unsealed = True
                payload = raw
            script, header = decode_delta(payload)
            verify_reference(header, self._storage)
            self.ram.allocate("version-scratch", script.version_length)
            try:
                new_image = apply_delta(script, self._storage)
                self._verify(new_image, header)
                self._commit(new_image)
            finally:
                self.ram.free("version-scratch")
        finally:
            if unsealed:
                self.ram.free("unsealed-delta")
            self.ram.free("delta-payload")

    def apply_delta_in_place(self, payload: bytes) -> None:
        """In-place reconstruction: only the payload and a copy window in RAM.

        Requires an in-place safe delta (the strict engine raises
        :class:`~repro.exceptions.WriteBeforeReadError` otherwise, before
        any byte of the image is modified only if the conflict is at the
        first command — in general a mid-apply failure leaves the image
        corrupt, exactly the hazard the paper's converter exists to
        remove; callers should convert, not hope).
        """
        self.ram.allocate("delta-payload", len(payload))
        self.ram.allocate("copy-window", self.copy_window)
        scratch_allocated = False
        unsealed = False
        try:
            if is_sealed(payload):
                raw = unseal(payload)
                self.ram.allocate("unsealed-delta", len(raw))
                unsealed = True
                payload = raw
            script, header = decode_delta(payload)
            if script.version_length > self.storage_limit:
                raise StorageBoundsError(
                    "new version (%d bytes) exceeds storage limit %d"
                    % (script.version_length, self.storage_limit)
                )
            preflight_in_place(script, header, self._storage)
            if header.scratch_length:
                self.ram.allocate("scratch", header.scratch_length)
                scratch_allocated = True
            apply_in_place(
                script, self._storage, strict=True, chunk_size=self.copy_window
            )
            self._verify(self._storage, header)
            self.updates_applied += 1
        finally:
            if unsealed:
                self.ram.free("unsealed-delta")
            if scratch_allocated:
                self.ram.free("scratch")
            self.ram.free("copy-window")
            self.ram.free("delta-payload")

    def apply_delta_streaming(self, payload: bytes) -> None:
        """In-place reconstruction with the delta *streamed*, not staged.

        The delta's commands execute in file order and each codeword is
        tiny, so the device never holds the payload: RAM is charged only
        for a one-codeword stream buffer plus the copy window.  This is
        the smallest-footprint strategy — it updates devices whose RAM is
        smaller than the delta file itself.
        """
        import io

        from ..delta.stream import apply_delta_stream, read_header

        stream_buffer = 512  # one codeword: opcode + fields + <=255 literals
        self.ram.allocate("stream-buffer", stream_buffer)
        self.ram.allocate("copy-window", self.copy_window)
        scratch_allocated = False
        inflater_allocated = False
        try:
            if is_sealed(payload):
                # Decompress on the fly: only zlib's window is resident.
                self.ram.allocate("inflate-window", INFLATE_RAM)
                inflater_allocated = True
                header = read_header(SealedReader(payload))
            else:
                header = read_header(io.BytesIO(payload))
            if header.version_length > self.storage_limit:
                raise StorageBoundsError(
                    "new version (%d bytes) exceeds storage limit %d"
                    % (header.version_length, self.storage_limit)
                )
            verify_reference(header, self._storage)
            if header.scratch_length:
                self.ram.allocate("scratch", header.scratch_length)
                scratch_allocated = True
            source = SealedReader(payload) if is_sealed(payload) else payload
            apply_delta_stream(
                source, self._storage, strict=True, chunk_size=self.copy_window
            )
            self._verify(self._storage, header)
            self.updates_applied += 1
        finally:
            if inflater_allocated:
                self.ram.free("inflate-window")
            if scratch_allocated:
                self.ram.free("scratch")
            self.ram.free("copy-window")
            self.ram.free("stream-buffer")

    def install_full_image(self, image: bytes) -> None:
        """Full-image install: stage the entire new image in RAM, then commit.

        The no-compression baseline for the update-time bench; sealed
        (zlib-wrapped) images are accepted and charged for both the
        received and the inflated copy.
        """
        self.ram.allocate("full-image", len(image))
        unsealed = False
        try:
            if is_sealed(image):
                raw = unseal(image)
                self.ram.allocate("unsealed-image", len(raw))
                unsealed = True
                image = raw
            self._commit(bytearray(image))
        finally:
            if unsealed:
                self.ram.free("unsealed-image")
            self.ram.free("full-image")

    # -- internals -------------------------------------------------------

    def _commit(self, new_image: bytearray) -> None:
        if len(new_image) > self.storage_limit:
            raise StorageBoundsError(
                "new image (%d bytes) exceeds storage limit %d"
                % (len(new_image), self.storage_limit)
            )
        self._storage = bytearray(new_image)
        self.updates_applied += 1

    def _verify(self, image: bytes, header) -> None:
        if not header.has_checksum:
            return  # producer recorded no checksum (explicit flag in
            # IPD2; for IPD1 the legacy zero-CRC heuristic applies)
        actual = zlib.crc32(image) & 0xFFFFFFFF
        if actual != header.version_crc32:
            raise VerificationError(
                "reconstructed image checksum 0x%08x != expected 0x%08x"
                % (actual, header.version_crc32)
            )
