"""Low-bandwidth channel model for software distribution.

Section 1 of the paper motivates delta compression by transfer time over
"low bandwidth channels, such as the Internet" of 1998.  This channel
model is deliberately simple — fixed round-trip latency plus serialized
bytes at a fixed rate, with optional per-byte corruption — because the
experiments only need relative transfer times between payload sizes, not
a TCP simulator.

Presets cover the era's device links (9.6 kbit/s cellular, 28.8/56 kbit/s
modems, 128 kbit/s ISDN, 1.5 Mbit/s T1) so the update-time bench can
sweep them.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import TransmissionError


@dataclass(frozen=True)
class Channel:
    """A point-to-point link: ``bandwidth_bps`` bits/second, ``latency_s`` RTT."""

    name: str
    bandwidth_bps: float
    latency_s: float = 0.1
    #: Probability any single transfer is corrupted (models the lossy
    #: links that make end-to-end checksums necessary).
    corruption_rate: float = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to deliver ``nbytes`` including one round trip of latency."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self.latency_s + (8.0 * nbytes) / self.bandwidth_bps

    def transmit(self, payload: bytes, rng: Optional[random.Random] = None) -> "Delivery":
        """Simulate sending ``payload``; returns the delivery record.

        With ``corruption_rate`` set and an ``rng`` supplied, the payload
        may arrive flipped; receivers relying on checksums (the device
        layer) will detect it and can re-request.
        """
        data = payload
        corrupted = False
        if self.corruption_rate > 0.0 and rng is not None:
            if rng.random() < self.corruption_rate:
                if not payload:
                    raise TransmissionError("cannot corrupt an empty payload")
                pos = rng.randrange(len(payload))
                flipped = bytes([payload[pos] ^ (1 << rng.randrange(8))])
                data = payload[:pos] + flipped + payload[pos + 1:]
                corrupted = True
        return Delivery(
            payload=data,
            nbytes=len(payload),
            seconds=self.transfer_time(len(payload)),
            corrupted=corrupted,
        )


@dataclass(frozen=True)
class Delivery:
    """Outcome of one simulated transfer."""

    payload: bytes
    nbytes: int
    seconds: float
    corrupted: bool

    def checksum(self) -> int:
        """CRC32 of the received payload."""
        return zlib.crc32(self.payload) & 0xFFFFFFFF


#: Link presets from the paper's era, by common name.
CHANNELS: Dict[str, Channel] = {
    "cellular-9.6k": Channel("cellular-9.6k", 9_600, latency_s=0.8),
    "modem-28.8k": Channel("modem-28.8k", 28_800, latency_s=0.3),
    "modem-56k": Channel("modem-56k", 56_000, latency_s=0.25),
    "isdn-128k": Channel("isdn-128k", 128_000, latency_s=0.15),
    "t1-1.5m": Channel("t1-1.5m", 1_536_000, latency_s=0.08),
}


def get_channel(name: str) -> Channel:
    """Look up a preset channel by name."""
    try:
        return CHANNELS[name]
    except KeyError:
        raise ValueError(
            "unknown channel %r; choose from %s" % (name, ", ".join(sorted(CHANNELS)))
        ) from None
