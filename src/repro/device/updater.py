"""End-to-end software update sessions: server, channel, device.

This orchestrates the paper's motivating scenario.  An
:class:`UpdateServer` holds the released versions of an image; when a
device on release *k* requests release *k+1*, the server differences the
two, post-processes the delta for in-place reconstruction, serializes it
with a checksum, and ships it over a :class:`~repro.device.channel.Channel`.
The :class:`~repro.device.memory.ConstrainedDevice` applies it in the
storage the old image occupies.

:func:`run_update` compares the four distribution strategies the
update-time bench sweeps:

* ``"full"`` — send the whole new image (no compression);
* ``"delta"`` — send a conventional delta; the device needs scratch RAM
  for the new version (fails on small devices);
* ``"in-place"`` — send a converted delta, staged in RAM then applied in
  the storage the old image occupies;
* ``"in-place-stream"`` — the same converted delta consumed directly off
  the wire: RAM independent of both image and delta size (the smallest
  possible footprint, beyond what the paper required).

Corrupted deliveries are detected by checksum and retransmitted, up to
``max_retries``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.convert import make_in_place
from ..delta import ALGORITHMS
from ..delta.encode import FORMAT_INPLACE, FORMAT_SEQUENTIAL, encode_delta, version_checksum
from ..delta.wrapper import seal
from ..exceptions import (
    DeltaFormatError,
    OutOfMemoryError,
    ReproError,
    StorageBoundsError,
    TransmissionError,
    VerificationError,
)
from .channel import Channel, Delivery
from .memory import ConstrainedDevice

STRATEGIES = ("full", "delta", "in-place", "in-place-stream")


@dataclass
class UpdateOutcome:
    """Record of one update attempt."""

    strategy: str
    payload_bytes: int
    image_bytes: int
    transfer_seconds: float
    attempts: int = 1
    succeeded: bool = False
    failure: str = ""

    @property
    def compression_ratio(self) -> float:
        """Payload size relative to the full image (lower is better)."""
        if self.image_bytes == 0:
            return 1.0
        return self.payload_bytes / self.image_bytes


class UpdateServer:
    """Holds released images and builds update payloads on demand."""

    def __init__(self, *, algorithm: str = "correcting", policy: str = "local-min",
                 scratch_budget: int = 0, transport_compress: bool = False):
        self.algorithm = algorithm
        self.policy = policy
        #: Apply the zlib transport envelope to every payload built.
        self.transport_compress = transport_compress
        #: Device scratch bytes the server may assume (bounded-scratch
        #: extension); evictions route through scratch up to this budget.
        self.scratch_budget = scratch_budget
        self._releases: Dict[str, List[bytes]] = {}

    def publish(self, package: str, image: bytes) -> int:
        """Append a new release of ``package``; returns its release number."""
        releases = self._releases.setdefault(package, [])
        releases.append(bytes(image))
        return len(releases) - 1

    def release(self, package: str, number: int) -> bytes:
        """The bytes of one published release."""
        return self._releases[package][number]

    def latest_release(self, package: str) -> int:
        """Highest release number published for ``package``."""
        if package not in self._releases or not self._releases[package]:
            raise KeyError("no releases published for %r" % package)
        return len(self._releases[package]) - 1

    def build_payload(self, package: str, have: int, want: int, strategy: str) -> bytes:
        """Serialize the update from release ``have`` to ``want``."""
        wrap = seal if self.transport_compress else (lambda p: p)
        new = self.release(package, want)
        if strategy == "full":
            return wrap(new)
        old = self.release(package, have)
        script = ALGORITHMS[self.algorithm](old, new)
        if strategy == "delta":
            return wrap(encode_delta(
                script, FORMAT_SEQUENTIAL, version_crc32=version_checksum(new)
            ))
        if strategy in ("in-place", "in-place-stream"):
            converted = make_in_place(script, old, policy=self.policy,
                                      scratch_budget=self.scratch_budget)
            return wrap(encode_delta(
                converted.script, FORMAT_INPLACE, version_crc32=version_checksum(new)
            ))
        raise ValueError(
            "unknown strategy %r; choose from %s" % (strategy, ", ".join(STRATEGIES))
        )


def run_update(
    server: UpdateServer,
    device: ConstrainedDevice,
    channel: Channel,
    package: str,
    *,
    have: int,
    want: Optional[int] = None,
    strategy: str = "in-place",
    max_retries: int = 3,
    rng: Optional[random.Random] = None,
) -> UpdateOutcome:
    """Run one update session end to end and report what happened.

    The outcome records payload size and cumulative (simulated) transfer
    time including retransmissions; ``succeeded=False`` outcomes carry
    the failure reason (out of memory, exhausted retries, ...) so benches
    can tabulate strategy viability per device class.
    """
    if want is None:
        want = server.latest_release(package)
    payload = server.build_payload(package, have, want, strategy)
    image_bytes = len(server.release(package, want))
    outcome = UpdateOutcome(
        strategy=strategy,
        payload_bytes=len(payload),
        image_bytes=image_bytes,
        transfer_seconds=0.0,
    )

    appliers: Dict[str, Callable[[bytes], None]] = {
        "full": device.install_full_image,
        "delta": device.apply_delta_two_space,
        "in-place": device.apply_delta_in_place,
        "in-place-stream": device.apply_delta_streaming,
    }
    apply_payload = appliers[strategy]

    for attempt in range(1, max_retries + 1):
        outcome.attempts = attempt
        delivery: Delivery = channel.transmit(payload, rng)
        outcome.transfer_seconds += delivery.seconds
        try:
            apply_payload(delivery.payload)
        except DeltaFormatError:
            # Corruption caught while parsing, before any byte of the
            # image changed: safe to retransmit under every strategy.
            continue
        except (OutOfMemoryError, StorageBoundsError) as exc:
            # Deterministic device constraints: retrying cannot help.
            outcome.failure = "%s: %s" % (type(exc).__name__, exc)
            return outcome
        except ReproError as exc:
            # Two-space strategies commit only on success, so any other
            # failure (bad ranges, checksum mismatch) is retryable.  The
            # in-place strategy mutates the image as it goes: a failure
            # past the parse stage may have damaged it, and recovery
            # would need a full re-image — report it.
            if strategy in ("in-place", "in-place-stream"):
                outcome.failure = "%s: %s (image may be damaged)" % (
                    type(exc).__name__, exc,
                )
                return outcome
            continue
        expected = server.release(package, want)
        if device.image != expected:
            outcome.failure = "reconstructed image differs from release %d" % want
            return outcome
        outcome.succeeded = True
        return outcome
    outcome.failure = "exhausted %d transmission attempts" % max_retries
    return outcome
