"""End-to-end software update sessions: server, channel, device.

This orchestrates the paper's motivating scenario.  An
:class:`UpdateServer` holds the released versions of an image; when a
device on release *k* requests release *k+1*, the server differences the
two, post-processes the delta for in-place reconstruction, serializes it
with a checksum, and ships it over a :class:`~repro.device.channel.Channel`.
The :class:`~repro.device.memory.ConstrainedDevice` applies it in the
storage the old image occupies.

:func:`run_update` compares the four distribution strategies the
update-time bench sweeps:

* ``"full"`` — send the whole new image (no compression);
* ``"delta"`` — send a conventional delta; the device needs scratch RAM
  for the new version (fails on small devices);
* ``"in-place"`` — send a converted delta, staged in RAM then applied in
  the storage the old image occupies;
* ``"in-place-stream"`` — the same converted delta consumed directly off
  the wire: RAM independent of both image and delta size (the smallest
  possible footprint, beyond what the paper required).

Corrupted deliveries are detected by checksum and retransmitted, up to
``max_retries``; a :class:`~repro.faults.FaultPlan` can inject
deterministic link failures (``channel.transmit``) that the session
survives with exponential backoff, and power cuts (``device.power``)
that :func:`run_journaled_update` rides out by resuming from the
journal.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.apply import preflight_in_place, storage_crc32
from ..core.compose import compose_chain
from ..core.convert import make_in_place
from ..delta import ALGORITHMS
from ..delta.encode import (
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    decode_delta,
    encode_delta,
    version_checksum,
)
from ..delta.wrapper import is_sealed, seal, unseal
from ..exceptions import (
    DeltaFormatError,
    DeltaRangeError,
    IntegrityError,
    OutOfMemoryError,
    ReproError,
    StorageBoundsError,
    TransmissionError,
    VerificationError,
)
from ..faults import FaultPlan, describe_failure, jitter_draw
from .channel import Channel, Delivery
from .journal import CrashingStorage, Journal, JournaledApplier, PowerFailureError
from .memory import ConstrainedDevice

STRATEGIES = ("full", "delta", "in-place", "in-place-stream")


def _sleep_backoff(attempt: int, base: float, factor: float,
                   cap: float = 5.0, jitter: float = 0.0,
                   seed: int = 0, scope: str = "") -> None:
    """Exponential backoff before retry ``attempt + 1`` (no-op at base 0).

    ``jitter`` adds up to that fraction of the delay again, drawn via
    :func:`repro.faults.jitter_draw` from ``(seed, scope, attempt)`` —
    never from process-global randomness — so a session's retry timing
    is byte-reproducible from its fault seed no matter which executor
    (or machine) replays it.
    """
    if base <= 0.0:
        return
    delay = min(cap, base * (factor ** (attempt - 1)))
    if jitter > 0.0:
        delay += delay * jitter * jitter_draw(seed, scope, attempt)
    time.sleep(delay)


@dataclass
class UpdateOutcome:
    """Record of one update attempt."""

    strategy: str
    payload_bytes: int
    image_bytes: int
    transfer_seconds: float
    attempts: int = 1
    succeeded: bool = False
    failure: str = ""
    #: Transient failures survived along the way (``"Type: message"``).
    faults: List[str] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Payload size relative to the full image (lower is better)."""
        if self.image_bytes == 0:
            return 1.0
        return self.payload_bytes / self.image_bytes


class UpdateServer:
    """Holds released images and builds update payloads on demand."""

    def __init__(self, *, algorithm: str = "correcting", policy: str = "local-min",
                 scratch_budget: int = 0, transport_compress: bool = False):
        self.algorithm = algorithm
        self.policy = policy
        #: Apply the zlib transport envelope to every payload built.
        self.transport_compress = transport_compress
        #: Device scratch bytes the server may assume (bounded-scratch
        #: extension); evictions route through scratch up to this budget.
        self.scratch_budget = scratch_budget
        self._releases: Dict[str, List[bytes]] = {}

    def publish(self, package: str, image: bytes) -> int:
        """Append a new release of ``package``; returns its release number."""
        releases = self._releases.setdefault(package, [])
        releases.append(bytes(image))
        return len(releases) - 1

    def release(self, package: str, number: int) -> bytes:
        """The bytes of one published release."""
        return self._releases[package][number]

    def latest_release(self, package: str) -> int:
        """Highest release number published for ``package``."""
        if package not in self._releases or not self._releases[package]:
            raise KeyError("no releases published for %r" % package)
        return len(self._releases[package]) - 1

    def build_payload(self, package: str, have: int, want: int, strategy: str) -> bytes:
        """Serialize the update from release ``have`` to ``want``."""
        wrap = seal if self.transport_compress else (lambda p: p)
        new = self.release(package, want)
        if strategy == "full":
            return wrap(new)
        old = self.release(package, have)
        script = ALGORITHMS[self.algorithm](old, new)
        if strategy == "delta":
            return wrap(encode_delta(
                script, FORMAT_SEQUENTIAL,
                version_crc32=version_checksum(new), reference=old,
            ))
        if strategy in ("in-place", "in-place-stream"):
            converted = make_in_place(script, old, policy=self.policy,
                                      scratch_budget=self.scratch_budget)
            # The self-verifying IPD2 container: in-place application is
            # destructive, so the payload carries the reference digest
            # the device checks before the first overwrite.
            return wrap(encode_delta(
                converted.script, FORMAT_INPLACE,
                version_crc32=version_checksum(new), reference=old,
            ))
        raise ValueError(
            "unknown strategy %r; choose from %s" % (strategy, ", ".join(STRATEGIES))
        )

    def build_chain_payload(self, package: str, have: int, want: int) -> bytes:
        """One coalesced in-place payload for a device ``want - have``
        releases behind.

        Instead of re-differencing release ``have`` against ``want``
        directly, the per-hop deltas the server already computes for
        up-to-date devices are collapsed with
        :func:`repro.core.compose.compose_chain` and the *composed*
        script is converted for in-place application.  This is the
        "coalesced re-encode" rollout policy: one composition per stale
        cohort, no O(versions²) diff matrix.
        """
        if want <= have:
            raise ValueError(
                "chain payload needs want > have, got %d -> %d" % (have, want)
            )
        hops = []
        for step in range(have, want):
            old = self.release(package, step)
            new = self.release(package, step + 1)
            hops.append(ALGORITHMS[self.algorithm](old, new))
        composed = compose_chain(hops) if len(hops) > 1 else hops[0]
        old = self.release(package, have)
        new = self.release(package, want)
        converted = make_in_place(composed, old, policy=self.policy,
                                  scratch_budget=self.scratch_budget)
        wrap = seal if self.transport_compress else (lambda p: p)
        return wrap(encode_delta(
            converted.script, FORMAT_INPLACE,
            version_crc32=version_checksum(new), reference=old,
        ))


def run_update(
    server: UpdateServer,
    device: ConstrainedDevice,
    channel: Channel,
    package: str,
    *,
    have: int,
    want: Optional[int] = None,
    strategy: str = "in-place",
    max_retries: int = 3,
    rng: Optional[random.Random] = None,
    fault_plan: Optional[FaultPlan] = None,
    backoff_base: float = 0.0,
    backoff_factor: float = 2.0,
) -> UpdateOutcome:
    """Run one update session end to end and report what happened.

    The outcome records payload size and cumulative (simulated) transfer
    time including retransmissions; ``succeeded=False`` outcomes carry
    the failure reason (out of memory, exhausted retries, ...) so benches
    can tabulate strategy viability per device class.

    A :class:`~repro.faults.FaultPlan` is checked at the
    ``channel.transmit`` site once per attempt (scope = package name):
    an injected :class:`TransmissionError` — like one raised by the
    channel itself — costs an attempt and backs off exponentially
    (``backoff_base`` seconds, default 0 = no sleeping) before the
    retransmission.
    """
    if want is None:
        want = server.latest_release(package)
    payload = server.build_payload(package, have, want, strategy)
    image_bytes = len(server.release(package, want))
    outcome = UpdateOutcome(
        strategy=strategy,
        payload_bytes=len(payload),
        image_bytes=image_bytes,
        transfer_seconds=0.0,
    )

    appliers: Dict[str, Callable[[bytes], None]] = {
        "full": device.install_full_image,
        "delta": device.apply_delta_two_space,
        "in-place": device.apply_delta_in_place,
        "in-place-stream": device.apply_delta_streaming,
    }
    apply_payload = appliers[strategy]

    for attempt in range(1, max_retries + 1):
        outcome.attempts = attempt
        try:
            if fault_plan is not None:
                fault_plan.check("channel.transmit", scope=package,
                                 index=attempt)
            delivery: Delivery = channel.transmit(payload, rng)
        except TransmissionError as exc:
            # The link dropped the payload outright (injected or real):
            # back off and retransmit — the device saw nothing, so every
            # strategy survives this.
            outcome.faults.append(describe_failure(exc))
            _sleep_backoff(attempt, backoff_base, backoff_factor)
            continue
        outcome.transfer_seconds += delivery.seconds
        try:
            apply_payload(delivery.payload)
        except DeltaFormatError:
            # Corruption caught while parsing, before any byte of the
            # image changed: safe to retransmit under every strategy.
            continue
        except IntegrityError as exc:
            if exc.kind in ("trailer", "segment") and \
                    strategy != "in-place-stream":
                # The delivered delta itself is corrupt.  The buffered
                # strategies verify it before mutating anything, so a
                # retransmission is safe (and the only cure).
                outcome.faults.append(describe_failure(exc))
                _sleep_backoff(attempt, backoff_base, backoff_factor)
                continue
            # A reference digest mismatch is deterministic — the device
            # holds the wrong (or already corrupted) base image and no
            # retransmission fixes that.  For the streaming strategy a
            # trailer/segment failure surfaces mid-apply, after writes.
            suffix = (" (image may be damaged)"
                      if strategy == "in-place-stream" and
                      exc.kind in ("trailer", "segment") else "")
            outcome.failure = describe_failure(exc) + suffix
            return outcome
        except (OutOfMemoryError, StorageBoundsError) as exc:
            # Deterministic device constraints: retrying cannot help.
            outcome.failure = "%s: %s" % (type(exc).__name__, exc)
            return outcome
        except ReproError as exc:
            # Two-space strategies commit only on success, so any other
            # failure (bad ranges, checksum mismatch) is retryable.  The
            # in-place strategy mutates the image as it goes: a failure
            # past the parse stage may have damaged it, and recovery
            # would need a full re-image — report it.
            if strategy in ("in-place", "in-place-stream"):
                outcome.failure = "%s: %s (image may be damaged)" % (
                    type(exc).__name__, exc,
                )
                return outcome
            continue
        expected = server.release(package, want)
        if device.image != expected:
            outcome.failure = "reconstructed image differs from release %d" % want
            return outcome
        outcome.succeeded = True
        return outcome
    outcome.failure = "exhausted %d transmission attempts" % max_retries
    return outcome


@dataclass
class JournaledUpdateOutcome:
    """Record of one journaled, power-cut-resilient update session."""

    payload_bytes: int = 0
    image_bytes: int = 0
    transfer_seconds: float = 0.0
    #: Transmission attempts (retransmissions after link faults count).
    attempts: int = 0
    #: Boots the apply phase took (1 = no power cut).
    boots: int = 0
    power_cuts: int = 0
    #: Largest durable journal footprint observed across boots.
    journal_peak_bytes: int = 0
    succeeded: bool = False
    failure: str = ""
    #: True when the session halted because corruption was *detected*
    #: (bad trailer, reference mismatch, failed resume digest, failed
    #: final checksum) — as opposed to transient faults or exhausted
    #: budgets.  A corrupt halt means no garbage was silently installed.
    corruption: bool = False
    faults: List[str] = field(default_factory=list)


def run_journaled_session(
    payload: bytes,
    reference: bytes,
    expected: Optional[bytes],
    *,
    channel: Channel,
    scope: str = "update",
    max_retries: int = 3,
    max_boots: int = 16,
    rng: Optional[random.Random] = None,
    fault_plan: Optional[FaultPlan] = None,
    backoff_base: float = 0.0,
    backoff_factor: float = 2.0,
    backoff_jitter: float = 0.0,
    chunk_size: int = 4096,
) -> JournaledUpdateOutcome:
    """Drive one pre-built in-place payload through transfer and
    journaled apply.

    This is the device-side half of :func:`run_journaled_update`,
    factored out so the fleet campaign can build a payload *once* per
    stale cohort (possibly via
    :meth:`UpdateServer.build_chain_payload`) and replay it against
    thousands of simulated devices, each with its own fault ``scope``.
    All fault decisions — transmit drops, delivery truncation/bit flips,
    per-boot power fuel, storage rot — are pure functions of
    ``(fault_plan.seed, site, scope, index)``, so the same arguments
    produce the same outcome on any executor.

    ``reference`` seeds the device's storage (the bytes the stale device
    holds); ``expected`` — when given — is the oracle the reconstructed
    image is compared against after the delta's own checksum passes.
    Backoff jitter is drawn from the fault seed (see
    :func:`_sleep_backoff`), never from global randomness.
    """
    seed = fault_plan.seed if fault_plan is not None else 0
    outcome = JournaledUpdateOutcome(
        payload_bytes=len(payload),
        image_bytes=len(expected) if expected is not None else 0,
    )

    # -- transfer phase: retry link faults and corrupt deliveries -------
    script = None
    header = None
    for attempt in range(1, max_retries + 1):
        outcome.attempts = attempt
        try:
            if fault_plan is not None:
                fault_plan.check("channel.transmit", scope=scope,
                                 index=attempt)
            delivery = channel.transmit(payload, rng)
        except TransmissionError as exc:
            outcome.faults.append(describe_failure(exc))
            _sleep_backoff(attempt, backoff_base, backoff_factor,
                           jitter=backoff_jitter, seed=seed, scope=scope)
            continue
        outcome.transfer_seconds += delivery.seconds
        received = delivery.payload
        if fault_plan is not None:
            spec = fault_plan.corruption("delta.truncate", scope, attempt)
            if spec is not None and len(received) > 1:
                cut = spec.offset if spec.offset is not None else \
                    fault_plan.draw_offset("delta.truncate", scope,
                                           attempt, len(received) - 1) + 1
                cut = min(cut, len(received) - 1)
                received = received[:cut]
                outcome.faults.append(
                    "TruncatedDelivery: delta cut to %d of %d bytes "
                    "(attempt %d)" % (cut, outcome.payload_bytes, attempt)
                )
            spec = fault_plan.corruption("delta.bitflip", scope, attempt)
            if spec is not None and received:
                # A corrupted download: one bit of the delivered delta
                # flipped in flight.  The IPD2 trailer/segment CRCs must
                # catch this at parse time, before any image byte moves.
                offset = spec.offset if spec.offset is not None else \
                    fault_plan.draw_offset("delta.bitflip", scope,
                                           attempt, len(received))
                offset = min(offset, len(received) - 1)
                flipped = bytearray(received)
                flipped[offset] ^= 0x01
                received = bytes(flipped)
                outcome.faults.append(
                    "CorruptedDelivery: delta bit flipped at offset %d "
                    "(attempt %d)" % (offset, attempt)
                )
        try:
            if is_sealed(received):
                received = unseal(received)
            script, header = decode_delta(received)
        except ReproError as exc:
            # Corruption caught at parse time — for IPD2, the trailer
            # CRC is checked before a single command is even parsed:
            # nothing applied yet, so a retransmission is always safe.
            outcome.faults.append(describe_failure(exc))
            _sleep_backoff(attempt, backoff_base, backoff_factor,
                           jitter=backoff_jitter, seed=seed, scope=scope)
            continue
        break
    if script is None:
        outcome.failure = "exhausted %d transmission attempts" % max_retries
        return outcome

    # -- apply phase: journaled, resumable across power cuts ------------
    storage = CrashingStorage(reference)
    journal = Journal()
    for boot in range(1, max_boots + 1):
        outcome.boots = boot
        if fault_plan is not None:
            # Simulated flash rot: flips happen silently while the
            # device is down; detection is the integrity plane's job.
            spec = fault_plan.corruption("storage.bitflip", scope, boot)
            if spec is not None and len(storage):
                offset = spec.offset if spec.offset is not None else \
                    fault_plan.draw_offset("storage.bitflip", scope,
                                           boot, len(storage))
                storage.flip(min(offset, len(storage) - 1))
                outcome.faults.append(
                    "BitFlip: storage bit flipped at offset %d (boot %d)"
                    % (min(offset, len(storage) - 1), boot)
                )
        if boot > 1:
            # Reboot: the journal is reread from its durable sector.
            # Round-tripping through the serialized form exercises the
            # record CRCs and torn-tail recovery on every resume.
            try:
                journal = Journal.from_bytes(journal.to_bytes())
            except IntegrityError as exc:
                outcome.corruption = True
                outcome.failure = describe_failure(exc)
                return outcome
        try:
            if boot == 1:
                # Verify-then-mutate: bounds and the reference digest
                # are checked against pristine storage before the first
                # destructive write.  (Later boots resume mid-mutation;
                # JournaledApplier re-verifies applied regions instead.)
                preflight_in_place(script, header, storage)
        except (IntegrityError, DeltaRangeError) as exc:
            outcome.corruption = True
            outcome.failure = describe_failure(exc)
            return outcome
        fuel = (fault_plan.power_fuel(scope, boot)
                if fault_plan is not None else None)
        storage.fuel = fuel
        try:
            JournaledApplier(script, journal).run(storage,
                                                  chunk_size=chunk_size)
        except PowerFailureError as exc:
            outcome.power_cuts += 1
            outcome.faults.append(describe_failure(exc))
            outcome.journal_peak_bytes = max(outcome.journal_peak_bytes,
                                             journal.size_bytes)
            continue  # reboot: the journal resumes the interrupted command
        except IntegrityError as exc:
            # Resume verification found rot in an already-applied
            # region: halt with the report rather than install garbage.
            outcome.corruption = True
            outcome.failure = describe_failure(exc)
            outcome.journal_peak_bytes = max(outcome.journal_peak_bytes,
                                             journal.size_bytes)
            return outcome
        break
    outcome.journal_peak_bytes = max(outcome.journal_peak_bytes,
                                     journal.size_bytes)
    if not journal.complete:
        outcome.failure = ("power failed on every one of %d boots"
                           % outcome.boots)
        return outcome
    if header.has_checksum:
        # The device-real final gate: the version checksum carried in
        # the delta.  (Bit flips in not-yet-applied regions propagate
        # into the image and are caught here if nowhere earlier.)
        actual = storage_crc32(storage)
        if actual != header.version_crc32:
            outcome.corruption = True
            outcome.failure = (
                "reconstructed image checksum 0x%08x != delta's 0x%08x"
                % (actual, header.version_crc32)
            )
            return outcome
    if expected is not None and storage.snapshot() != expected:
        outcome.failure = "reconstructed image differs from expected bytes"
        return outcome
    outcome.succeeded = True
    return outcome


def run_journaled_update(
    server: UpdateServer,
    channel: Channel,
    package: str,
    *,
    have: int,
    want: Optional[int] = None,
    max_retries: int = 3,
    max_boots: int = 16,
    rng: Optional[random.Random] = None,
    fault_plan: Optional[FaultPlan] = None,
    backoff_base: float = 0.0,
    backoff_factor: float = 2.0,
    backoff_jitter: float = 0.0,
    chunk_size: int = 4096,
) -> JournaledUpdateOutcome:
    """One in-place update that survives both link faults and power cuts.

    The session transfers an in-place payload (retrying
    :class:`TransmissionError` and corrupt deliveries with backoff, like
    :func:`run_update`), then applies it through the crash-safe
    :class:`~repro.device.journal.JournaledApplier`.  A
    :class:`~repro.faults.FaultPlan` drives the adversity
    deterministically: the ``channel.transmit`` site is checked once per
    transmission (scope = package), delivered payloads pass the
    ``delta.truncate`` / ``delta.bitflip`` corruption sites, and each
    boot ``b`` of the apply phase asks ``plan.power_fuel(package, b)``
    for a write budget — a firing ``device.power`` spec cuts power after
    ``fuel`` written bytes, and the next boot resumes from the journal
    instead of starting over (re-running the delta would corrupt the
    image, since in-place copies destroy their sources).

    This is a thin wrapper over :func:`run_journaled_session` that
    builds the payload from the server's releases; the fleet campaign
    calls the session function directly with cohort-cached payloads.
    """
    if want is None:
        want = server.latest_release(package)
    payload = server.build_payload(package, have, want, "in-place")
    outcome = run_journaled_session(
        payload,
        server.release(package, have),
        server.release(package, want),
        channel=channel,
        scope=package,
        max_retries=max_retries,
        max_boots=max_boots,
        rng=rng,
        fault_plan=fault_plan,
        backoff_base=backoff_base,
        backoff_factor=backoff_factor,
        backoff_jitter=backoff_jitter,
        chunk_size=chunk_size,
    )
    if outcome.failure == "reconstructed image differs from expected bytes":
        outcome.failure = "reconstructed image differs from release %d" % want
    return outcome
