"""End-to-end software update sessions: server, channel, device.

This orchestrates the paper's motivating scenario.  An
:class:`UpdateServer` holds the released versions of an image; when a
device on release *k* requests release *k+1*, the server differences the
two, post-processes the delta for in-place reconstruction, serializes it
with a checksum, and ships it over a :class:`~repro.device.channel.Channel`.
The :class:`~repro.device.memory.ConstrainedDevice` applies it in the
storage the old image occupies.

:func:`run_update` compares the four distribution strategies the
update-time bench sweeps:

* ``"full"`` — send the whole new image (no compression);
* ``"delta"`` — send a conventional delta; the device needs scratch RAM
  for the new version (fails on small devices);
* ``"in-place"`` — send a converted delta, staged in RAM then applied in
  the storage the old image occupies;
* ``"in-place-stream"`` — the same converted delta consumed directly off
  the wire: RAM independent of both image and delta size (the smallest
  possible footprint, beyond what the paper required).

Corrupted deliveries are detected by checksum and retransmitted, up to
``max_retries``; a :class:`~repro.faults.FaultPlan` can inject
deterministic link failures (``channel.transmit``) that the session
survives with exponential backoff, and power cuts (``device.power``)
that :func:`run_journaled_update` rides out by resuming from the
journal.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.convert import make_in_place
from ..delta import ALGORITHMS
from ..delta.encode import (
    FORMAT_INPLACE,
    FORMAT_SEQUENTIAL,
    decode_delta,
    encode_delta,
    version_checksum,
)
from ..delta.wrapper import is_sealed, seal, unseal
from ..exceptions import (
    DeltaFormatError,
    OutOfMemoryError,
    ReproError,
    StorageBoundsError,
    TransmissionError,
    VerificationError,
)
from ..faults import FaultPlan, describe_failure
from .channel import Channel, Delivery
from .journal import CrashingStorage, Journal, JournaledApplier, PowerFailureError
from .memory import ConstrainedDevice

STRATEGIES = ("full", "delta", "in-place", "in-place-stream")


def _sleep_backoff(attempt: int, base: float, factor: float,
                   cap: float = 5.0) -> None:
    """Exponential backoff before retry ``attempt + 1`` (no-op at base 0)."""
    if base <= 0.0:
        return
    time.sleep(min(cap, base * (factor ** (attempt - 1))))


@dataclass
class UpdateOutcome:
    """Record of one update attempt."""

    strategy: str
    payload_bytes: int
    image_bytes: int
    transfer_seconds: float
    attempts: int = 1
    succeeded: bool = False
    failure: str = ""
    #: Transient failures survived along the way (``"Type: message"``).
    faults: List[str] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Payload size relative to the full image (lower is better)."""
        if self.image_bytes == 0:
            return 1.0
        return self.payload_bytes / self.image_bytes


class UpdateServer:
    """Holds released images and builds update payloads on demand."""

    def __init__(self, *, algorithm: str = "correcting", policy: str = "local-min",
                 scratch_budget: int = 0, transport_compress: bool = False):
        self.algorithm = algorithm
        self.policy = policy
        #: Apply the zlib transport envelope to every payload built.
        self.transport_compress = transport_compress
        #: Device scratch bytes the server may assume (bounded-scratch
        #: extension); evictions route through scratch up to this budget.
        self.scratch_budget = scratch_budget
        self._releases: Dict[str, List[bytes]] = {}

    def publish(self, package: str, image: bytes) -> int:
        """Append a new release of ``package``; returns its release number."""
        releases = self._releases.setdefault(package, [])
        releases.append(bytes(image))
        return len(releases) - 1

    def release(self, package: str, number: int) -> bytes:
        """The bytes of one published release."""
        return self._releases[package][number]

    def latest_release(self, package: str) -> int:
        """Highest release number published for ``package``."""
        if package not in self._releases or not self._releases[package]:
            raise KeyError("no releases published for %r" % package)
        return len(self._releases[package]) - 1

    def build_payload(self, package: str, have: int, want: int, strategy: str) -> bytes:
        """Serialize the update from release ``have`` to ``want``."""
        wrap = seal if self.transport_compress else (lambda p: p)
        new = self.release(package, want)
        if strategy == "full":
            return wrap(new)
        old = self.release(package, have)
        script = ALGORITHMS[self.algorithm](old, new)
        if strategy == "delta":
            return wrap(encode_delta(
                script, FORMAT_SEQUENTIAL, version_crc32=version_checksum(new)
            ))
        if strategy in ("in-place", "in-place-stream"):
            converted = make_in_place(script, old, policy=self.policy,
                                      scratch_budget=self.scratch_budget)
            return wrap(encode_delta(
                converted.script, FORMAT_INPLACE, version_crc32=version_checksum(new)
            ))
        raise ValueError(
            "unknown strategy %r; choose from %s" % (strategy, ", ".join(STRATEGIES))
        )


def run_update(
    server: UpdateServer,
    device: ConstrainedDevice,
    channel: Channel,
    package: str,
    *,
    have: int,
    want: Optional[int] = None,
    strategy: str = "in-place",
    max_retries: int = 3,
    rng: Optional[random.Random] = None,
    fault_plan: Optional[FaultPlan] = None,
    backoff_base: float = 0.0,
    backoff_factor: float = 2.0,
) -> UpdateOutcome:
    """Run one update session end to end and report what happened.

    The outcome records payload size and cumulative (simulated) transfer
    time including retransmissions; ``succeeded=False`` outcomes carry
    the failure reason (out of memory, exhausted retries, ...) so benches
    can tabulate strategy viability per device class.

    A :class:`~repro.faults.FaultPlan` is checked at the
    ``channel.transmit`` site once per attempt (scope = package name):
    an injected :class:`TransmissionError` — like one raised by the
    channel itself — costs an attempt and backs off exponentially
    (``backoff_base`` seconds, default 0 = no sleeping) before the
    retransmission.
    """
    if want is None:
        want = server.latest_release(package)
    payload = server.build_payload(package, have, want, strategy)
    image_bytes = len(server.release(package, want))
    outcome = UpdateOutcome(
        strategy=strategy,
        payload_bytes=len(payload),
        image_bytes=image_bytes,
        transfer_seconds=0.0,
    )

    appliers: Dict[str, Callable[[bytes], None]] = {
        "full": device.install_full_image,
        "delta": device.apply_delta_two_space,
        "in-place": device.apply_delta_in_place,
        "in-place-stream": device.apply_delta_streaming,
    }
    apply_payload = appliers[strategy]

    for attempt in range(1, max_retries + 1):
        outcome.attempts = attempt
        try:
            if fault_plan is not None:
                fault_plan.check("channel.transmit", scope=package,
                                 index=attempt)
            delivery: Delivery = channel.transmit(payload, rng)
        except TransmissionError as exc:
            # The link dropped the payload outright (injected or real):
            # back off and retransmit — the device saw nothing, so every
            # strategy survives this.
            outcome.faults.append(describe_failure(exc))
            _sleep_backoff(attempt, backoff_base, backoff_factor)
            continue
        outcome.transfer_seconds += delivery.seconds
        try:
            apply_payload(delivery.payload)
        except DeltaFormatError:
            # Corruption caught while parsing, before any byte of the
            # image changed: safe to retransmit under every strategy.
            continue
        except (OutOfMemoryError, StorageBoundsError) as exc:
            # Deterministic device constraints: retrying cannot help.
            outcome.failure = "%s: %s" % (type(exc).__name__, exc)
            return outcome
        except ReproError as exc:
            # Two-space strategies commit only on success, so any other
            # failure (bad ranges, checksum mismatch) is retryable.  The
            # in-place strategy mutates the image as it goes: a failure
            # past the parse stage may have damaged it, and recovery
            # would need a full re-image — report it.
            if strategy in ("in-place", "in-place-stream"):
                outcome.failure = "%s: %s (image may be damaged)" % (
                    type(exc).__name__, exc,
                )
                return outcome
            continue
        expected = server.release(package, want)
        if device.image != expected:
            outcome.failure = "reconstructed image differs from release %d" % want
            return outcome
        outcome.succeeded = True
        return outcome
    outcome.failure = "exhausted %d transmission attempts" % max_retries
    return outcome


@dataclass
class JournaledUpdateOutcome:
    """Record of one journaled, power-cut-resilient update session."""

    payload_bytes: int = 0
    image_bytes: int = 0
    transfer_seconds: float = 0.0
    #: Transmission attempts (retransmissions after link faults count).
    attempts: int = 0
    #: Boots the apply phase took (1 = no power cut).
    boots: int = 0
    power_cuts: int = 0
    #: Largest durable journal footprint observed across boots.
    journal_peak_bytes: int = 0
    succeeded: bool = False
    failure: str = ""
    faults: List[str] = field(default_factory=list)


def run_journaled_update(
    server: UpdateServer,
    channel: Channel,
    package: str,
    *,
    have: int,
    want: Optional[int] = None,
    max_retries: int = 3,
    max_boots: int = 16,
    rng: Optional[random.Random] = None,
    fault_plan: Optional[FaultPlan] = None,
    backoff_base: float = 0.0,
    backoff_factor: float = 2.0,
    chunk_size: int = 4096,
) -> JournaledUpdateOutcome:
    """One in-place update that survives both link faults and power cuts.

    The session transfers an in-place payload (retrying
    :class:`TransmissionError` and corrupt deliveries with backoff, like
    :func:`run_update`), then applies it through the crash-safe
    :class:`~repro.device.journal.JournaledApplier`.  A
    :class:`~repro.faults.FaultPlan` drives the adversity
    deterministically: the ``channel.transmit`` site is checked once per
    transmission (scope = package), and each boot ``b`` of the apply
    phase asks ``plan.power_fuel(package, b)`` for a write budget — a
    firing ``device.power`` spec cuts power after ``fuel`` written
    bytes, and the next boot resumes from the journal instead of
    starting over (re-running the delta would corrupt the image, since
    in-place copies destroy their sources).
    """
    if want is None:
        want = server.latest_release(package)
    payload = server.build_payload(package, have, want, "in-place")
    expected = server.release(package, want)
    outcome = JournaledUpdateOutcome(
        payload_bytes=len(payload),
        image_bytes=len(expected),
    )

    # -- transfer phase: retry link faults and corrupt deliveries -------
    script = None
    for attempt in range(1, max_retries + 1):
        outcome.attempts = attempt
        try:
            if fault_plan is not None:
                fault_plan.check("channel.transmit", scope=package,
                                 index=attempt)
            delivery = channel.transmit(payload, rng)
        except TransmissionError as exc:
            outcome.faults.append(describe_failure(exc))
            _sleep_backoff(attempt, backoff_base, backoff_factor)
            continue
        outcome.transfer_seconds += delivery.seconds
        received = delivery.payload
        try:
            if is_sealed(received):
                received = unseal(received)
            script, _header = decode_delta(received)
        except ReproError as exc:
            # Corruption caught at parse time: nothing applied yet, so a
            # retransmission is always safe.
            outcome.faults.append(describe_failure(exc))
            _sleep_backoff(attempt, backoff_base, backoff_factor)
            continue
        break
    if script is None:
        outcome.failure = "exhausted %d transmission attempts" % max_retries
        return outcome

    # -- apply phase: journaled, resumable across power cuts ------------
    storage = CrashingStorage(server.release(package, have))
    journal = Journal()
    for boot in range(1, max_boots + 1):
        outcome.boots = boot
        fuel = (fault_plan.power_fuel(package, boot)
                if fault_plan is not None else None)
        storage.fuel = fuel
        try:
            JournaledApplier(script, journal).run(storage,
                                                 chunk_size=chunk_size)
        except PowerFailureError as exc:
            outcome.power_cuts += 1
            outcome.faults.append(describe_failure(exc))
            outcome.journal_peak_bytes = max(outcome.journal_peak_bytes,
                                             journal.size_bytes)
            continue  # reboot: the journal resumes the interrupted command
        break
    outcome.journal_peak_bytes = max(outcome.journal_peak_bytes,
                                     journal.size_bytes)
    if not journal.complete:
        outcome.failure = ("power failed on every one of %d boots"
                           % outcome.boots)
        return outcome
    if storage.snapshot() != expected:
        outcome.failure = "reconstructed image differs from release %d" % want
        return outcome
    outcome.succeeded = True
    return outcome
