"""Erase-block flash model: the wear cost of in-place reconstruction.

The paper's devices store their image in flash, and flash does not
rewrite bytes: a write that changes any byte of an *erase block*
(4-128 KiB on real parts) requires erasing and reprogramming the whole
block, and every block survives only a bounded number of erase cycles.
In-place reconstruction's byte-level writes therefore map to block-level
erases, and the interesting question for a deployment is the *wear*
profile: how many block erases does an update strategy cost?

:class:`FlashArray` models the medium: a byte-addressable view whose
writes are absorbed by a RAM block buffer and flushed as whole-block
erase+program cycles (one buffered block — the way small controllers
actually drive NOR flash).  Per-block erase counters expose the wear.

:func:`measure_update_wear` compares strategies: a full reprogram
erases every block; an in-place delta erases only blocks the version
actually changes — plus any block a copy *moves* data into.  The bench
sweeps block sizes to show where delta updates stop saving erases
(small random edits scattered across every block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..core.apply import apply_in_place, storage_crc32, verify_reference
from ..core.commands import DeltaScript
from ..exceptions import DeviceError, StorageBoundsError

Buffer = Union[bytes, bytearray, memoryview]


class WearLimitExceeded(DeviceError):
    """A block was erased more times than its rated endurance."""


@dataclass
class WearStats:
    """Erase accounting for one flash array."""

    block_size: int
    erases_per_block: List[int]

    @property
    def total_erases(self) -> int:
        """Sum of erases across all blocks."""
        return sum(self.erases_per_block)

    @property
    def blocks_touched(self) -> int:
        """Blocks erased at least once."""
        return sum(1 for e in self.erases_per_block if e)

    @property
    def max_erases(self) -> int:
        """Hottest block's erase count (the wear-leveling concern)."""
        return max(self.erases_per_block, default=0)


class FlashArray:
    """Byte-addressable facade over erase-block flash with one block buffer.

    Reads are free and direct.  A byte write loads its block into the
    single RAM block buffer (flushing the previously buffered block if
    dirty — erase + program, one wear cycle); sequential writes within
    one block therefore cost one erase, and the in-place applier's
    mostly-monotonic write pattern maps to few erases per block.
    """

    def __init__(self, image: Buffer, *, block_size: int = 4096,
                 endurance: Optional[int] = None,
                 compare_before_write: bool = True):
        if block_size <= 0:
            raise ValueError("block_size must be positive, got %d" % block_size)
        self.block_size = block_size
        self.endurance = endurance
        #: When set (the default), writes that change no byte leave the
        #: block clean — the read-compare-write discipline careful
        #: programmers use.  Clear it to model a naive programmer that
        #: erases whatever it writes over.
        self.compare_before_write = compare_before_write
        self._data = bytearray(image)
        blocks = (len(self._data) + block_size - 1) // block_size
        self._erases = [0] * max(1, blocks)
        self._buffered: Optional[int] = None
        self._dirty = False

    # -- geometry ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def _block_of(self, offset: int) -> int:
        return offset // self.block_size

    def _ensure_blocks(self, size: int) -> None:
        blocks = (size + self.block_size - 1) // self.block_size
        while len(self._erases) < blocks:
            self._erases.append(0)

    # -- block buffer -----------------------------------------------------

    def _load_block(self, block: int) -> None:
        if self._buffered == block:
            return
        self.flush()
        self._buffered = block
        self._dirty = False

    def flush(self) -> None:
        """Write back the buffered block if dirty (one erase cycle)."""
        if self._buffered is not None and self._dirty:
            block = self._buffered
            self._erases[block] += 1
            if self.endurance is not None and self._erases[block] > self.endurance:
                raise WearLimitExceeded(
                    "block %d exceeded its %d-cycle endurance"
                    % (block, self.endurance)
                )
        self._dirty = False

    # -- data access (bytearray subset the appliers use) -------------------

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            start, stop, stride = key.indices(len(self._data))
            if stride != 1:
                raise ValueError("strided flash writes are not supported")
            pos = start
            data = bytes(value)
            offset = 0
            while pos < stop:
                block = self._block_of(pos)
                block_end = min((block + 1) * self.block_size, stop)
                self._load_block(block)
                chunk = data[offset:offset + (block_end - pos)]
                if not self.compare_before_write or \
                        self._data[pos:block_end] != chunk:
                    self._data[pos:block_end] = chunk
                    self._dirty = True
                offset += block_end - pos
                pos = block_end
        else:
            block = self._block_of(key)
            self._load_block(block)
            if not self.compare_before_write or self._data[key] != value:
                self._data[key] = value
                self._dirty = True

    def extend(self, more: bytes) -> None:
        """Grow the array (new blocks arrive erased; no wear charged)."""
        self._data.extend(more)
        self._ensure_blocks(len(self._data))

    def __delitem__(self, key) -> None:
        # Only tail truncation is meaningful for images.
        if not isinstance(key, slice) or key.stop is not None:
            raise ValueError("flash supports only tail truncation")
        start = key.start or 0
        del self._data[start:]

    # -- results ------------------------------------------------------------

    def image(self) -> bytes:
        """Current contents, with the block buffer flushed."""
        self.flush()
        return bytes(self._data)

    def crc32(self, length: Optional[int] = None) -> int:
        """CRC32 of the durable flash contents (flushes first).

        Folded one bounded chunk at a time, so a controller with a few
        KiB of RAM can compute it without materializing the image.
        """
        self.flush()
        return storage_crc32(self._data, length)

    def verify_image(self, header, *, length: Optional[int] = None) -> None:
        """Check the stored image against a delta header's reference digest.

        Thin wrapper over :func:`~repro.core.apply.verify_reference`
        running on the flushed contents: raises
        :class:`~repro.exceptions.IntegrityError` with
        ``kind="reference"`` when this flash does not hold the image the
        delta was built against — the gate a bootloader runs before
        letting an in-place update start erasing blocks.
        """
        self.flush()
        verify_reference(header, self._data, length=length)

    def wear(self) -> WearStats:
        """Erase statistics so far (flushes first so counts are final)."""
        self.flush()
        return WearStats(self.block_size, list(self._erases))


def full_reprogram(flash: FlashArray, image: bytes) -> None:
    """The no-delta baseline: rewrite every block of the image."""
    if len(image) > len(flash):
        flash.extend(b"\x00" * (len(image) - len(flash)))
    flash[0:len(image)] = image
    if len(image) < len(flash):
        del flash[len(image):]
    flash.flush()


def measure_update_wear(
    reference: bytes,
    version: bytes,
    script: DeltaScript,
    *,
    block_size: int = 4096,
) -> "tuple[WearStats, WearStats]":
    """(delta wear, full-reprogram wear) for one update at one block size.

    ``script`` must be in-place safe; it is applied to a
    :class:`FlashArray` seeded with ``reference`` and verified against
    ``version``.
    """
    delta_flash = FlashArray(reference, block_size=block_size)
    apply_in_place(script, delta_flash, strict=False)  # type: ignore[arg-type]
    if delta_flash.image() != version:
        raise StorageBoundsError("in-place apply on flash produced a wrong image")
    full_flash = FlashArray(reference, block_size=block_size)
    full_reprogram(full_flash, version)
    if full_flash.image() != version:
        raise StorageBoundsError("full reprogram produced a wrong image")
    return delta_flash.wear(), full_flash.wear()
