"""Synthetic HTTP-object workload (paper references [10], [2]).

Section 2 notes the then-emerging use of delta files for HTTP: "This
permits web servers to both reduce the amount of data to be transmitted
to a client and reduce the latency associated with loading web pages."
Mogul et al. [10] measured that successive responses for the same URL
are mostly template: navigation, boilerplate, and markup stay, while
headlines, dates, and counters churn.

This generator synthesizes that structure: a site of templated pages
whose *dynamic slots* (story titles, timestamps, counters) change
between fetches while the surrounding markup persists — the workload an
HTTP delta cache sees.  Used by the ``web_cache`` example and the
corresponding tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

_WORDS = [
    "server", "network", "release", "update", "device", "protocol", "cache",
    "mirror", "archive", "kernel", "editor", "compiler", "patch", "version",
    "socket", "gateway", "modem", "browser", "index", "bulletin",
]

_TEMPLATE_HEAD = """<html>
<head><title>{site} :: {section}</title></head>
<body bgcolor="#ffffff">
<center><h1>{site}</h1></center>
<table width="100%" border="0"><tr>
<td width="20%" valign="top">
{nav}
</td>
<td valign="top">
"""

_TEMPLATE_FOOT = """</td></tr></table>
<hr>
<address>webmaster@{site_lower}.example :: page generated {stamp}</address>
</body>
</html>
"""


def _headline(rng: random.Random) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(3, 7))).title()


def _story(rng: random.Random, headline: str) -> str:
    sentences = []
    for _ in range(rng.randint(2, 6)):
        sentences.append(
            ("The %s %s announced a new %s for the %s %s."
             % tuple(rng.choice(_WORDS) for _ in range(5))).capitalize()
        )
    return "<h3>%s</h3>\n<p>%s</p>" % (headline, " ".join(sentences))


@dataclass
class WebSite:
    """A templated site whose pages are refetched as they evolve.

    ``snapshot(page)`` renders the page's current state; ``evolve()``
    advances the site one publishing cycle: a few headlines rotate, the
    timestamp and counters change, and occasionally a navigation entry
    is added — leaving most bytes identical, per [10]'s measurements.
    """

    name: str = "Daily-Packet"
    sections: int = 4
    stories_per_page: int = 8
    seed: int = 19971101
    _rng: random.Random = field(init=False, repr=False)
    _stories: Dict[int, List[str]] = field(init=False, repr=False)
    _nav: List[str] = field(init=False, repr=False)
    _cycle: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._nav = ["<a href=\"/s%d\">Section %d</a><br>" % (s, s)
                     for s in range(self.sections)]
        self._stories = {
            s: [_story(self._rng, _headline(self._rng))
                for _ in range(self.stories_per_page)]
            for s in range(self.sections)
        }

    @property
    def pages(self) -> List[int]:
        """Identifiers of the site's pages (one per section)."""
        return list(range(self.sections))

    def snapshot(self, page: int) -> bytes:
        """Render the current state of ``page`` as HTML bytes."""
        head = _TEMPLATE_HEAD.format(
            site=self.name,
            section="Section %d" % page,
            nav="\n".join(self._nav),
        )
        body = "\n<hr>\n".join(self._stories[page])
        foot = _TEMPLATE_FOOT.format(
            site_lower=self.name.lower(),
            stamp="cycle %06d, visitor %08d"
            % (self._cycle, 10_000 + 37 * self._cycle),
        )
        return (head + body + foot).encode("ascii")

    def evolve(self) -> None:
        """One publishing cycle: rotate a few stories, touch the chrome."""
        rng = self._rng
        self._cycle += 1
        for page, stories in self._stories.items():
            for _ in range(rng.randint(1, 3)):
                slot = rng.randrange(len(stories))
                stories[slot] = _story(rng, _headline(rng))
        if rng.random() < 0.15:
            self._nav.append(
                "<a href=\"/extra%d\">%s</a><br>" % (self._cycle, _headline(rng))
            )


def fetch_sequence(site: WebSite, page: int, fetches: int) -> Iterator[Tuple[bytes, bytes]]:
    """Yield (previous, current) response pairs for repeated fetches of a page."""
    previous = site.snapshot(page)
    for _ in range(fetches):
        site.evolve()
        current = site.snapshot(page)
        yield previous, current
        previous = current
