"""Synthetic file-content generators for the software-distribution corpus.

The paper's corpus mixes source files and binaries from GNU tools and BSD
distributions.  We cannot fetch those, so these generators synthesize
content with the statistical features that matter to a differencing
algorithm:

* **source files** — line-structured text over a shared identifier
  vocabulary, with heavy internal repetition (boilerplate, repeated
  idioms) like real C;
* **binaries** — sectioned blobs (header, code, data, string table,
  symbol table) where the code section mixes incompressible instruction
  bytes with recurring opcode motifs and the string/symbol tables repeat
  names, like real ELF objects;
* **documents** — changelog-style prose with dated stanzas.

All generators are deterministic in their :class:`random.Random`.
"""

from __future__ import annotations

import random
from typing import List

_IDENTIFIERS = [
    "buffer", "cursor", "offset", "length", "status", "handle", "packet",
    "stream", "config", "device", "update", "version", "segment", "window",
    "digest", "result", "socket", "header", "parser", "symbol", "module",
    "target", "source", "output", "input", "cache", "table", "index",
    "frame", "queue", "timer", "flags", "state", "error", "block", "chunk",
]

_TYPES = ["int", "long", "char *", "size_t", "uint32_t", "void *", "struct buf *"]

_STATEMENTS = [
    "    {a} = {b} + {c};",
    "    if ({a} < {b}) return -1;",
    "    {a} = {fn}({b}, {c});",
    "    while ({a}--) *{b}++ = *{c}++;",
    "    memset(&{a}, 0, sizeof({a}));",
    "    assert({a} != NULL);",
    "    {a}->{b} = {c};",
    "    for (i = 0; i < {a}; i++) {b}[i] = {c}[i];",
    "    return {a};",
    "    /* update {a} from {b} */",
]

_CHANGELOG_VERBS = [
    "Fix", "Add", "Remove", "Refactor", "Document", "Optimize", "Port",
    "Deprecate", "Rename", "Harden",
]


def _ident(rng: random.Random) -> str:
    name = rng.choice(_IDENTIFIERS)
    if rng.random() < 0.3:
        name = "%s_%s" % (name, rng.choice(_IDENTIFIERS))
    return name


def make_source_file(rng: random.Random, target_size: int) -> bytes:
    """C-like source text of roughly ``target_size`` bytes."""
    lines: List[str] = [
        "/* generated module: %s.c */" % _ident(rng),
        "#include <stdio.h>",
        "#include <stdlib.h>",
        "#include <string.h>",
        "",
    ]
    size = sum(len(line) + 1 for line in lines)
    while size < target_size:
        fn_name = "%s_%s" % (_ident(rng), rng.choice(["init", "read", "write",
                                                      "free", "sync", "check"]))
        header = "%s %s(%s %s, %s %s)" % (
            rng.choice(_TYPES), fn_name, rng.choice(_TYPES), _ident(rng),
            rng.choice(_TYPES), _ident(rng),
        )
        body = [header, "{"]
        for _ in range(rng.randint(3, 14)):
            template = rng.choice(_STATEMENTS)
            body.append(template.format(a=_ident(rng), b=_ident(rng),
                                        c=_ident(rng), fn="do_" + _ident(rng)))
        body.extend(["}", ""])
        lines.extend(body)
        size += sum(len(line) + 1 for line in body)
    return "\n".join(lines).encode("ascii")


def make_binary_blob(rng: random.Random, target_size: int) -> bytes:
    """ELF-like sectioned binary of roughly ``target_size`` bytes."""
    out = bytearray()
    # Header: magic, entry point, section count.
    out += b"\x7fBIN" + rng.randbytes(12)
    # Code section: incompressible bytes with recurring opcode motifs.
    motifs = [rng.randbytes(rng.randint(6, 24)) for _ in range(12)]
    code_size = int(target_size * 0.55)
    while len(out) < code_size:
        if rng.random() < 0.45:
            out += rng.choice(motifs)
        else:
            out += rng.randbytes(rng.randint(4, 32))
    # Data section: runs and small tables.
    data_size = int(target_size * 0.2)
    data_end = len(out) + data_size
    while len(out) < data_end:
        if rng.random() < 0.5:
            out += bytes([rng.randrange(256)]) * rng.randint(8, 64)
        else:
            out += rng.randbytes(rng.randint(8, 48))
    # String/symbol table: repeated identifier names.
    while len(out) < target_size:
        out += _ident(rng).encode("ascii") + b"\x00"
    return bytes(out[:target_size])


def make_changelog(rng: random.Random, target_size: int, start_year: int = 1996) -> bytes:
    """Changelog-style text of roughly ``target_size`` bytes.

    Stanzas are prepended newest-first, so successive versions of this
    file (regenerated with more stanzas) share a long common suffix —
    exactly how real changelogs diff.
    """
    stanzas: List[str] = []
    year, month, day = start_year, 1, 1
    size = 0
    while size < target_size:
        day += rng.randint(1, 9)
        if day > 27:
            day = 1
            month += 1
        if month > 12:
            month = 1
            year += 1
        entry_lines = ["%04d-%02d-%02d  maintainer <dev@example.org>" % (year, month, day), ""]
        for _ in range(rng.randint(1, 4)):
            entry_lines.append(
                "\t* %s.c (%s): %s %s handling."
                % (_ident(rng), _ident(rng), rng.choice(_CHANGELOG_VERBS), _ident(rng))
            )
        entry_lines.append("")
        stanza = "\n".join(entry_lines)
        stanzas.append(stanza)
        size += len(stanza) + 1
    stanzas.reverse()  # newest first
    return "\n".join(stanzas).encode("ascii")


#: Registry used by the corpus generator: kind -> generator.
GENERATORS = {
    "source": make_source_file,
    "binary": make_binary_blob,
    "doc": make_changelog,
}
