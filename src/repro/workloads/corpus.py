"""Versioned software-distribution corpus (the GNU/BSD stand-in).

The paper evaluated on "multiple versions of the GNU tools and the BSD
operating system distributions".  This module synthesizes the equivalent
structure: a set of *packages*, each a tree of files (sources, binaries,
docs), released in successive *versions* where every release mutates its
predecessor per a per-kind :class:`~repro.workloads.mutators.MutationProfile`.

The unit the experiments consume is the :class:`VersionPair` — one file's
adjacent releases — which is exactly what a delta compressor sees when a
client on version *k* requests version *k+1*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .mutators import CHURN_PROFILE, STABLE_PROFILE, MutationProfile, mutate
from .sources import GENERATORS

#: Per-kind mutation behaviour: sources and binaries evolve moderately,
#: docs (changelogs) churn, and a package's stable files barely move.
_PROFILES: Dict[str, MutationProfile] = {
    "source": MutationProfile(),
    "binary": MutationProfile(edits_per_kb=0.55, max_edit=768),
    "doc": CHURN_PROFILE,
    "stable": STABLE_PROFILE,
}


@dataclass(frozen=True)
class VersionPair:
    """Adjacent releases of one file: the delta compressor's input."""

    package: str
    path: str
    kind: str
    release: int
    reference: bytes
    version: bytes

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``"gnufoo-3/src/main.c@r2"``."""
        return "%s/%s@r%d" % (self.package, self.path, self.release)


@dataclass
class PackageSpec:
    """Shape of one synthetic package."""

    name: str
    #: (path, kind, size) for each member file.
    files: List[Tuple[str, str, int]] = field(default_factory=list)


def default_package_specs(rng: random.Random, count: int,
                          scale: float = 1.0) -> List[PackageSpec]:
    """Package shapes echoing a small software distribution.

    ``scale`` multiplies file sizes, letting benches trade corpus realism
    against runtime.
    """
    specs: List[PackageSpec] = []
    for i in range(count):
        name = "pkg%03d" % i
        files: List[Tuple[str, str, int]] = []
        for s in range(rng.randint(2, 4)):
            files.append(("src/mod%d.c" % s, "source",
                          int(rng.randint(6_000, 40_000) * scale)))
        files.append(("bin/%s" % name, "binary",
                      int(rng.randint(20_000, 90_000) * scale)))
        files.append(("ChangeLog", "doc", int(rng.randint(3_000, 12_000) * scale)))
        if rng.random() < 0.5:
            files.append(("COPYING", "stable", int(6_000 * scale)))
        specs.append(PackageSpec(name, files))
    return specs


class Corpus:
    """A fully materialized corpus: every file of every release.

    ``releases[r][(package, path)]`` holds the bytes of that file in
    release ``r``.  Built deterministically from ``seed``.
    """

    def __init__(
        self,
        seed: int = 19980601,
        packages: int = 12,
        releases: int = 3,
        scale: float = 1.0,
        specs: Optional[Sequence[PackageSpec]] = None,
    ):
        if releases < 2:
            raise ValueError("a corpus needs at least 2 releases to form pairs")
        rng = random.Random(seed)
        self.specs = list(specs) if specs is not None else \
            default_package_specs(rng, packages, scale)
        self.kinds: Dict[Tuple[str, str], str] = {}
        self.releases: List[Dict[Tuple[str, str], bytes]] = []

        base: Dict[Tuple[str, str], bytes] = {}
        for spec in self.specs:
            for path, kind, size in spec.files:
                generator = GENERATORS.get(kind, GENERATORS["source"])
                if kind == "stable":
                    generator = GENERATORS["doc"]
                base[(spec.name, path)] = generator(rng, size)
                self.kinds[(spec.name, path)] = kind
        self.releases.append(base)
        for _ in range(1, releases):
            prev = self.releases[-1]
            nxt = {
                key: mutate(data, rng, _PROFILES[self.kinds[key]])
                for key, data in prev.items()
            }
            self.releases.append(nxt)

    @property
    def release_count(self) -> int:
        """Number of materialized releases."""
        return len(self.releases)

    def pairs(self) -> Iterator[VersionPair]:
        """All adjacent-release file pairs, the experiments' workload."""
        for r in range(1, len(self.releases)):
            old, new = self.releases[r - 1], self.releases[r]
            for (package, path), reference in old.items():
                yield VersionPair(
                    package=package,
                    path=path,
                    kind=self.kinds[(package, path)],
                    release=r,
                    reference=reference,
                    version=new[(package, path)],
                )

    def pair_count(self) -> int:
        """Number of pairs :meth:`pairs` yields."""
        return (len(self.releases) - 1) * len(self.releases[0])

    def total_version_bytes(self) -> int:
        """Sum of version-file sizes over all pairs (the corpus 'weight')."""
        return sum(len(p.version) for p in self.pairs())


def small_corpus(seed: int = 7) -> Corpus:
    """A fast corpus for tests: few packages, small files."""
    return Corpus(seed=seed, packages=3, releases=2, scale=0.15)


def benchmark_corpus(seed: int = 19980601, scale: float = 1.0) -> Corpus:
    """The corpus the Table 1 and runtime benches use by default."""
    return Corpus(seed=seed, packages=12, releases=3, scale=scale)
