"""Adversarial edit processes from the related literature.

The corpus mutators in :mod:`repro.workloads.mutators` model *release
engineering*: a modest number of localized, block-sized edits per
version.  Two related papers describe harsher processes that a fleet
campaign should also stress:

* **Wang et al., "File Updates Under Random/Arbitrary Insertions And
  Deletions"** model the client/encoder editing a file as an *InDel
  process*: a stream of single-symbol insertions and deletions landing
  at uniformly random positions (the "random" regime) or chosen
  adversarially (the "arbitrary" regime, which we approximate by
  clustering the edits into a narrow window — the worst case for
  seed-based differencing, since every seed near the window shifts).
  Many tiny unaligned edits shred the shared-seed structure greedy
  differencing depends on, which is exactly the workload that pushes
  deltas toward the full-rewrite floor.

* **Harshan & Oggier, "Sparsity Exploiting Erasure Coding for Resilient
  Storage ... in Delta based Versioning Systems"** store versions as
  *sparse* deltas over fixed-size blocks: a new version touches a small
  subset of blocks and leaves the rest byte-identical.  The
  :func:`replica_sync` mutator reproduces that shape — block-aligned
  rewrites with everything else untouched — which is the *friendliest*
  delta workload and the natural foil to the InDel process.  Its
  ``parity_blocks`` knob models the erasure-coded replicas of the
  paper: parity blocks are recomputed (XOR across a stripe) whenever a
  data block in their stripe changes, so edits fan out the way they do
  in a coded store.

Both generators are deterministic given their ``random.Random`` and are
registered in :data:`ADVERSARIAL_GENERATORS` so the fleet campaign and
the differ fuzz suites can sweep them alongside the corpus mutators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class InDelProcess:
    """Wang et al.'s insertion-deletion edit process.

    ``edits`` single-symbol operations are applied in sequence; each is
    an insertion with probability ``p_insert`` (else a deletion).  In
    the ``"random"`` regime positions are uniform over the current
    file; in the ``"arbitrary"`` regime they concentrate inside a
    window of ``window_fraction`` of the file chosen once per run — the
    adversarial clustering that maximizes seed misalignment.
    ``burst`` > 1 turns each operation into a run of that many adjacent
    symbols (the papers' burst-InDel variant).
    """

    edits: int = 64
    p_insert: float = 0.5
    regime: str = "random"  # or "arbitrary"
    burst: int = 1
    window_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.regime not in ("random", "arbitrary"):
            raise ValueError(
                "unknown InDel regime %r; choose 'random' or 'arbitrary'"
                % (self.regime,)
            )
        if not (0.0 <= self.p_insert <= 1.0):
            raise ValueError("p_insert must be in [0, 1]")
        if self.edits < 0 or self.burst < 1:
            raise ValueError("edits must be >= 0 and burst >= 1")
        if not (0.0 < self.window_fraction <= 1.0):
            raise ValueError("window_fraction must be in (0, 1]")

    def apply(self, data: bytes, rng: random.Random) -> bytes:
        """Run the process over ``data`` and return the edited file."""
        out = bytearray(data)
        window_start = window_len = 0
        if self.regime == "arbitrary" and out:
            window_len = max(1, int(len(out) * self.window_fraction))
            window_start = rng.randrange(max(1, len(out) - window_len + 1))
        for _ in range(self.edits):
            if self.regime == "arbitrary" and out:
                hi = min(len(out), window_start + window_len)
                lo = min(window_start, len(out) - 1)
                pos = rng.randrange(lo, max(lo + 1, hi))
            else:
                pos = rng.randrange(len(out) + 1) if out else 0
            if rng.random() < self.p_insert or not out:
                out[pos:pos] = rng.randbytes(self.burst)
            else:
                del out[pos:pos + self.burst]
        return bytes(out)


def indel_random(data: bytes, rng: random.Random, edits: int = 64,
                 p_insert: float = 0.5, burst: int = 1) -> bytes:
    """One round of the random-position InDel process."""
    return InDelProcess(edits=edits, p_insert=p_insert,
                        burst=burst).apply(data, rng)


def indel_arbitrary(data: bytes, rng: random.Random, edits: int = 64,
                    p_insert: float = 0.5, burst: int = 1,
                    window_fraction: float = 0.05) -> bytes:
    """One round of the clustered (adversarial) InDel process."""
    return InDelProcess(edits=edits, p_insert=p_insert, burst=burst,
                        regime="arbitrary",
                        window_fraction=window_fraction).apply(data, rng)


@dataclass(frozen=True)
class ReplicaSyncProcess:
    """Harshan & Oggier's block-sparse delta-versioning edit shape.

    The file is viewed as consecutive ``block_size``-byte blocks
    grouped into stripes of ``stripe_width`` data blocks followed by
    ``parity_blocks`` parity blocks.  One sync rewrites a sparse subset
    of data blocks (``sparsity`` of them on average, at least one) with
    fresh bytes and recomputes every parity block whose stripe was
    touched as the XOR of its stripe's data blocks — the deterministic
    fan-out a coded replica store exhibits.  All untouched blocks stay
    byte-identical, so the resulting delta is maximally sparse and
    block-aligned.
    """

    block_size: int = 512
    sparsity: float = 0.04
    stripe_width: int = 8
    parity_blocks: int = 0

    def __post_init__(self) -> None:
        if self.block_size < 1 or self.stripe_width < 1:
            raise ValueError("block_size and stripe_width must be positive")
        if not (0.0 < self.sparsity <= 1.0):
            raise ValueError("sparsity must be in (0, 1]")
        if self.parity_blocks < 0:
            raise ValueError("parity_blocks must be non-negative")

    def apply(self, data: bytes, rng: random.Random) -> bytes:
        out = bytearray(data)
        nblocks = max(1, (len(out) + self.block_size - 1) // self.block_size)
        stripe = self.stripe_width + self.parity_blocks
        # Data blocks are the non-parity positions of each stripe.
        data_blocks = [b for b in range(nblocks)
                       if (b % stripe) < self.stripe_width]
        if not data_blocks:
            return bytes(out)
        count = max(1, int(round(len(data_blocks) * self.sparsity)))
        touched = sorted(rng.sample(data_blocks, min(count, len(data_blocks))))
        for b in touched:
            start = b * self.block_size
            stop = min(len(out), start + self.block_size)
            out[start:stop] = rng.randbytes(stop - start)
        if self.parity_blocks:
            for s in sorted({b // stripe for b in touched}):
                self._recompute_parity(out, s, stripe)
        return bytes(out)

    def _recompute_parity(self, out: bytearray, s: int, stripe: int) -> None:
        base = s * stripe
        for p in range(self.parity_blocks):
            pb = base + self.stripe_width + p
            start = pb * self.block_size
            if start >= len(out):
                break
            stop = min(len(out), start + self.block_size)
            parity = bytearray(stop - start)
            for d in range(self.stripe_width):
                dstart = (base + d) * self.block_size
                chunk = out[dstart:dstart + len(parity)]
                for i, byte in enumerate(chunk):
                    parity[i] ^= byte
            out[start:stop] = parity


def replica_sync(data: bytes, rng: random.Random, block_size: int = 512,
                 sparsity: float = 0.04, stripe_width: int = 8,
                 parity_blocks: int = 1) -> bytes:
    """One replica-sync round: sparse block rewrites plus parity fan-out."""
    return ReplicaSyncProcess(block_size=block_size, sparsity=sparsity,
                              stripe_width=stripe_width,
                              parity_blocks=parity_blocks).apply(data, rng)


#: Named adversarial edit processes, same ``(data, rng) -> bytes`` shape
#: the corpus mutators use — the fleet campaign's workload axis and the
#: fuzz suites' extra generators.
AdversarialGenerator = Callable[[bytes, random.Random], bytes]

ADVERSARIAL_GENERATORS: Dict[str, AdversarialGenerator] = {
    "indel-random": lambda data, rng: indel_random(data, rng),
    "indel-burst": lambda data, rng: indel_random(data, rng, edits=24,
                                                  burst=16),
    "indel-arbitrary": lambda data, rng: indel_arbitrary(data, rng),
    "replica-sync": lambda data, rng: replica_sync(data, rng),
    "replica-sync-dense": lambda data, rng: replica_sync(
        data, rng, block_size=256, sparsity=0.15, parity_blocks=2),
}


def generator_names() -> List[str]:
    """Stable ordering of :data:`ADVERSARIAL_GENERATORS` keys."""
    return sorted(ADVERSARIAL_GENERATORS)


__all__ = [
    "ADVERSARIAL_GENERATORS",
    "InDelProcess",
    "ReplicaSyncProcess",
    "generator_names",
    "indel_arbitrary",
    "indel_random",
    "replica_sync",
]
