"""Edit-script mutators: derive a new file version from an old one.

The paper's corpus is successive released versions of real software.  A
release differs from its predecessor by a modest set of localized edits —
inserted functions, deleted blocks, changed constants, occasionally a
moved region.  This module generates such edits synthetically and
deterministically (seeded :class:`random.Random`), so corpus generation
is reproducible across runs and machines.

Each mutator takes and returns ``bytes``; :func:`mutate` composes a
random mix drawn from :class:`MutationProfile`, whose defaults are
calibrated so the resulting version files delta-compress into the 4-10x
range the paper reports for distributed software.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple


def insert_bytes(data: bytes, rng: random.Random, size: int) -> bytes:
    """Insert ``size`` fresh random bytes at a random position."""
    pos = rng.randrange(len(data) + 1)
    blob = rng.randbytes(size)
    return data[:pos] + blob + data[pos:]


def delete_bytes(data: bytes, rng: random.Random, size: int) -> bytes:
    """Delete up to ``size`` bytes starting at a random position."""
    if len(data) <= 1:
        return data
    size = min(size, len(data) - 1)
    pos = rng.randrange(len(data) - size + 1)
    return data[:pos] + data[pos + size:]


def replace_bytes(data: bytes, rng: random.Random, size: int) -> bytes:
    """Overwrite up to ``size`` bytes at a random position with fresh bytes."""
    if not data:
        return data
    size = min(size, len(data))
    pos = rng.randrange(len(data) - size + 1)
    return data[:pos] + rng.randbytes(size) + data[pos + size:]


def move_block(data: bytes, rng: random.Random, size: int) -> bytes:
    """Cut a block of up to ``size`` bytes and reinsert it elsewhere.

    Block moves are what make delta digraphs cyclic: two regions that
    swap places read each other's old locations.
    """
    if len(data) < 2:
        return data
    size = min(size, len(data) // 2)
    if size == 0:
        return data
    src = rng.randrange(len(data) - size + 1)
    block = data[src:src + size]
    rest = data[:src] + data[src + size:]
    dst = rng.randrange(len(rest) + 1)
    return rest[:dst] + block + rest[dst:]


def duplicate_block(data: bytes, rng: random.Random, size: int) -> bytes:
    """Copy a block of up to ``size`` bytes to a second random position."""
    if not data:
        return data
    size = min(size, len(data))
    src = rng.randrange(len(data) - size + 1)
    block = data[src:src + size]
    dst = rng.randrange(len(data) + 1)
    return data[:dst] + block + data[dst:]


def swap_blocks(data: bytes, rng: random.Random, size: int) -> bytes:
    """Exchange two disjoint blocks of up to ``size`` bytes.

    The strongest cycle inducer: each block's new location overlaps the
    other's old read interval, giving the CRWI digraph mutual edges.
    """
    if len(data) < 4:
        return data
    size = min(size, len(data) // 4)
    if size == 0:
        return data
    a = rng.randrange(len(data) - 2 * size)
    b = rng.randrange(a + size, len(data) - size + 1)
    return (
        data[:a] + data[b:b + size] + data[a + size:b] + data[a:a + size]
        + data[b + size:]
    )


Mutator = Callable[[bytes, random.Random, int], bytes]

MUTATORS: Dict[str, Mutator] = {
    "insert": insert_bytes,
    "delete": delete_bytes,
    "replace": replace_bytes,
    "move": move_block,
    "duplicate": duplicate_block,
    "swap": swap_blocks,
}


@dataclass
class MutationProfile:
    """Distribution of edits applied per derived version.

    ``edits_per_kb`` scales the edit count with file size; ``weights``
    picks the mutator mix; content edits (insert/delete/replace) draw
    sizes uniform in ``[min_edit, max_edit]`` while structural edits
    (move/duplicate/swap) are capped at ``structural_max_edit`` — real
    releases move small code fragments far more often than whole
    segments, and the cap keeps CRWI cycle-breaking costs realistic.
    The default profile changes roughly 5-10% of a file's bytes per
    version, landing plain delta compression in the paper's reported
    4-10x band, with enough moves and swaps that the in-place converter
    meets real cycles.
    """

    edits_per_kb: float = 0.7
    min_edits: int = 2
    min_edit: int = 12
    max_edit: int = 640
    structural_max_edit: int = 200
    weights: Dict[str, float] = field(
        default_factory=lambda: {
            "insert": 0.26,
            "delete": 0.20,
            "replace": 0.28,
            "move": 0.18,
            "duplicate": 0.03,
            "swap": 0.03,
        }
    )

    def edit_size(self, name: str, rng: random.Random) -> int:
        """Draw an edit size for mutator ``name`` per the profile's caps."""
        hi = self.max_edit
        if name in ("move", "duplicate", "swap"):
            hi = min(hi, self.structural_max_edit)
        return rng.randint(self.min_edit, max(self.min_edit, hi))

    def edit_count(self, size: int, rng: random.Random) -> int:
        """Number of edits for a file of ``size`` bytes."""
        expected = max(self.min_edits, self.edits_per_kb * size / 1024.0)
        # Jitter +/- 30% so versions differ in how much they changed.
        return max(self.min_edits, int(expected * rng.uniform(0.7, 1.3)))


#: Profile for volatile files (changelogs, generated headers): heavier churn.
CHURN_PROFILE = MutationProfile(edits_per_kb=2.5, min_edit=24, max_edit=1280)
#: Profile for stable files (licence texts, icons): almost untouched.
STABLE_PROFILE = MutationProfile(edits_per_kb=0.08, min_edits=0, max_edit=96)


def mutate(data: bytes, rng: random.Random,
           profile: MutationProfile = MutationProfile()) -> bytes:
    """Derive a new version of ``data`` by applying a random edit mix."""
    names = list(profile.weights)
    weights = [profile.weights[n] for n in names]
    out = data
    for _ in range(profile.edit_count(len(data), rng)):
        name = rng.choices(names, weights)[0]
        size = profile.edit_size(name, rng)
        out = MUTATORS[name](out, rng, size)
    return out


def edit_distance_estimate(old: bytes, new: bytes) -> float:
    """Crude changed-fraction estimate: 1 - (common prefix+suffix)/len(new).

    Cheap sanity metric for tests and corpus calibration; not a real edit
    distance.
    """
    if not new:
        return 0.0
    prefix = 0
    limit = min(len(old), len(new))
    while prefix < limit and old[prefix] == new[prefix]:
        prefix += 1
    suffix = 0
    while suffix < limit - prefix and old[-1 - suffix] == new[-1 - suffix]:
        suffix += 1
    return 1.0 - (prefix + suffix) / len(new)
