"""Synthetic workloads: file mutators, content generators, versioned corpus."""

from .corpus import (
    Corpus,
    PackageSpec,
    VersionPair,
    benchmark_corpus,
    default_package_specs,
    small_corpus,
)
from .mutators import (
    CHURN_PROFILE,
    MUTATORS,
    STABLE_PROFILE,
    MutationProfile,
    edit_distance_estimate,
    mutate,
)
from .sources import GENERATORS, make_binary_blob, make_changelog, make_source_file
from .web import WebSite, fetch_sequence

__all__ = [
    "CHURN_PROFILE",
    "Corpus",
    "GENERATORS",
    "MUTATORS",
    "MutationProfile",
    "PackageSpec",
    "STABLE_PROFILE",
    "VersionPair",
    "WebSite",
    "benchmark_corpus",
    "fetch_sequence",
    "default_package_specs",
    "edit_distance_estimate",
    "make_binary_blob",
    "make_changelog",
    "make_source_file",
    "mutate",
    "small_corpus",
]
