"""Synthetic workloads: file mutators, content generators, versioned
corpus, and the adversarial edit processes (InDel, replica-sync) the
fleet campaign and fuzz suites sweep."""

from .corpus import (
    Corpus,
    PackageSpec,
    VersionPair,
    benchmark_corpus,
    default_package_specs,
    small_corpus,
)
from .indel import (
    ADVERSARIAL_GENERATORS,
    InDelProcess,
    ReplicaSyncProcess,
    indel_arbitrary,
    indel_random,
    replica_sync,
)
from .mutators import (
    CHURN_PROFILE,
    MUTATORS,
    STABLE_PROFILE,
    MutationProfile,
    edit_distance_estimate,
    mutate,
)
from .sources import GENERATORS, make_binary_blob, make_changelog, make_source_file
from .web import WebSite, fetch_sequence

__all__ = [
    "ADVERSARIAL_GENERATORS",
    "CHURN_PROFILE",
    "Corpus",
    "GENERATORS",
    "InDelProcess",
    "MUTATORS",
    "MutationProfile",
    "PackageSpec",
    "ReplicaSyncProcess",
    "STABLE_PROFILE",
    "VersionPair",
    "WebSite",
    "benchmark_corpus",
    "fetch_sequence",
    "default_package_specs",
    "edit_distance_estimate",
    "indel_arbitrary",
    "indel_random",
    "make_binary_blob",
    "make_changelog",
    "make_source_file",
    "mutate",
    "replica_sync",
    "small_corpus",
]
