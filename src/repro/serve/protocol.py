"""Length-prefixed, CRC-framed wire protocol for the delta daemon.

The serving loop moves IPD2 payloads over lossy links, so the transport
gets the same treatment the container format got in the integrity plane:
every frame is self-verifying, and every way a frame can be damaged —
truncated mid-header, truncated mid-payload, any single bit flipped
anywhere — must surface as a structured
:class:`~repro.exceptions.IntegrityError` with ``kind="frame"``, never
as an ``IndexError``, a hang, or a silently short read.

Frame layout (all integers little-endian)::

    MAGIC(1) | TYPE(1) | LENGTH(u32) | PAYLOAD(LENGTH) | CRC32(u32)

The CRC covers the header *and* the payload, so a flip in the length
field either changes where the CRC is read from (caught as a CRC
mismatch or a truncation) or, in the strict parser, leaves trailing
bytes (caught explicitly).  Control payloads are compact JSON with
sorted keys — byte-deterministic, so coalesced responses compare equal
— and ``DATA`` payloads are raw delta bytes.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from typing import Dict, Tuple

from ..exceptions import IntegrityError

#: First byte of every frame; rejects cross-protocol traffic cheaply.
FRAME_MAGIC = 0xD5

#: Frame types.  Requests: a client asks to be brought up to date.
#: Responses: metadata, payload chunks, a terminal END/ERROR/RETRY.
T_PULL = 0x01
T_META = 0x02
T_DATA = 0x03
T_END = 0x04
T_ERROR = 0x05
T_RETRY = 0x06

FRAME_TYPES = (T_PULL, T_META, T_DATA, T_END, T_ERROR, T_RETRY)

#: MAGIC + TYPE + LENGTH.
HEADER_SIZE = 6
#: Trailing CRC32.
CRC_SIZE = 4

#: Default ceiling on a frame's payload.  Oversize lengths are rejected
#: *before* allocation, so a bit flip in the length field can never make
#: the reader try to buffer gigabytes.
MAX_PAYLOAD = 1 << 24

_HEADER = struct.Struct("<BBI")
_CRC = struct.Struct("<I")

#: Structured error codes an ERROR frame may carry (``code`` field).
ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_PACKAGE = "unknown-package"
ERR_UNKNOWN_VERSION = "unknown-version"
ERR_UP_TO_DATE = "up-to-date"
ERR_ENCODE_FAILED = "encode-failed"
ERR_DEADLINE = "deadline"
ERR_DRAINING = "draining"

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_UNKNOWN_PACKAGE,
    ERR_UNKNOWN_VERSION,
    ERR_UP_TO_DATE,
    ERR_ENCODE_FAILED,
    ERR_DEADLINE,
    ERR_DRAINING,
)


def _frame_error(message: str, *, offset: int = -1,
                 expected: object = None, actual: object = None
                 ) -> IntegrityError:
    return IntegrityError(message, kind="frame", offset=offset,
                          expected=expected, actual=actual)


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """Serialize one frame: header, payload, trailing CRC32."""
    if ftype not in FRAME_TYPES:
        raise ValueError("unknown frame type 0x%02x" % ftype)
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(
            "frame payload of %d bytes exceeds the %d-byte ceiling"
            % (len(payload), MAX_PAYLOAD)
        )
    body = _HEADER.pack(FRAME_MAGIC, ftype, len(payload)) + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def parse_frame(data: bytes, *, max_payload: int = MAX_PAYLOAD
                ) -> Tuple[int, bytes]:
    """Strict one-frame parser: ``(type, payload)`` or ``IntegrityError``.

    Consumes exactly the whole buffer — trailing bytes are an error, so
    a bit flip that *shrinks* the length field cannot silently drop the
    payload tail.  Every failure mode raises ``kind="frame"`` with the
    offending offset where one exists.
    """
    if len(data) < HEADER_SIZE:
        raise _frame_error(
            "frame truncated in header: %d of %d bytes"
            % (len(data), HEADER_SIZE), offset=len(data))
    magic, ftype, length = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise _frame_error("bad frame magic 0x%02x" % magic, offset=0,
                           expected=FRAME_MAGIC, actual=magic)
    if length > max_payload:
        raise _frame_error(
            "frame declares %d payload bytes, over the %d-byte ceiling"
            % (length, max_payload), offset=2,
            expected=max_payload, actual=length)
    total = HEADER_SIZE + length + CRC_SIZE
    if len(data) < total:
        raise _frame_error(
            "frame truncated: %d of %d bytes" % (len(data), total),
            offset=len(data))
    if len(data) > total:
        raise _frame_error(
            "%d trailing bytes after frame" % (len(data) - total),
            offset=total)
    body = data[:HEADER_SIZE + length]
    (crc,) = _CRC.unpack_from(data, HEADER_SIZE + length)
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if crc != actual:
        raise _frame_error(
            "frame CRC mismatch: stored 0x%08x != computed 0x%08x"
            % (crc, actual), offset=HEADER_SIZE + length,
            expected=crc, actual=actual)
    if ftype not in FRAME_TYPES:
        raise _frame_error("unknown frame type 0x%02x" % ftype, offset=1,
                           actual=ftype)
    return ftype, data[HEADER_SIZE:HEADER_SIZE + length]


async def read_frame(reader: "asyncio.StreamReader", *,
                     max_payload: int = MAX_PAYLOAD) -> Tuple[int, bytes]:
    """Read exactly one frame off a stream, or raise ``kind="frame"``.

    EOF mid-frame (the peer vanished, or a fault site cut the
    connection) is a truncation, reported structurally instead of
    surfacing :class:`asyncio.IncompleteReadError` — the read loop never
    waits on bytes that already cannot form a valid frame, so a
    truncated stream cannot deadlock the caller.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
        magic, ftype, length = _HEADER.unpack_from(header)
        if magic != FRAME_MAGIC:
            raise _frame_error("bad frame magic 0x%02x" % magic, offset=0,
                               expected=FRAME_MAGIC, actual=magic)
        if length > max_payload:
            raise _frame_error(
                "frame declares %d payload bytes, over the %d-byte ceiling"
                % (length, max_payload), offset=2,
                expected=max_payload, actual=length)
        rest = await reader.readexactly(length + CRC_SIZE)
    except asyncio.IncompleteReadError as exc:
        raise _frame_error(
            "stream truncated mid-frame: got %d of %d expected bytes"
            % (len(exc.partial), exc.expected or 0),
            offset=len(exc.partial)) from None
    except ConnectionError as exc:
        raise _frame_error("connection lost mid-frame: %s" % exc) from None
    return parse_frame(header + rest, max_payload=max_payload)


async def write_frame(writer: "asyncio.StreamWriter", ftype: int,
                      payload: bytes = b"") -> None:
    """Serialize and flush one frame."""
    writer.write(encode_frame(ftype, payload))
    await writer.drain()


# -- control-message payloads (compact, key-sorted JSON) ----------------

def encode_msg(msg: Dict[str, object]) -> bytes:
    """Byte-deterministic JSON encoding for control payloads."""
    return json.dumps(msg, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_msg(payload: bytes) -> Dict[str, object]:
    """Parse a control payload; malformed JSON is a frame-level error.

    The CRC already caught random damage, so reaching here with bad
    JSON means a peer speaking a different dialect — still reported as
    a structured ``kind="frame"`` error, never a raw ``ValueError``.
    """
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _frame_error("malformed control payload: %s" % exc) from None
    if not isinstance(msg, dict):
        raise _frame_error(
            "control payload is %s, not an object" % type(msg).__name__)
    return msg


__all__ = [
    "CRC_SIZE",
    "ERROR_CODES",
    "ERR_BAD_REQUEST",
    "ERR_DEADLINE",
    "ERR_DRAINING",
    "ERR_ENCODE_FAILED",
    "ERR_UNKNOWN_PACKAGE",
    "ERR_UNKNOWN_VERSION",
    "ERR_UP_TO_DATE",
    "FRAME_MAGIC",
    "FRAME_TYPES",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "T_DATA",
    "T_END",
    "T_ERROR",
    "T_META",
    "T_PULL",
    "T_RETRY",
    "decode_msg",
    "encode_frame",
    "encode_msg",
    "parse_frame",
    "read_frame",
    "write_frame",
]
