"""Load generator: hundreds of concurrent pulls through a fault storm.

The serving analogue of :func:`repro.fleet.run_campaign`: build a small
release corpus, start a :class:`~repro.serve.DeltaServer`, and point
``clients`` concurrent :func:`~repro.serve.pull_async` calls at it —
mixed *distinct* and *duplicate* (reference, target) pairs, so
coalescing and the payload cache are exercised, under a server-side
fault plan (``serve.accept`` drops, ``serve.frame`` corruption), a
client-side plan (``client.recv`` drops), and optionally one mid-pull
power cut on a chosen client.

The report enforces the zero-silent-failure invariant at accounting
time, exactly like the fleet campaign's serializer: every client must
terminate ``applied`` (and then byte-exact against the published
target), ``failed`` with a non-empty structured reason, or ``refused``
by backpressure.  Anything else lands in :meth:`LoadReport.silent`.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import perf
from ..faults import FaultPlan, FaultSpec
from ..store import MemoryStore, VersionStore
from ..workloads import make_binary_blob, mutate
from .client import PullOutcome, pull_async
from .daemon import DeltaServer, ServeConfig

#: Fixed seed shared with the bench suite (the paper's publication date).
DEFAULT_SEED = 19980601


@dataclass(frozen=True)
class ClientSpec:
    """One simulated device: what it holds and what it pulls."""

    name: str
    package: str
    reference: bytes
    expected: bytes
    want: str
    #: The coalescing identity: clients sharing a pair share one encode.
    pair: Tuple[str, str, str]


@dataclass
class LoadReport:
    """Aggregate of one load run, with the invariant checks built in."""

    clients: int = 0
    applied: int = 0
    failed: int = 0
    refused: int = 0
    byte_exact: int = 0
    power_cuts: int = 0
    resumes: int = 0
    client_faults: int = 0
    distinct_pairs: int = 0
    #: Perf counters recorded across the run (server + clients).
    counters: Dict[str, float] = field(default_factory=dict)
    #: Server's always-on counters, snapshotted after the drain.
    server_counters: Dict[str, int] = field(default_factory=dict)
    outcomes: List[PullOutcome] = field(default_factory=list)
    #: Invariant violations: silent failures, wrong bytes, missing
    #: reasons.  Empty on a healthy run.
    silent: List[str] = field(default_factory=list)

    @property
    def terminal(self) -> int:
        return self.applied + self.failed + self.refused

    def summary(self) -> Dict[str, object]:
        return {
            "schema": "repro.serve.load/1",
            "clients": self.clients,
            "applied": self.applied,
            "failed": self.failed,
            "refused": self.refused,
            "byte_exact": self.byte_exact,
            "power_cuts": self.power_cuts,
            "resumes": self.resumes,
            "client_faults": self.client_faults,
            "distinct_pairs": self.distinct_pairs,
            "encodes": int(self.counters.get("serve.encodes", 0)),
            "coalesced": int(self.counters.get("serve.coalesced", 0)),
            "silent": list(self.silent),
        }


def build_corpus(*, packages: int = 3, releases: int = 3,
                 size: int = 8192, seed: int = DEFAULT_SEED,
                 store: Optional[VersionStore] = None
                 ) -> Tuple[VersionStore, Dict[str, List[Tuple[str, bytes]]]]:
    """A version store plus, per package, its (digest, bytes) chain.

    ``store`` chooses where the corpus lands — any
    :class:`~repro.store.VersionStore` (a persistent
    :class:`~repro.store.PackStore`, say); the default is a fresh
    in-memory :class:`~repro.store.MemoryStore`.
    """
    rng = random.Random(seed)
    if store is None:
        store = MemoryStore()
    chains: Dict[str, List[Tuple[str, bytes]]] = {}
    for p in range(packages):
        package = "pkg%03d" % p
        image = make_binary_blob(rng, size)
        chain = []
        for _ in range(releases):
            digest = store.publish(package, image)
            chain.append((digest, image))
            image = mutate(image, rng)
        chains[package] = chain
    return store, chains


def build_clients(chains: Dict[str, List[Tuple[str, bytes]]],
                  clients: int) -> List[ClientSpec]:
    """``clients`` specs cycling over every stale (package, release).

    Round-robin over all stale pairs guarantees the mix the acceptance
    test wants: with more clients than pairs, every pair is duplicated
    — those must coalesce — while the pairs themselves stay distinct.
    """
    pairs: List[Tuple[str, Tuple[str, bytes], Tuple[str, bytes]]] = []
    for package in sorted(chains):
        chain = chains[package]
        latest = chain[-1]
        for stale in chain[:-1]:
            pairs.append((package, stale, latest))
    if not pairs:
        raise ValueError("corpus has no stale releases to pull")
    specs = []
    for i in range(clients):
        package, (have_digest, reference), (want_digest, expected) = \
            pairs[i % len(pairs)]
        specs.append(ClientSpec(
            name="dev%04d" % i,
            package=package,
            reference=reference,
            expected=expected,
            want=want_digest,
            pair=(package, have_digest, want_digest),
        ))
    return specs


async def run_load_async(
    *,
    clients: int = 200,
    packages: int = 3,
    releases: int = 3,
    size: int = 8192,
    seed: int = DEFAULT_SEED,
    server_fault_plan: Optional[FaultPlan] = None,
    client_fault_plan: Optional[FaultPlan] = None,
    #: Index of one client whose apply is hit by a power cut (boot 1
    #: dies with ``power_cut_fuel`` write budget); ``None`` disables.
    power_cut_client: Optional[int] = None,
    power_cut_fuel: int = 600,
    max_inflight: int = 64,
    request_timeout: Optional[float] = 30.0,
    max_attempts: int = 6,
    backoff_base: float = 0.0,
    backoff_jitter: float = 0.0,
    chunk_size: int = 1 << 14,
    io_timeout: Optional[float] = 30.0,
    #: Per-client start delay (seconds x client index); a small stagger
    #: makes drain-mid-storm runs realistic — early pulls are genuinely
    #: in flight at the server when the drain lands.
    stagger: float = 0.0,
    drain_after: Optional[int] = None,
    store: Optional[VersionStore] = None,
) -> LoadReport:
    """Drive ``clients`` concurrent pulls; return the checked report.

    ``drain_after``, when set, requests a server drain as soon as that
    many pulls have *started* — the remaining in-flight pulls must still
    complete (the SIGTERM-drains-gracefully guarantee), while pulls
    connecting after the drain land on a closed socket and terminate as
    structured failures.

    ``store``, when given, receives the corpus and backs the server —
    the way the storm is pointed at a persistent
    :class:`~repro.store.PackStore` instead of the in-memory default.
    """
    store, chains = build_corpus(packages=packages, releases=releases,
                                 size=size, seed=seed, store=store)
    specs = build_clients(chains, clients)
    report = LoadReport(clients=clients,
                        distinct_pairs=len({s.pair for s in specs}))

    config = ServeConfig(
        port=0,
        max_inflight=max_inflight,
        request_timeout=request_timeout,
        chunk_size=chunk_size,
        fault_plan=server_fault_plan,
    )
    server = DeltaServer(store, config)
    started = {"count": 0}

    async def one_pull(i: int, spec: ClientSpec) -> PullOutcome:
        if stagger > 0.0:
            await asyncio.sleep(i * stagger)
        started["count"] += 1
        if drain_after is not None and started["count"] == drain_after:
            server.request_drain()
        plan = client_fault_plan
        if i == power_cut_client:
            # This one device loses power mid-apply: its plan carries a
            # device.power spec on top of whatever storm the rest get.
            specs_ = (plan.specs if plan is not None else ()) + (
                FaultSpec(site="device.power", nth=1, error="power",
                          fuel=power_cut_fuel),)
            plan = FaultPlan(specs_, seed=plan.seed if plan else seed)
        try:
            return await pull_async(
                server.host, server.port, spec.package, spec.reference,
                want=spec.want,
                scope=spec.name,
                fault_plan=plan,
                max_attempts=max_attempts,
                backoff_base=backoff_base,
                backoff_jitter=backoff_jitter,
                chunk_size=chunk_size,
                io_timeout=io_timeout,
            )
        except Exception as exc:  # pragma: no cover - invariant breach
            # A pull that *raises* instead of returning a structured
            # outcome is itself a silent-failure bug; surface it as one.
            outcome = PullOutcome(package=spec.package)
            outcome.status = "crashed"
            outcome.reason = "%s: %s" % (type(exc).__name__, exc)
            return outcome

    with perf.recording() as recorder:
        await server.start()
        try:
            outcomes = await asyncio.gather(
                *(one_pull(i, spec) for i, spec in enumerate(specs)))
        finally:
            await server.drain()
    report.counters = dict(recorder.counters)
    report.server_counters = dict(server.counters)
    report.outcomes = list(outcomes)

    # -- the zero-silent-failure invariant, enforced at accounting ------
    for spec, outcome in zip(specs, outcomes):
        report.power_cuts += outcome.power_cuts
        report.resumes += outcome.resumes
        report.client_faults += len(outcome.faults)
        if outcome.status == "applied":
            report.applied += 1
            if outcome.image == spec.expected or (
                    outcome.reason == "already up to date"):
                report.byte_exact += 1
            else:
                report.silent.append(
                    "%s: applied but bytes differ from the published "
                    "target" % spec.name)
        elif outcome.status == "failed":
            report.failed += 1
            if not outcome.reason:
                report.silent.append(
                    "%s: failed with an empty reason" % spec.name)
        elif outcome.status == "refused":
            report.refused += 1
        else:
            report.silent.append(
                "%s: non-terminal status %r (%s)"
                % (spec.name, outcome.status, outcome.reason))
    return report


def run_load(**kwargs) -> LoadReport:
    """Synchronous wrapper around :func:`run_load_async`."""
    return asyncio.run(run_load_async(**kwargs))


__all__ = [
    "ClientSpec",
    "DEFAULT_SEED",
    "LoadReport",
    "build_clients",
    "build_corpus",
    "run_load",
    "run_load_async",
]
