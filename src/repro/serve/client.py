"""The pull client: download, verify, and apply a delta in place.

:func:`pull` is the device-side half of the serving story — the same
role :func:`~repro.device.updater.run_journaled_session` plays for the
simulated channel, speaking the daemon's framed TCP protocol instead.
The headline property is *zero silent failures*: every pull terminates
in exactly one of three structured states —

``"applied"``
    The image was reconstructed byte-exact (delta trailer, segment
    CRCs, reference digest, and the carried version checksum all
    passed).
``"failed"``
    A structured reason explains what went wrong (exhausted retries, a
    corrupt payload, a server-side error, power failed on every boot).
``"refused"``
    The daemon's backpressure said come back later (RETRY frame);
    ``retry_after`` carries the server's hint.

Resume works at both planes.  *Download* resume: an interrupted
transfer retries with ``offset=<verified bytes>``, so a connection
dropped by ``client.recv``/``serve.accept`` faults (or a bit-flipped
frame caught by the frame CRC) costs backoff plus the missing tail, not
the whole payload.  *Apply* resume: the journaled applier rides out
``device.power`` cuts exactly as the updater does — each reboot
round-trips the journal through its serialized form and re-verifies
already-applied regions via ``applied_crc`` before a single new byte is
written.  With a :class:`PullState` directory both planes survive
process death too: a re-invoked pull picks up the saved payload,
journal, and partially-mutated storage and completes byte-exact.

Retry backoff reuses :func:`repro.faults.jitter_draw` — the exact
formula of the updater's ``_sleep_backoff`` — so a pull's retry timing
is byte-reproducible from its fault seed.
"""

from __future__ import annotations

import asyncio
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.apply import preflight_in_place, storage_crc32
from ..delta.encode import decode_delta
from ..delta.wrapper import is_sealed, unseal
from ..device.journal import (
    CrashingStorage,
    Journal,
    JournaledApplier,
    PowerFailureError,
)
from ..exceptions import (
    DeltaRangeError,
    IntegrityError,
    ReproError,
    TransmissionError,
)
from ..faults import FaultPlan, describe_failure, jitter_draw
from ..pipeline import ReferenceIndexCache
from . import protocol
from .protocol import (
    ERR_UP_TO_DATE,
    T_DATA,
    T_END,
    T_ERROR,
    T_META,
    T_PULL,
    T_RETRY,
    decode_msg,
    encode_msg,
    read_frame,
    write_frame,
)

#: Module-level alias so tests can monkeypatch the client's sleeps the
#: same way tests/test_fleet.py patches the updater's ``time.sleep``.
_async_sleep = asyncio.sleep

Buffer = Union[bytes, bytearray, memoryview]


class _Refused(Exception):
    """Server backpressure: RETRY frame received."""

    def __init__(self, retry_after: float):
        super().__init__("refused by backpressure")
        self.retry_after = retry_after


class _ServerError(Exception):
    """Structured ERROR frame received — a terminal server answer."""

    def __init__(self, code: str, message: str):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message


@dataclass
class PullOutcome:
    """Everything one pull did, ending in a structured terminal state."""

    package: str
    #: ``"applied"`` | ``"failed"`` | ``"refused"`` — never anything else.
    status: str = "failed"
    #: Structured reason for ``failed``/``refused`` terminals.
    reason: str = ""
    #: Digest of the version the pull targeted (once known).
    want: str = ""
    #: Download attempts made (connections opened).
    attempts: int = 0
    #: Boots the journaled apply took (1 = no power cut).
    boots: int = 0
    power_cuts: int = 0
    #: Times a retry resumed a partial download instead of restarting.
    resumes: int = 0
    #: Bytes skipped across resumed downloads (already-verified prefix).
    resumed_bytes: int = 0
    payload_bytes: int = 0
    #: CRC32 of the downloaded delta payload (0 until downloaded):
    #: coalesced pulls of the same pair must agree here byte-for-byte.
    payload_crc32: int = 0
    #: Server's backpressure hint, for ``refused`` terminals.
    retry_after: float = 0.0
    #: Every fault survived along the way, rendered ``"Type: message"``.
    faults: List[str] = field(default_factory=list)
    #: The reconstructed image, for ``applied`` terminals.
    image: Optional[bytes] = None

    @property
    def ok(self) -> bool:
        return self.status == "applied"

    def summary(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "status": self.status,
            "reason": self.reason,
            "want": self.want,
            "attempts": self.attempts,
            "boots": self.boots,
            "power_cuts": self.power_cuts,
            "resumes": self.resumes,
            "resumed_bytes": self.resumed_bytes,
            "payload_bytes": self.payload_bytes,
            "payload_crc32": self.payload_crc32,
            "faults": list(self.faults),
        }


class PullState:
    """Durable pull progress in a directory: crash-safe across processes.

    Three artifacts, each written atomically (tmp + rename): the
    downloaded payload plus its META record, the journal sector, and the
    partially-mutated storage image.  A pull handed a state directory
    saves after every completed download and every power-cut boot; a
    later pull (same process or a fresh one) resumes from whatever
    survived and :meth:`clear`\\ s on success.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._payload = self.root / "payload.bin"
        self._meta = self.root / "meta.json"
        self._journal = self.root / "journal.bin"
        self._storage = self.root / "storage.bin"

    @staticmethod
    def _write(path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        tmp.replace(path)

    def load_payload(self) -> Tuple[bytearray, Optional[Dict[str, object]]]:
        if not (self._payload.exists() and self._meta.exists()):
            return bytearray(), None
        try:
            meta = json.loads(self._meta.read_text())
        except ValueError:
            return bytearray(), None
        return bytearray(self._payload.read_bytes()), meta

    def save_payload(self, payload: bytes, meta: Dict[str, object]) -> None:
        self._write(self._payload, bytes(payload))
        self._write(self._meta, json.dumps(meta, sort_keys=True).encode())

    def load_apply(self) -> Tuple[Optional[bytes], Optional[bytes]]:
        """(storage bytes, journal bytes) of an interrupted apply."""
        if not (self._journal.exists() and self._storage.exists()):
            return None, None
        return self._storage.read_bytes(), self._journal.read_bytes()

    def save_apply(self, storage: bytes, journal: bytes) -> None:
        self._write(self._storage, storage)
        self._write(self._journal, journal)

    def clear(self) -> None:
        for path in (self._payload, self._meta, self._journal,
                     self._storage):
            try:
                path.unlink()
            except FileNotFoundError:
                pass


async def pull_async(
    host: str,
    port: int,
    package: str,
    reference: Buffer,
    *,
    want: str = "latest",
    scope: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_attempts: int = 5,
    max_boots: int = 16,
    backoff_base: float = 0.0,
    backoff_factor: float = 2.0,
    backoff_jitter: float = 0.0,
    backoff_cap: float = 5.0,
    chunk_size: int = 4096,
    state: Optional[PullState] = None,
    max_frame_bytes: int = protocol.MAX_PAYLOAD,
    io_timeout: Optional[float] = 30.0,
) -> PullOutcome:
    """One end-to-end pull: request, download (resumable), apply in place.

    ``reference`` is the image bytes the client currently holds; its
    digest is what the daemon encodes against.  See the module docstring
    for the terminal-state contract.
    """
    reference = bytes(reference)
    scope = scope if scope is not None else package
    seed = fault_plan.seed if fault_plan is not None else 0
    outcome = PullOutcome(package=package)
    have = ReferenceIndexCache.digest(reference)

    async def backoff(attempt: int) -> None:
        if backoff_base <= 0.0:
            return
        delay = min(backoff_cap, backoff_base * (backoff_factor ** (attempt - 1)))
        if backoff_jitter > 0.0:
            delay += delay * backoff_jitter * jitter_draw(seed, scope, attempt)
        await _async_sleep(delay)

    # -- resume artifacts from a previous (crashed) pull ----------------
    buf = bytearray()
    meta: Optional[Dict[str, object]] = None
    saved_storage: Optional[bytes] = None
    saved_journal: Optional[bytes] = None
    if state is not None:
        buf, meta = state.load_payload()
        saved_storage, saved_journal = state.load_apply()
        if meta is not None and buf:
            outcome.want = str(meta.get("want", ""))

    # A counter shared by every receive across every attempt: the
    # ``client.recv`` fault site indexes its pure draws by frames
    # received this pull, so a plan like ``client.recv:nth=3`` cuts the
    # connection at exactly the third frame no matter how attempts
    # split them.
    recv_state = {"index": 0}

    async def recv(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
        if fault_plan is not None:
            recv_state["index"] += 1
            fault_plan.check("client.recv", scope=scope,
                             index=recv_state["index"])
        return await read_frame(reader, max_payload=max_frame_bytes)

    def payload_complete() -> bool:
        return (meta is not None and len(buf) == meta["length"]
                and (zlib.crc32(bytes(buf)) & 0xFFFFFFFF) == meta["crc32"])

    async def download_once() -> None:
        nonlocal meta
        reader, writer = await asyncio.open_connection(host, port)
        try:
            offset = len(buf)
            if offset:
                outcome.resumes += 1
                outcome.resumed_bytes += offset
            await write_frame(writer, T_PULL, encode_msg({
                "package": package, "have": have, "want": want,
                "offset": offset,
            }))
            ftype, payload = await recv(reader)
            if ftype == T_RETRY:
                hint = decode_msg(payload)
                raise _Refused(float(hint.get("retry_after", 0.0)))
            if ftype == T_ERROR:
                err = decode_msg(payload)
                raise _ServerError(str(err.get("code", "")),
                                   str(err.get("message", "")))
            if ftype != T_META:
                raise IntegrityError(
                    "expected META, got frame type 0x%02x" % ftype,
                    kind="frame")
            got = decode_msg(payload)
            if meta is not None and (got["want"] != meta["want"]
                                     or got["crc32"] != meta["crc32"]):
                # The target moved (or re-encoded differently) since the
                # partial download: the buffered prefix is for a payload
                # that no longer exists.  Start over.
                del buf[:]
                meta = got
                raise IntegrityError(
                    "server payload changed under a resumed download",
                    kind="frame")
            meta = got
            if got["offset"] != offset:
                raise IntegrityError(
                    "server echoed offset %s, requested %d"
                    % (got["offset"], offset), kind="frame")
            while True:
                ftype, payload = await recv(reader)
                if ftype == T_DATA:
                    buf.extend(payload)
                    if len(buf) > meta["length"]:
                        del buf[:]
                        raise IntegrityError(
                            "server sent more bytes than META declared",
                            kind="frame")
                elif ftype == T_END:
                    break
                elif ftype == T_ERROR:
                    err = decode_msg(payload)
                    raise _ServerError(str(err.get("code", "")),
                                       str(err.get("message", "")))
                else:
                    raise IntegrityError(
                        "unexpected frame type 0x%02x mid-download" % ftype,
                        kind="frame")
            if len(buf) != meta["length"]:
                raise TransmissionError(
                    "stream ended at %d of %d payload bytes"
                    % (len(buf), meta["length"]))
            crc = zlib.crc32(bytes(buf)) & 0xFFFFFFFF
            if crc != meta["crc32"]:
                del buf[:]
                raise IntegrityError(
                    "payload CRC 0x%08x != META's 0x%08x"
                    % (crc, meta["crc32"]),
                    kind="trailer", expected=meta["crc32"], actual=crc)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- download phase -------------------------------------------------
    if not payload_complete():
        # A saved mid-apply image is only valid together with its saved
        # payload; no complete payload means any apply artifacts are
        # stale.
        saved_storage = saved_journal = None
        done = False
        refused_last = False
        for attempt in range(1, max_attempts + 1):
            outcome.attempts = attempt
            try:
                # The per-attempt deadline is what makes a silent peer —
                # a daemon that accepted the TCP connection but will
                # never answer (e.g. it drained with this connection
                # still in the kernel's accept backlog) — a structured,
                # retryable fault instead of a hang.
                if io_timeout is not None:
                    await asyncio.wait_for(download_once(),
                                           timeout=io_timeout)
                else:
                    await download_once()
                done = True
                break
            except _Refused as exc:
                # Backpressure: honor the server's hint, then try again.
                # Only *sustained* refusal — every attempt refused
                # through the last — terminates the pull as "refused".
                refused_last = True
                outcome.retry_after = exc.retry_after
                outcome.faults.append(
                    "Refused: backpressure (retry after %.3gs)"
                    % exc.retry_after)
                if attempt < max_attempts and exc.retry_after > 0.0:
                    await _async_sleep(exc.retry_after)
                await backoff(attempt)
                continue
            except _ServerError as exc:
                if exc.code == ERR_UP_TO_DATE:
                    outcome.status = "applied"
                    outcome.reason = "already up to date"
                    outcome.image = reference
                    outcome.boots = 0
                    if state is not None:
                        state.clear()
                    return outcome
                outcome.status = "failed"
                outcome.reason = "server error %s" % exc
                return outcome
            except (IntegrityError, TransmissionError, OSError,
                    asyncio.TimeoutError) as exc:
                refused_last = False
                outcome.faults.append(describe_failure(exc))
                await backoff(attempt)
        if not done:
            if refused_last:
                outcome.status = "refused"
                outcome.reason = ("refused by backpressure on all %d "
                                  "attempts" % max_attempts)
                return outcome
            outcome.reason = ("exhausted %d download attempts (last: %s)"
                              % (max_attempts,
                                 outcome.faults[-1] if outcome.faults
                                 else "none"))
            return outcome
        if state is not None:
            state.save_payload(bytes(buf), meta)
    outcome.payload_bytes = len(buf)
    outcome.payload_crc32 = zlib.crc32(bytes(buf)) & 0xFFFFFFFF
    outcome.want = str(meta["want"])

    # -- apply phase: journaled, resumable across power cuts ------------
    payload = bytes(buf)
    try:
        if is_sealed(payload):
            payload = unseal(payload)
        script, header = decode_delta(payload)
    except ReproError as exc:
        # The payload CRC matched META, so a re-download returns the
        # same bytes: a payload the container layer rejects is terminal.
        outcome.reason = "payload rejected: %s" % describe_failure(exc)
        return outcome

    journal = Journal()
    storage_seed: bytes = reference
    pristine = True
    if saved_journal is not None and saved_storage is not None:
        try:
            journal = Journal.from_bytes(saved_journal)
            storage_seed = saved_storage
            pristine = False
        except IntegrityError as exc:
            outcome.reason = ("saved journal corrupt: %s"
                              % describe_failure(exc))
            return outcome
    storage = CrashingStorage(storage_seed)

    for boot in range(1, max_boots + 1):
        outcome.boots = boot
        if boot > 1:
            # Reboot: reread the journal from its durable form, which
            # exercises the record CRCs and torn-tail recovery.
            try:
                journal = Journal.from_bytes(journal.to_bytes())
            except IntegrityError as exc:
                outcome.reason = describe_failure(exc)
                return outcome
        if boot == 1 and pristine and not journal.complete:
            # Verify-then-mutate: nothing applied yet, so the reference
            # digest and every command's bounds are checked against
            # pristine storage before the first destructive write.
            # (Later boots — and resumes from saved state — re-enter
            # mid-mutation; JournaledApplier re-verifies applied regions
            # via applied_crc instead, as preflight would now reject the
            # half-transformed image.)
            try:
                preflight_in_place(script, header, storage)
            except (IntegrityError, DeltaRangeError) as exc:
                outcome.reason = ("preflight rejected payload: %s"
                                  % describe_failure(exc))
                return outcome
        fuel = (fault_plan.power_fuel(scope, boot)
                if fault_plan is not None else None)
        storage.fuel = fuel
        try:
            JournaledApplier(script, journal).run(storage,
                                                  chunk_size=chunk_size)
        except PowerFailureError as exc:
            outcome.power_cuts += 1
            outcome.faults.append(describe_failure(exc))
            if state is not None:
                state.save_apply(storage.snapshot(), journal.to_bytes())
            continue
        except IntegrityError as exc:
            # applied_crc re-verification found rot in an applied
            # region: halt with the report rather than install garbage.
            outcome.reason = describe_failure(exc)
            return outcome
        break
    if not journal.complete:
        outcome.reason = ("power failed on every one of %d boots"
                          % outcome.boots)
        return outcome
    if header.has_checksum:
        actual = storage_crc32(storage)
        if actual != header.version_crc32:
            outcome.reason = (
                "reconstructed image checksum 0x%08x != delta's 0x%08x"
                % (actual, header.version_crc32))
            return outcome
    outcome.image = storage.snapshot()
    outcome.status = "applied"
    outcome.reason = ""
    if state is not None:
        state.clear()
    return outcome


def pull(host: str, port: int, package: str, reference: Buffer,
         **kwargs) -> PullOutcome:
    """Synchronous wrapper around :func:`pull_async`."""
    return asyncio.run(pull_async(host, port, package, reference, **kwargs))


__all__ = [
    "PullOutcome",
    "PullState",
    "pull",
    "pull_async",
]
