"""The delta-serving daemon: a long-running encoder behind a socket.

This turns the batch :class:`~repro.pipeline.DeltaPipeline` into the
paper's distribution story made literal: devices connect, say "I hold
the version with digest X, bring me up to date", and receive an IPD2
in-place delta encoded against the exact reference bytes they hold.
The :class:`~repro.pipeline.ReferenceIndexCache` stays warm across
requests, so a fleet of devices on the same stale release costs one
index build, and the payload cache plus request coalescing collapse
duplicate (reference, target) pairs to a single encode.

Robustness invariants the tests hold the daemon to:

* A malformed, truncated, or bit-flipped request frame produces a
  structured ERROR response (or a closed connection) — never an
  unhandled exception in the accept loop and never a wedged handler.
* Load beyond ``max_inflight`` concurrent requests is *refused* with a
  RETRY frame carrying ``retry_after`` — explicit backpressure instead
  of an unbounded queue.
* Every request runs under a deadline; a deadline hit is a structured
  ERROR, and the handler that hit it cleans up after itself.
* Draining (SIGTERM) stops accepting new connections, lets in-flight
  requests finish, then returns — the load generator asserts pulls that
  were mid-flight at drain time still complete byte-exact.

Fault sites (see :mod:`repro.faults`): ``serve.accept`` drops an
accepted connection before the request is read; ``serve.frame`` flips
one bit of an outbound frame on the wire, which the client's frame CRC
must catch.
"""

from __future__ import annotations

import asyncio
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import warnings

from .. import perf
from ..exceptions import IntegrityError, ReproError
from ..faults import FaultPlan, describe_failure
from ..pipeline import (
    DeltaPipeline,
    PipelineConfig,
    PipelineJob,
    ReferenceIndexCache,
)
from ..store import MemoryStore, VersionStore
from . import protocol
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_DRAINING,
    ERR_ENCODE_FAILED,
    ERR_UNKNOWN_PACKAGE,
    ERR_UNKNOWN_VERSION,
    ERR_UP_TO_DATE,
    T_DATA,
    T_END,
    T_ERROR,
    T_META,
    T_PULL,
    T_RETRY,
    decode_msg,
    encode_msg,
    read_frame,
)


class ReleaseStore(MemoryStore):
    """Deprecated alias of :class:`repro.store.MemoryStore`.

    The in-memory release ledger moved to :mod:`repro.store` when the
    :class:`~repro.store.VersionStore` protocol was extracted (any
    store — this ledger, the persistent
    :class:`~repro.store.PackStore` — now plugs into
    :class:`DeltaServer` interchangeably).  This name keeps old
    constructors working; new code should say ``MemoryStore``.
    """

    def __init__(self) -> None:
        warnings.warn(
            "repro.serve.ReleaseStore is deprecated; use "
            "repro.store.MemoryStore (or any repro.store.VersionStore)",
            DeprecationWarning, stacklevel=2)
        super().__init__()


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`DeltaServer` (frozen, shareable)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from ``server.port``.
    port: int = 0
    algorithm: str = "correcting"
    policy: str = "local-min"
    #: Concurrent requests admitted before backpressure refuses with
    #: RETRY.  Refusal, not queueing: an overloaded daemon tells clients
    #: when to come back instead of silently growing a queue.
    max_inflight: int = 64
    #: Seconds one request may take end to end before a structured
    #: deadline error (``None`` disables).
    request_timeout: Optional[float] = 30.0
    #: DATA frame payload size.
    chunk_size: int = 1 << 16
    max_frame_bytes: int = protocol.MAX_PAYLOAD
    #: Byte budget of the encoded-payload LRU (0 disables).
    payload_cache_bytes: int = 64 << 20
    #: Byte budget of the shared reference-index cache.
    cache_bytes: int = 128 << 20
    #: Seconds a refused client is told to wait before retrying.
    retry_after: float = 0.05
    encode_workers: int = 2
    fault_plan: Optional[FaultPlan] = None

    def validate(self) -> None:
        if self.max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.encode_workers <= 0:
            raise ValueError("encode_workers must be positive")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive when set")


class _EncodeFailed(ReproError):
    """An encode request quarantined inside the pipeline."""


class DeltaServer:
    """The asyncio TCP daemon answering digest-addressed pull requests.

    One server owns one warm :class:`DeltaPipeline` (serial executor —
    encodes are dispatched to a small thread pool here, so the event
    loop never blocks on a multi-second index build) and one
    :class:`~repro.store.VersionStore` — the in-memory
    :class:`~repro.store.MemoryStore`, the persistent
    :class:`~repro.store.PackStore`, or anything satisfying the
    protocol.  When the store can answer :meth:`~repro.store.VersionStore.chain`
    (a collapsed delta chain it already holds), that payload is served
    instead of a fresh pipeline encode — ``counters["chain_served"]``
    tracks how often.  Use as::

        server = DeltaServer(store, ServeConfig(port=0))
        await server.start()        # server.port now holds the bound port
        ...
        await server.drain()        # in-flight finish, accepts refused
    """

    def __init__(self, store: VersionStore,
                 config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.store = store
        self.cache = ReferenceIndexCache(self.config.cache_bytes)
        self._pipeline = DeltaPipeline(PipelineConfig(
            algorithm=self.config.algorithm,
            policy=self.config.policy,
            executor="serial",
            cache=self.cache,
            fallback=("raw",),
            retries=1,
        ))
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._encode_pool = None  # lazily built ThreadPoolExecutor
        self._conn_tasks: "set" = set()
        #: (package, have, want) -> in-flight encode task, the
        #: coalescing map: every concurrent request for the same pair
        #: awaits the same task.
        self._inflight_encodes: Dict[Tuple[str, str, str], asyncio.Task] = {}
        #: (package, have, want) -> encoded payload, byte-budgeted LRU.
        self._payload_cache: "OrderedDict[Tuple[str, str, str], bytes]" = \
            OrderedDict()
        self._payload_bytes = 0
        self._active_requests = 0
        self._accepts = 0
        #: Per-scope outbound frame counters, indexing ``serve.frame``
        #: corruption draws deterministically per request scope.
        self._frame_indices: Dict[str, int] = {}
        self._draining = False
        # Created inside the running loop (3.9 binds primitives to the
        # loop current at construction time).
        self._drained: Optional[asyncio.Event] = None
        self.port: Optional[int] = None
        self.host: Optional[str] = None
        #: Always-on counters (perf mirrors them when recording).
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "served": 0,
            "refused": 0,
            "errors": 0,
            "deadline": 0,
            "encodes": 0,
            "chain_served": 0,
            "coalesced": 0,
            "payload_hits": 0,
            "accept_faults": 0,
            "frame_corruptions": 0,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._encode_pool = ThreadPoolExecutor(
            max_workers=self.config.encode_workers,
            thread_name_prefix="repro-serve-encode",
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> None:
        """Begin a graceful drain; safe to call from a signal handler
        thread (hops onto the loop via ``call_soon_threadsafe``)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(self.drain()))

    async def drain(self) -> None:
        """Refuse new accepts, let in-flight requests finish, shut down.

        Idempotent: concurrent callers all wait for the same drain to
        complete.
        """
        if self._drained is None:
            self._drained = asyncio.Event()
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-flight connection handlers run to completion — this is the
        # "SIGTERM drains, in-flight pulls complete" guarantee.
        while self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks),
                                 return_exceptions=True)
        for task in list(self._inflight_encodes.values()):
            if not task.done():
                await asyncio.gather(task, return_exceptions=True)
        if self._encode_pool is not None:
            self._encode_pool.shutdown(wait=True)
            self._encode_pool = None
        self._pipeline.close()
        self._drained.set()
        perf.add("serve.drained")

    async def wait_drained(self) -> None:
        """Block until a drain (requested from anywhere) completes."""
        if self._drained is None:
            self._drained = asyncio.Event()
        await self._drained.wait()

    async def __aenter__(self) -> "DeltaServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.drain()

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._handle_connection(reader, writer)
        except Exception:
            # The accept loop must survive anything a connection throws;
            # per-connection damage is contained here.
            self.counters["errors"] += 1
            perf.add("serve.handler.errors")
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.counters["connections"] += 1
        perf.add("serve.connections")
        plan = self.config.fault_plan
        if plan is not None:
            self._accepts += 1
            try:
                plan.check("serve.accept", scope="serve", index=self._accepts)
            except ReproError:
                # Injected accept fault: the connection drops before the
                # request is read.  The client sees a truncated stream.
                self.counters["accept_faults"] += 1
                perf.add("serve.accept.faults")
                return
        if self._draining:
            await self._send_error(writer, "", ERR_DRAINING,
                                   "server is draining")
            return
        try:
            ftype, payload = await read_frame(
                reader, max_payload=self.config.max_frame_bytes)
        except IntegrityError as exc:
            # Truncated or corrupt request frame: answer structurally if
            # the socket still works, then drop the connection.
            perf.add("serve.frame.errors")
            await self._send_error(writer, "", ERR_BAD_REQUEST,
                                   describe_failure(exc))
            return
        if ftype != T_PULL:
            await self._send_error(writer, "", ERR_BAD_REQUEST,
                                   "expected PULL, got frame type 0x%02x"
                                   % ftype)
            return

        # Explicit backpressure: over the inflight ceiling the request
        # is refused with a structured RETRY — clients back off and
        # come back; nothing queues.
        if self._active_requests >= self.config.max_inflight:
            self.counters["refused"] += 1
            perf.add("serve.refused")
            await self._send_frame(writer, "", T_RETRY, encode_msg(
                {"retry_after": self.config.retry_after}))
            return

        self._active_requests += 1
        try:
            self.counters["requests"] += 1
            perf.add("serve.requests")
            if self.config.request_timeout is not None:
                try:
                    await asyncio.wait_for(
                        self._serve_pull(writer, payload),
                        timeout=self.config.request_timeout)
                except asyncio.TimeoutError:
                    self.counters["deadline"] += 1
                    perf.add("serve.deadline")
                    await self._send_error(writer, "", ERR_DEADLINE,
                                           "request deadline exceeded")
            else:
                await self._serve_pull(writer, payload)
        finally:
            self._active_requests -= 1

    async def _serve_pull(self, writer: asyncio.StreamWriter,
                          payload: bytes) -> None:
        try:
            msg = decode_msg(payload)
        except IntegrityError as exc:
            await self._send_error(writer, "", ERR_BAD_REQUEST,
                                   describe_failure(exc))
            return
        package = msg.get("package")
        have = msg.get("have")
        want = msg.get("want", "latest")
        offset = msg.get("offset", 0)
        if not isinstance(package, str) or not isinstance(have, str) \
                or not isinstance(want, str) or not isinstance(offset, int) \
                or offset < 0:
            await self._send_error(writer, "", ERR_BAD_REQUEST,
                                   "malformed pull request fields")
            return
        scope = "%s|%s" % (package, have[:12])
        if package not in self.store:
            await self._send_error(writer, scope, ERR_UNKNOWN_PACKAGE,
                                   "unknown package %r" % package)
            return
        try:
            reference = self.store.get(package, have)
        except KeyError:
            await self._send_error(
                writer, scope, ERR_UNKNOWN_VERSION,
                "package %r has no version with digest %s" % (package, have))
            return
        if want == "latest":
            want_digest, _target = self.store.latest(package)
        else:
            want_digest = want
            try:
                self.store.get(package, want_digest)
            except KeyError:
                await self._send_error(
                    writer, scope, ERR_UNKNOWN_VERSION,
                    "package %r has no version with digest %s"
                    % (package, want_digest))
                return
        if want_digest == have:
            await self._send_error(writer, scope, ERR_UP_TO_DATE,
                                   "client already holds %s" % want_digest)
            return

        try:
            delta = await self._payload_for(package, have, want_digest)
        except _EncodeFailed as exc:
            await self._send_error(writer, scope, ERR_ENCODE_FAILED, str(exc))
            return
        if offset > len(delta):
            await self._send_error(
                writer, scope, ERR_BAD_REQUEST,
                "resume offset %d beyond payload of %d bytes"
                % (offset, len(delta)))
            return

        meta = {
            "length": len(delta),
            "crc32": zlib.crc32(delta) & 0xFFFFFFFF,
            "want": want_digest,
            "offset": offset,
            "algorithm": self.config.algorithm,
        }
        await self._send_frame(writer, scope, T_META, encode_msg(meta))
        chunk = self.config.chunk_size
        for start in range(offset, len(delta), chunk):
            await self._send_frame(writer, scope, T_DATA,
                                   delta[start:start + chunk])
        await self._send_frame(writer, scope, T_END, encode_msg(
            {"crc32": meta["crc32"]}))
        self.counters["served"] += 1
        perf.add("serve.served")
        perf.add("serve.bytes", len(delta) - offset)

    # -- encoding with coalescing ---------------------------------------

    async def _payload_for(self, package: str, have: str,
                           want: str) -> bytes:
        """The encoded delta for one (package, have, want) pair.

        Cache first; then the coalescing map — concurrent requests for
        the same pair share one encode task (awaited through
        ``shield``, so one waiter hitting its deadline cannot cancel
        the encode out from under the rest); a cold pair dispatches the
        pipeline onto the encode thread pool.
        """
        key = (package, have, want)
        cached = self._payload_cache_get(key)
        if cached is not None:
            self.counters["payload_hits"] += 1
            perf.add("serve.payload.hits")
            return cached
        task = self._inflight_encodes.get(key)
        if task is None:
            task = self._loop.create_task(self._encode(key))
            self._inflight_encodes[key] = task

            def _finished(_t: "asyncio.Task", _key=key) -> None:
                self._inflight_encodes.pop(_key, None)
                if not _t.cancelled():
                    # Consume the exception: if every waiter was
                    # cancelled by its deadline, nobody else retrieves
                    # it and asyncio would log a spurious warning.
                    _t.exception()

            task.add_done_callback(_finished)
        else:
            self.counters["coalesced"] += 1
            perf.add("serve.coalesced")
        return await asyncio.shield(task)

    async def _encode(self, key: Tuple[str, str, str]) -> bytes:
        package, have, want = key
        # A store holding the versions as a delta chain can usually
        # collapse it into one payload far cheaper than a fresh diff;
        # the pipeline is the fallback, not the default.  Runs on the
        # encode pool — composition is CPU work too.
        try:
            chained = await self._loop.run_in_executor(
                self._encode_pool, self.store.chain, package, have, want)
        except ReproError:
            # A damaged chain must not take the serving path down; the
            # pipeline below re-diffs from the materialized images (and
            # surfaces its own error if those are unreadable too).
            chained = None
        if chained is not None:
            self.counters["chain_served"] += 1
            perf.add("serve.chain_served")
            self._payload_cache_put(key, chained)
            return chained
        reference = self.store.get(package, have)
        target = self.store.get(package, want)
        job = PipelineJob(reference=reference, version=target,
                          name="%s:%s->%s" % (package, have[:8], want[:8]))
        self.counters["encodes"] += 1
        perf.add("serve.encodes")
        result = await self._loop.run_in_executor(
            self._encode_pool, self._encode_sync, job)
        if result.report.quarantined:
            raise _EncodeFailed(result.report.failure
                                or "encode quarantined")
        self._payload_cache_put(key, result.payload)
        return result.payload

    def _encode_sync(self, job: PipelineJob):
        return self._pipeline.run([job]).results[0]

    def _payload_cache_get(self, key) -> Optional[bytes]:
        entry = self._payload_cache.get(key)
        if entry is not None:
            self._payload_cache.move_to_end(key)
        return entry

    def _payload_cache_put(self, key, payload: bytes) -> None:
        budget = self.config.payload_cache_bytes
        if budget <= 0 or len(payload) > budget:
            return
        old = self._payload_cache.pop(key, None)
        if old is not None:
            self._payload_bytes -= len(old)
        self._payload_cache[key] = payload
        self._payload_bytes += len(payload)
        while self._payload_bytes > budget:
            _k, evicted = self._payload_cache.popitem(last=False)
            self._payload_bytes -= len(evicted)
            perf.add("serve.payload.evictions")

    # -- frame sending (the serve.frame corruption site) ----------------

    async def _send_frame(self, writer: asyncio.StreamWriter, scope: str,
                          ftype: int, payload: bytes) -> None:
        data = protocol.encode_frame(ftype, payload)
        plan = self.config.fault_plan
        if plan is not None:
            index = self._frame_indices.get(scope, 0) + 1
            self._frame_indices[scope] = index
            spec = plan.corruption("serve.frame", scope, index)
            if spec is not None and data:
                # One bit flipped on the wire; the client's frame CRC
                # must report it as IntegrityError(kind="frame").
                offset = spec.offset if spec.offset is not None else \
                    plan.draw_offset("serve.frame", scope, index, len(data))
                offset = min(offset, len(data) - 1)
                corrupt = bytearray(data)
                corrupt[offset] ^= 0x01
                data = bytes(corrupt)
                self.counters["frame_corruptions"] += 1
                perf.add("serve.frame.corruptions")
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            # The peer went away mid-response (dropped, or gave up).
            # Its pull client will retry and resume; nothing to do here.
            pass

    async def _send_error(self, writer: asyncio.StreamWriter, scope: str,
                          code: str, message: str) -> None:
        self.counters["errors"] += 1
        perf.add("serve.errors")
        await self._send_frame(writer, scope, T_ERROR, encode_msg(
            {"code": code, "message": message}))


__all__ = [
    "DeltaServer",
    "ReleaseStore",
    "ServeConfig",
]
