"""Network serving plane: the delta daemon and its pull client.

The paper's distribution scenario as a long-running service.  A
:class:`DeltaServer` answers "I hold the version with digest X, bring
me up to date" over a CRC-framed TCP protocol (:mod:`repro.serve.protocol`),
encoding IPD2 in-place deltas through a warm
:class:`~repro.pipeline.DeltaPipeline` with request coalescing,
bounded-concurrency backpressure, per-request deadlines, and graceful
drain.  :func:`pull` is the device side: resumable download, full
verify-then-mutate integrity checking, and journaled in-place apply
that rides out power cuts.  :mod:`repro.serve.loadgen` drives fault
storms of concurrent simulated clients and enforces the
zero-silent-failure invariant.
"""

from .client import PullOutcome, PullState, pull, pull_async
from .daemon import DeltaServer, ReleaseStore, ServeConfig
from .loadgen import LoadReport, build_clients, build_corpus, run_load, run_load_async
from .protocol import (
    ERROR_CODES,
    MAX_PAYLOAD,
    decode_msg,
    encode_frame,
    encode_msg,
    parse_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "DeltaServer",
    "ERROR_CODES",
    "LoadReport",
    "MAX_PAYLOAD",
    "PullOutcome",
    "PullState",
    "ReleaseStore",
    "ServeConfig",
    "build_clients",
    "build_corpus",
    "decode_msg",
    "encode_frame",
    "encode_msg",
    "parse_frame",
    "pull",
    "pull_async",
    "read_frame",
    "run_load",
    "run_load_async",
    "write_frame",
]
