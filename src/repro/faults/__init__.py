"""Deterministic fault injection: seeded plans of named fault sites.

See :mod:`repro.faults.plan` for the design.  The short version: a
:class:`FaultPlan` schedules faults at named sites (``diff.worker``,
``convert.evict``, ``cache.lookup``, ``channel.transmit``,
``device.power``, ``storage.bitflip``, ``delta.truncate``,
``delta.bitflip``) with
nth-call/count/probability triggers, and every
decision is a pure function of ``(seed, site, scope, call index)`` so
the same plan reproduces the same faults across runs, threads and
worker processes.
"""

from .plan import (
    ERROR_KINDS,
    KNOWN_SITES,
    MUTATION_KINDS,
    FaultPlan,
    FaultRecord,
    FaultSpec,
    describe_failure,
    jitter_draw,
)

__all__ = [
    "ERROR_KINDS",
    "MUTATION_KINDS",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "KNOWN_SITES",
    "describe_failure",
    "jitter_draw",
]
