"""Deterministic, seedable fault injection for the delta pipeline.

The paper targets devices that cannot afford failure — no scratch
space, lossy links — so the execution layers above the core algorithms
(the batch pipeline, the update sessions) must be *provably* resilient.
Proving resilience needs reproducible adversity: this module provides a
:class:`FaultPlan`, a schedule of named fault *sites* with
count/probability/nth-call triggers whose every decision is a pure
function of ``(seed, site, scope, call index)``.

That purity is the load-bearing design choice.  A decision keyed only
by global call order would drift between the serial, thread and process
executors (and between runs, under scheduler jitter); keying it by the
*scope* (typically the job name) and the per-scope call index makes the
same plan fire identically whether the check runs inline, in a worker
thread, or in a forked process holding a pickled copy of the plan.  The
draw itself comes from an explicit ``random.Random`` seeded from those
four values — never from process-global state.

Sites wired into the library:

``diff.worker``
    In the differencing stage, before the differ runs (one check per
    diff attempt).
``cache.lookup``
    Before the reference-index cache is consulted.  A fault here does
    not fail the attempt: the stage degrades to cache-less differencing
    and records the fault.
``convert.evict``
    In the conversion stage, before in-place post-processing.
``channel.transmit``
    In :func:`~repro.device.updater.run_update`, before each simulated
    transfer (error kind ``transmission`` retries with backoff).
``device.power``
    In :func:`~repro.device.updater.run_journaled_update`, where a
    firing spec's ``fuel`` bounds the bytes written before the
    simulated power cut.
``storage.bitflip``
    In :func:`~repro.device.updater.run_journaled_update`, once per
    boot: a firing spec flips one storage bit at a deterministically
    drawn (or spec-pinned) offset before the boot's apply resumes —
    simulated flash rot the integrity plane must catch, not an
    exception.
``delta.truncate``
    In :func:`~repro.device.updater.run_journaled_update`, once per
    transmission attempt: a firing spec truncates the delivered delta
    at a drawn (or pinned) offset, which the self-verifying ``IPD2``
    trailer must detect at parse time.
``delta.bitflip``
    In :func:`~repro.device.updater.run_journaled_update`, once per
    transmission attempt: a firing spec flips one bit of the delivered
    delta at a drawn (or pinned) offset — the corrupted-download shape
    fleet campaigns inject; the ``IPD2`` trailer/segment CRCs must
    catch it before a byte of the image changes.
``serve.accept``
    In the :mod:`repro.serve` daemon, once per accepted connection: a
    firing spec drops the connection before the request is read — the
    client sees a truncated stream and must retry with backoff.
``serve.frame``
    In the daemon's frame-send path, once per outbound frame per
    request scope: a firing mutation spec flips one bit of the encoded
    frame on the wire, which the client's frame CRC must detect as a
    structured ``IntegrityError`` (kind ``frame``), never a hang.
``client.recv``
    In the :func:`repro.serve.pull` client, once per inbound frame: a
    firing spec simulates the connection dropping mid-download (error
    kind ``transmission``); the client resumes from its verified byte
    offset on the next attempt.

``storage.bitflip``/``delta.truncate``/``delta.bitflip``/``serve.frame``
are *mutation* sites: :meth:`FaultPlan.corruption` returns
the firing spec (with a deterministic :meth:`FaultPlan.draw_offset`)
instead of raising, and the caller corrupts its own state.  Detection —
not avoidance — is what is under test.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..exceptions import (
    InjectedFault,
    ReproError,
    StageTimeoutError,
    TransmissionError,
    VerificationError,
)

#: Site names the library checks.  A plan may name others (callers can
#: run their own checks); these are the ones wired in.
KNOWN_SITES = (
    "diff.worker",
    "cache.lookup",
    "convert.evict",
    "channel.transmit",
    "device.power",
    "storage.bitflip",
    "delta.truncate",
    "delta.bitflip",
    "serve.accept",
    "serve.frame",
    "client.recv",
)

#: Error kinds a spec may raise, by name (kept picklable: classes are
#: module-level).  ``power`` is handled specially by the journaled
#: updater (it sets write fuel instead of raising here).
ERROR_KINDS: Dict[str, Type[Exception]] = {
    "injected": InjectedFault,
    "timeout": StageTimeoutError,
    "transmission": TransmissionError,
    "verify": VerificationError,
}

#: Kinds handled by mutating state rather than raising: ``power`` sets
#: write fuel, ``bitflip``/``truncate`` corrupt storage or a payload in
#: flight (see :meth:`FaultPlan.corruption`).
MUTATION_KINDS = ("power", "bitflip", "truncate")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a site plus a trigger and an error kind.

    Triggers compose with OR: the spec fires at call ``index`` (1-based,
    per ``(site, scope)``) when ``index == nth``, or ``index <= count``,
    or a deterministic Bernoulli draw at ``probability`` succeeds.
    """

    site: str
    #: Fire exactly on this 1-based call index (0 disables).
    nth: int = 0
    #: Fire on each of the first ``count`` calls (0 disables).
    count: int = 0
    #: Fire with this probability per call, drawn deterministically from
    #: ``(seed, site, scope, index)`` (0.0 disables).
    probability: float = 0.0
    #: Key into :data:`ERROR_KINDS` naming the exception raised.
    error: str = "injected"
    message: str = ""
    #: For ``device.power`` specs: bytes the storage may still write in
    #: the boot this spec fires on (``None`` = no power cut).
    fuel: Optional[int] = None
    #: For mutation specs (``bitflip``/``truncate``): the byte offset to
    #: corrupt at.  ``None`` draws one deterministically from
    #: ``(seed, site, scope, index)`` via :meth:`FaultPlan.draw_offset`.
    offset: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("a fault spec needs a site name")
        if self.error not in ERROR_KINDS and self.error not in MUTATION_KINDS:
            raise ValueError(
                "unknown error kind %r; choose from %s"
                % (self.error,
                   ", ".join(sorted(ERROR_KINDS) + sorted(MUTATION_KINDS)))
            )
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        if self.nth < 0 or self.count < 0:
            raise ValueError("nth and count must be non-negative")
        if self.offset is not None and self.offset < 0:
            raise ValueError("offset must be non-negative")
        if not (self.nth or self.count or self.probability):
            raise ValueError(
                "spec for %r never fires: set nth, count or probability"
                % self.site
            )

    def fires(self, seed: int, scope: str, index: int) -> bool:
        """Whether this spec fires at call ``index`` — a pure function."""
        if self.nth and index == self.nth:
            return True
        if self.count and index <= self.count:
            return True
        if self.probability > 0.0:
            draw = random.Random(
                "%d|%s|%s|%d" % (seed, self.site, scope, index)
            ).random()
            if draw < self.probability:
                return True
        return False

    def build_error(self, scope: str, index: int) -> Exception:
        """The exception this spec injects (never raised here)."""
        message = self.message or (
            "fault at %s (kind=%s, scope=%r, call %d)"
            % (self.site, self.error, scope, index)
        )
        kind = ERROR_KINDS.get(self.error, InjectedFault)
        if kind is InjectedFault:
            return InjectedFault(message, site=self.site, index=index)
        return kind(message)


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired (local process only)."""

    site: str
    scope: str
    index: int
    error: str

    def describe(self) -> str:
        return "%s[%s] call %d -> %s" % (self.site, self.scope, self.index,
                                         self.error)


class FaultPlan:
    """A seeded schedule of faults, checked at named sites.

    Call :meth:`check` at a site; it raises the scheduled exception when
    a spec fires, else returns.  Pass ``index`` explicitly wherever the
    caller knows its own attempt number (the pipeline and updater do) —
    that keeps decisions identical across executors and across the
    process boundary, where each worker holds an independent pickled
    copy of the plan.  Without an explicit index the plan falls back to
    an internal per-``(site, scope)`` counter (thread-safe, but local to
    the process holding the plan).

    ``records`` collects the faults that fired *in this process*; the
    pipeline reconstructs cross-process traces from structured results
    instead of relying on it.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.records: List[FaultRecord] = []
        self._counts: Dict[Tuple[str, str], int] = {}
        self._lock = threading.Lock()

    # -- pickling: locks don't cross the process boundary ---------------

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- decisions ------------------------------------------------------

    def _next_index(self, site: str, scope: str) -> int:
        with self._lock:
            key = (site, scope)
            self._counts[key] = self._counts.get(key, 0) + 1
            return self._counts[key]

    def firing_spec(self, site: str, scope: str, index: int) -> Optional[FaultSpec]:
        """First spec firing at ``(site, scope, index)``, else ``None``."""
        for spec in self.specs:
            if spec.site == site and spec.fires(self.seed, scope, index):
                return spec
        return None

    def check(self, site: str, scope: str = "", index: Optional[int] = None) -> int:
        """Evaluate ``site``; raise the scheduled error if a spec fires.

        Returns the call index used, so callers relying on the internal
        counter can log it.
        """
        if index is None:
            index = self._next_index(site, scope)
        spec = self.firing_spec(site, scope, index)
        if spec is not None:
            with self._lock:
                self.records.append(
                    FaultRecord(site, scope, index, spec.error)
                )
            raise spec.build_error(scope, index)
        return index

    def corruption(self, site: str, scope: str, index: int) -> Optional[FaultSpec]:
        """Firing mutation spec at a corruption site, recorded, else ``None``.

        Unlike :meth:`check` this never raises: mutation sites
        (``storage.bitflip``, ``delta.truncate``) model silent
        corruption, so the caller applies the damage itself — typically
        at the spec's ``offset``, or one drawn via :meth:`draw_offset`
        — and the system under test must *detect* it.
        """
        spec = self.firing_spec(site, scope, index)
        if spec is None:
            return None
        with self._lock:
            self.records.append(FaultRecord(site, scope, index, spec.error))
        return spec

    def draw_offset(self, site: str, scope: str, index: int, size: int) -> int:
        """Deterministic corruption offset in ``[0, size)``.

        A pure function of ``(seed, site, scope, index)`` — the same
        plan corrupts the same byte in every run and every executor,
        which is what makes corruption tests replayable.
        """
        if size <= 0:
            return 0
        return random.Random(
            "%d|%s|%s|%d|offset" % (self.seed, site, scope, index)
        ).randrange(size)

    def power_fuel(self, scope: str, boot: int) -> Optional[int]:
        """Write budget for boot ``boot`` of a ``device.power`` schedule.

        Returns the firing spec's ``fuel`` (``None`` = power stays on).
        A firing spec with no fuel set means "die before the first
        write" (fuel 0).
        """
        spec = self.firing_spec("device.power", scope, boot)
        if spec is None:
            return None
        with self._lock:
            self.records.append(
                FaultRecord("device.power", scope, boot, "power")
            )
        return spec.fuel if spec.fuel is not None else 0

    # -- bookkeeping ----------------------------------------------------

    def reset(self) -> None:
        """Drop counters and records; the schedule itself is immutable."""
        with self._lock:
            self._counts.clear()
            self.records.clear()

    def describe(self) -> List[str]:
        """Human-readable schedule, one line per spec."""
        lines = []
        for spec in self.specs:
            triggers = []
            if spec.nth:
                triggers.append("nth=%d" % spec.nth)
            if spec.count:
                triggers.append("count=%d" % spec.count)
            if spec.probability:
                triggers.append("p=%g" % spec.probability)
            lines.append("%s: %s -> %s" % (spec.site, ", ".join(triggers),
                                           spec.error))
        return lines

    def __len__(self) -> int:
        return len(self.specs)

    # -- parsing (the CLI's --fault-plan) -------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``site:key=value[:key=value...]`` specs into a plan.

        Specs are separated by ``;`` or ``,``.  Keys: ``nth``, ``count``,
        ``p``/``probability``, ``error``, ``fuel``, ``message``.
        Example::

            diff.worker:count=2:error=timeout;channel.transmit:p=0.5
        """
        specs = []
        for chunk in text.replace(";", ",").split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            site = parts[0].strip()
            if site not in KNOWN_SITES:
                # The constructor allows custom sites (callers may run
                # their own checks); parsed plans only ever reach the
                # wired-in sites, so a typo here would silently never fire.
                raise ValueError(
                    "unknown fault site %r in %r; choose from %s"
                    % (site, chunk, ", ".join(KNOWN_SITES))
                )
            kwargs: Dict[str, object] = {}
            for part in parts[1:]:
                if "=" not in part:
                    raise ValueError(
                        "bad fault spec field %r in %r (want key=value)"
                        % (part, chunk)
                    )
                key, _, value = part.partition("=")
                key = key.strip()
                value = value.strip()
                if key in ("nth", "count", "fuel", "offset"):
                    kwargs[key] = int(value)
                elif key in ("p", "probability"):
                    kwargs["probability"] = float(value)
                elif key == "error":
                    kwargs["error"] = value
                elif key == "message":
                    kwargs["message"] = value
                else:
                    raise ValueError(
                        "unknown fault spec key %r in %r" % (key, chunk)
                    )
            if site == "device.power" and "error" not in kwargs:
                kwargs["error"] = "power"
            if site in ("channel.transmit", "serve.accept", "client.recv") \
                    and "error" not in kwargs:
                kwargs["error"] = "transmission"
            if site in ("storage.bitflip", "delta.bitflip", "serve.frame") \
                    and "error" not in kwargs:
                kwargs["error"] = "bitflip"
            if site == "delta.truncate" and "error" not in kwargs:
                kwargs["error"] = "truncate"
            try:
                specs.append(FaultSpec(site=site, **kwargs))
            except (TypeError, ValueError) as exc:
                raise ValueError("bad fault spec %r: %s" % (chunk, exc)) from None
        if not specs:
            raise ValueError("fault plan %r contains no specs" % text)
        return cls(specs, seed=seed)


def jitter_draw(seed: int, scope: str, attempt: int) -> float:
    """Deterministic uniform ``[0, 1)`` draw for retry-backoff jitter.

    A pure function of ``(seed, scope, attempt)``, exactly like fault
    decisions: the pipeline and the updater both derive their backoff
    jitter through here (seeded from the job's fault plan), so retry
    timing — and with it every trace — is byte-reproducible across the
    serial, thread and process executors instead of drifting with
    whichever worker happened to consume a process-global RNG first.
    """
    return random.Random(
        "%d|backoff|%s|%d" % (seed, scope, attempt)
    ).random()


def describe_failure(exc: BaseException) -> str:
    """Canonical one-line rendering used by traces everywhere.

    Keeping this in one place is what makes failure traces byte-identical
    across executors: the serial path, the thread pool and the process
    pool all format a caught exception through here.
    """
    return "%s: %s" % (type(exc).__name__, exc)


__all__ = [
    "ERROR_KINDS",
    "MUTATION_KINDS",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "KNOWN_SITES",
    "describe_failure",
    "jitter_draw",
]
