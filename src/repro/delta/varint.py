"""Unsigned variable-length integer coding (LEB128).

The delta wire formats encode offsets and lengths as LEB128 varints:
seven payload bits per byte, least-significant group first, high bit set
on every byte except the last.  Small values — the common case for
lengths and near offsets — take one byte; any 64-bit offset fits in ten.

:func:`varint_size` is also the library's default model for ``|f|``, the
encoded size of a copy command's *from* field, which prices copy-to-add
evictions in the cost model of section 5.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..exceptions import DeltaFormatError

_MAX_VARINT_BYTES = 10


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers, got %d" % value)
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: Union[bytes, bytearray, memoryview], offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.  Raises
    :class:`~repro.exceptions.DeltaFormatError` on truncation or on a
    varint longer than ten bytes (an over-long or corrupt encoding).
    """
    value = 0
    shift = 0
    pos = offset
    for _ in range(_MAX_VARINT_BYTES):
        if pos >= len(data):
            raise DeltaFormatError("truncated varint at byte %d" % offset)
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
    raise DeltaFormatError("varint at byte %d exceeds %d bytes" % (offset, _MAX_VARINT_BYTES))


def varint_size(value: int) -> int:
    """Number of bytes :func:`encode_varint` uses for ``value``."""
    if value < 0:
        raise ValueError("varints encode non-negative integers, got %d" % value)
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size
