"""Correcting one-and-a-half-pass differencing (Ajtai et al., reference [1]).

The paper's experimental deltas were produced by the authors' then-
unpublished "compactly encoding arbitrary inputs" algorithm.  Its
published form is a *one-and-a-half-pass* scheme:

* **half pass** — hash every seed of the reference file into a fixed-size
  first-come-first-served table (constant space, like the one-pass
  algorithm, unlike the greedy algorithm's exhaustive index);
* **full pass** — scan the version file once; at each offset probe the
  table, verify the candidate against the actual bytes, and *correct*
  earlier decisions by extending a verified match **backwards** over
  bytes provisionally classed as literals, as well as forwards.

Backward correction is what distinguishes this algorithm: a seed match in
the middle of a long common string still recovers the whole string, so
compression approaches greedy quality while memory stays constant.

Both passes ride the fast paths when available: the half pass is a bulk
FCFS construction (:meth:`SeedTable.from_fingerprints`), and the full
pass batch-probes the table with *every* version fingerprint in one
vectorized pass (:func:`repro.delta._kernels.probe_table`) — the table
stores the full fingerprint per occupied slot, and byte equality
implies fingerprint equality, so the scan loop only visits the
positions whose probe survives the fingerprint compare, byte-verifies
those, and jumps between them.  Output scripts are bit-identical to the
scalar rolling scan (``REPRO_NO_FAST=1``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Union

from .. import perf
from ..core.commands import DeltaScript
from . import _kernels as _k
from .builder import ScriptBuilder
from .rolling import (
    DEFAULT_SEED_LENGTH,
    SeedTable,
    _seed_fingerprint_array,
    fast_paths_enabled,
    match_length,
    match_length_backward,
    seed_fingerprints,
)

Buffer = Union[bytes, bytearray, memoryview]


def correcting_delta(
    reference: Buffer,
    version: Buffer,
    *,
    seed_length: int = DEFAULT_SEED_LENGTH,
    table_size: int = 1 << 16,
    table=None,
    cache=None,
) -> DeltaScript:
    """Compute a delta script for ``version`` against ``reference``.

    Constant space: one fixed-size seed table over the reference.  Time
    linear in the inputs plus the lengths of verified matches.

    The half-pass table is a pure function of the reference, so when one
    reference serves many versions it can be built once: pass ``table``
    (a prebuilt :class:`~repro.delta.rolling.SeedTable` over
    ``reference`` with matching ``table_size``) or ``cache`` (a
    :class:`repro.pipeline.cache.ReferenceIndexCache`, consulted by
    content digest).  The full pass only reads the table, so the shared
    copy is never mutated and the output script is byte-identical to
    the uncached call.
    """
    if seed_length <= 0:
        raise ValueError("seed_length must be positive, got %d" % seed_length)
    if table_size <= 0:
        raise ValueError("table_size must be positive, got %d" % table_size)
    if table is not None and table.size != table_size:
        raise ValueError(
            "prebuilt table has size %d, call requested %d"
            % (table.size, table_size)
        )
    recorder = perf.active()
    started = perf_counter() if recorder is not None else 0.0
    builder = ScriptBuilder(version)
    len_r, len_v = len(reference), len(version)
    if len_v == 0 or len_r < seed_length or len_v < seed_length:
        script = builder.finish()
        if recorder is not None:
            _report(recorder, started, reference, version, 0, 0, 0)
        return script

    if table is not None:
        pass
    elif cache is not None:
        table = cache.seed_table(reference, seed_length=seed_length,
                                 table_size=table_size)
    else:
        # Half pass: fingerprint every reference seed into the FCFS table.
        with perf.timer("table.seed.build"):
            table = SeedTable.from_fingerprints(
                seed_fingerprints(reference, seed_length), table_size
            )

    # Full pass: scan the version, correcting backwards on each match.
    # The table is read-only here (it may be a cache-shared instance);
    # its slot list is bound locally for probe speed.
    emit_copy = builder.emit_copy
    pos = 0
    last_v = len_v - seed_length
    copies = 0
    copy_bytes = 0
    corrected_bytes = 0
    probe = table.probe_arrays() if fast_paths_enabled() and _k.HAVE_NUMPY \
        else None
    if probe is not None:
        # Fast scan: one vectorized probe of every version position at
        # once.  A position survives only when its slot is occupied by an
        # *equal* fingerprint, and byte equality implies fingerprint
        # equality, so the surviving positions are a superset of exactly
        # the positions the scalar scan byte-verifies successfully —
        # visiting only them (and re-verifying bytes, since equal
        # fingerprints can still collide) emits the identical script.
        fps_v = _seed_fingerprint_array(version, seed_length)
        hits, cands = _k.probe_table(probe[0], probe[1], fps_v)
        for p, cand in zip(hits, cands):
            if p < pos:
                continue  # inside an already-emitted copy
            if reference[cand:cand + seed_length] == \
                    version[p:p + seed_length]:
                forward = seed_length + match_length(
                    reference, cand + seed_length, version, p + seed_length
                )
                back = match_length_backward(
                    reference, cand, version, p,
                    limit=min(cand, p - builder.add_start),
                )
                emit_copy(cand - back, p - back, back + forward)
                copies += 1
                copy_bytes += back + forward
                corrected_bytes += back
                pos = p + forward
    else:
        fps_v = seed_fingerprints(version, seed_length)
        slots = table._slots
        size = table.size
        while pos <= last_v:
            cand = slots[fps_v[pos] % size]
            if cand >= 0 and \
                    reference[cand:cand + seed_length] == \
                    version[pos:pos + seed_length]:
                forward = seed_length + match_length(
                    reference, cand + seed_length, version, pos + seed_length
                )
                # Correction: grow the match left over pending literal
                # bytes, limited by the committed boundary and the
                # reference start.
                back = match_length_backward(
                    reference, cand, version, pos,
                    limit=min(cand, pos - builder.add_start),
                )
                emit_copy(cand - back, pos - back, back + forward)
                copies += 1
                copy_bytes += back + forward
                corrected_bytes += back
                pos += forward
                continue
            pos += 1
    script = builder.finish()
    if recorder is not None:
        _report(recorder, started, reference, version,
                copies, copy_bytes, corrected_bytes)
    return script


def _report(recorder, started, reference, version,
            copies, copy_bytes, corrected_bytes) -> None:
    recorder.merge({
        "diff.correcting.calls": 1,
        "diff.correcting.seconds": perf_counter() - started,
        "diff.correcting.reference_bytes": len(reference),
        "diff.correcting.version_bytes": len(version),
        "diff.correcting.copies": copies,
        "diff.correcting.copy_bytes": copy_bytes,
        "diff.correcting.corrected_bytes": corrected_bytes,
    })
