"""Correcting one-and-a-half-pass differencing (Ajtai et al., reference [1]).

The paper's experimental deltas were produced by the authors' then-
unpublished "compactly encoding arbitrary inputs" algorithm.  Its
published form is a *one-and-a-half-pass* scheme:

* **half pass** — hash every seed of the reference file into a fixed-size
  first-come-first-served table (constant space, like the one-pass
  algorithm, unlike the greedy algorithm's exhaustive index);
* **full pass** — scan the version file once; at each offset probe the
  table, verify the candidate against the actual bytes, and *correct*
  earlier decisions by extending a verified match **backwards** over
  bytes provisionally classed as literals, as well as forwards.

Backward correction is what distinguishes this algorithm: a seed match in
the middle of a long common string still recovers the whole string, so
compression approaches greedy quality while memory stays constant.
"""

from __future__ import annotations

from typing import Union

from ..core.commands import DeltaScript
from .builder import ScriptBuilder
from .rolling import (
    DEFAULT_SEED_LENGTH,
    RollingHash,
    SeedTable,
    iter_seed_hashes,
    match_length,
    match_length_backward,
)

Buffer = Union[bytes, bytearray, memoryview]


def correcting_delta(
    reference: Buffer,
    version: Buffer,
    *,
    seed_length: int = DEFAULT_SEED_LENGTH,
    table_size: int = 1 << 16,
    cache=None,
) -> DeltaScript:
    """Compute a delta script for ``version`` against ``reference``.

    Constant space: one fixed-size seed table over the reference.  Time
    linear in the inputs plus the lengths of verified matches.

    The half-pass table is a pure function of the reference, so when one
    reference serves many versions it can be built once: pass ``cache``
    (a :class:`repro.pipeline.cache.ReferenceIndexCache`) and the table
    is fetched by content digest instead of rebuilt.  The full pass only
    reads the table, so the shared copy is never mutated and the output
    script is byte-identical to the uncached call.
    """
    if seed_length <= 0:
        raise ValueError("seed_length must be positive, got %d" % seed_length)
    builder = ScriptBuilder(version)
    len_r, len_v = len(reference), len(version)
    if len_v == 0:
        return builder.finish()
    if len_r < seed_length or len_v < seed_length:
        return builder.finish()

    if cache is not None:
        table = cache.seed_table(reference, seed_length=seed_length,
                                 table_size=table_size)
    else:
        # Half pass: fingerprint every reference seed into the FCFS table.
        table = SeedTable(table_size)
        for offset, fingerprint in iter_seed_hashes(reference, seed_length):
            table.insert(fingerprint, offset)

    # Full pass: scan the version, correcting backwards on each match.
    roller = RollingHash(seed_length)
    pos = 0
    fingerprint = roller.reset(version, 0)
    while pos + seed_length <= len_v:
        cand = table.lookup(fingerprint)
        if cand is not None and \
                reference[cand:cand + seed_length] == version[pos:pos + seed_length]:
            forward = seed_length + match_length(
                reference, cand + seed_length, version, pos + seed_length
            )
            # Correction: grow the match left over pending literal bytes,
            # limited by the committed boundary and the reference start.
            back = match_length_backward(
                reference, cand, version, pos,
                limit=min(cand, pos - builder.add_start),
            )
            builder.emit_copy(cand - back, pos - back, back + forward)
            pos += forward
            if pos + seed_length <= len_v:
                fingerprint = roller.reset(version, pos)
            continue
        if pos + seed_length < len_v:
            fingerprint = roller.update(version[pos], version[pos + seed_length])
        pos += 1
    return builder.finish()
