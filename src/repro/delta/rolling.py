"""Karp-Rabin rolling hashes and seed tables for the differencing algorithms.

The differencing substrate ([5], [1] in the paper) finds matching strings
by hashing fixed-length *seeds* (substrings of ``seed_length`` bytes).
:class:`RollingHash` maintains a Karp-Rabin fingerprint that slides one
byte at a time in O(1); :class:`SeedTable` is the fixed-size,
first-come-first-served hash table the linear-time, constant-space
algorithms use, and :class:`FullSeedIndex` is the exhaustive
position-list index the greedy algorithm uses.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

Buffer = Union[bytes, bytearray, memoryview]

#: Default seed (minimum match) length, the paper's algorithms use ~12-16.
DEFAULT_SEED_LENGTH = 16

_BASE = 257
_MODULUS = (1 << 61) - 1  # Mersenne prime keeps the arithmetic fast and uniform.


class RollingHash:
    """Karp-Rabin fingerprint over a sliding window of fixed length.

    ``update(out_byte, in_byte)`` slides the window one byte right in
    constant time.  The fingerprint is a value in ``[0, 2^61 - 1)``; use
    :meth:`bucket` to reduce it to a table index.
    """

    def __init__(self, window: int = DEFAULT_SEED_LENGTH):
        if window <= 0:
            raise ValueError("window must be positive, got %d" % window)
        self.window = window
        self._value = 0
        # _BASE ** (window - 1) mod _MODULUS, the weight of the byte
        # leaving the window.
        self._out_weight = pow(_BASE, window - 1, _MODULUS)

    @property
    def value(self) -> int:
        """Current fingerprint of the window contents."""
        return self._value

    def reset(self, data: Buffer, start: int = 0) -> int:
        """Fill the window from ``data[start:start+window]`` and return the hash."""
        value = 0
        for i in range(start, start + self.window):
            value = (value * _BASE + data[i]) % _MODULUS
        self._value = value
        return value

    def update(self, out_byte: int, in_byte: int) -> int:
        """Slide the window: remove ``out_byte`` from the left, append ``in_byte``."""
        value = (self._value - out_byte * self._out_weight) % _MODULUS
        self._value = (value * _BASE + in_byte) % _MODULUS
        return self._value

    def bucket(self, table_size: int) -> int:
        """Reduce the fingerprint to a bucket index for a table of ``table_size``."""
        return self._value % table_size


def hash_seed(data: Buffer, start: int, length: int) -> int:
    """One-shot Karp-Rabin hash of ``data[start:start+length]``."""
    value = 0
    for i in range(start, start + length):
        value = (value * _BASE + data[i]) % _MODULUS
    return value


def iter_seed_hashes(data: Buffer, seed_length: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(offset, fingerprint)`` for every seed of ``data``, rolling in O(1)."""
    n = len(data)
    if n < seed_length:
        return
    roller = RollingHash(seed_length)
    value = roller.reset(data, 0)
    yield 0, value
    for offset in range(1, n - seed_length + 1):
        value = roller.update(data[offset - 1], data[offset + seed_length - 1])
        yield offset, value


def seed_fingerprints(data: Buffer, seed_length: int = DEFAULT_SEED_LENGTH) -> List[int]:
    """Materialized rolling fingerprints for every seed offset of ``data``.

    ``result[i]`` is the Karp-Rabin fingerprint of
    ``data[i:i+seed_length]`` — what :meth:`RollingHash.reset` at ``i``
    (or the equivalent chain of updates) returns.  Precomputing the list
    lets a scan that repeatedly re-seeds over the same buffer (and a
    cache serving many scans of one reference, see
    :class:`repro.pipeline.cache.ReferenceIndexCache`) skip the per-byte
    rolling arithmetic entirely.
    """
    return [fp for _offset, fp in iter_seed_hashes(data, seed_length)]


class SeedTable:
    """Fixed-size seed table with first-come-first-served insertion.

    The constant-space algorithms ([5], [1]) bound memory by hashing seed
    fingerprints into a table of ``size`` slots, each remembering the
    offset of the *first* seed that landed there; later colliding seeds
    are dropped.  Lookups must verify candidate matches against the
    actual bytes, since distinct seeds can share a slot.
    """

    __slots__ = ("size", "_slots", "occupied")

    def __init__(self, size: int = 1 << 16):
        if size <= 0:
            raise ValueError("table size must be positive, got %d" % size)
        self.size = size
        self._slots: List[int] = [-1] * size
        #: Number of filled slots, exposed for load-factor diagnostics.
        self.occupied = 0

    def insert(self, fingerprint: int, offset: int) -> bool:
        """Record ``offset`` for ``fingerprint`` unless its slot is taken.

        Returns True when the offset was stored.
        """
        slot = fingerprint % self.size
        if self._slots[slot] < 0:
            self._slots[slot] = offset
            self.occupied += 1
            return True
        return False

    def lookup(self, fingerprint: int) -> Optional[int]:
        """The stored offset for ``fingerprint``'s slot, or ``None``."""
        offset = self._slots[fingerprint % self.size]
        return offset if offset >= 0 else None

    def clear(self) -> None:
        """Empty the table for reuse."""
        self._slots = [-1] * self.size
        self.occupied = 0


class FullSeedIndex:
    """Exhaustive seed index: every seed offset of a buffer, by fingerprint.

    The greedy algorithm's structure: space linear in the reference, but
    it can enumerate *all* candidate match positions for a fingerprint,
    letting the caller pick the longest extension.  ``max_positions``
    caps pathological buckets (e.g. runs of zero bytes) so lookups stay
    bounded.
    """

    def __init__(self, data: Buffer, seed_length: int = DEFAULT_SEED_LENGTH,
                 max_positions: int = 64):
        self.seed_length = seed_length
        self.data = data
        self._index: Dict[int, List[int]] = {}
        for offset, fingerprint in iter_seed_hashes(data, seed_length):
            bucket = self._index.setdefault(fingerprint, [])
            if len(bucket) < max_positions:
                bucket.append(offset)

    def candidates(self, fingerprint: int) -> List[int]:
        """All stored reference offsets whose seed has this fingerprint."""
        return self._index.get(fingerprint, [])

    def __len__(self) -> int:
        return sum(len(v) for v in self._index.values())


def match_length(a: Buffer, a_start: int, b: Buffer, b_start: int,
                 limit: Optional[int] = None) -> int:
    """Length of the longest common prefix of ``a[a_start:]`` and ``b[b_start:]``.

    Compares in chunks, so long matches cost far fewer Python-level
    operations than a byte loop.
    """
    max_len = min(len(a) - a_start, len(b) - b_start)
    if limit is not None:
        max_len = min(max_len, limit)
    matched = 0
    chunk = 512
    while matched < max_len:
        step = min(chunk, max_len - matched)
        if a[a_start + matched:a_start + matched + step] == \
                b[b_start + matched:b_start + matched + step]:
            matched += step
            continue
        # Mismatch inside this chunk: locate it bytewise.
        for i in range(step):
            if a[a_start + matched + i] != b[b_start + matched + i]:
                return matched + i
        matched += step
    return matched


def match_length_backward(a: Buffer, a_end: int, b: Buffer, b_end: int,
                          limit: Optional[int] = None) -> int:
    """Length of the longest common suffix of ``a[:a_end]`` and ``b[:b_end]``.

    ``a_end``/``b_end`` are exclusive.  Used by the correcting algorithm
    to extend matches backwards over bytes previously classed as added.
    """
    max_len = min(a_end, b_end)
    if limit is not None:
        max_len = min(max_len, limit)
    matched = 0
    while matched < max_len and a[a_end - matched - 1] == b[b_end - matched - 1]:
        matched += 1
    return matched
