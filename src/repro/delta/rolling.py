"""Karp-Rabin rolling hashes and seed tables for the differencing algorithms.

The differencing substrate ([5], [1] in the paper) finds matching strings
by hashing fixed-length *seeds* (substrings of ``seed_length`` bytes).
:class:`RollingHash` maintains a Karp-Rabin fingerprint that slides one
byte at a time in O(1); :class:`SeedTable` is the fixed-size,
first-come-first-served hash table the linear-time, constant-space
algorithms use, and :class:`FullSeedIndex` is the exhaustive
position-list index the greedy algorithm uses.

**Fast paths.**  Fingerprinting a buffer one byte per Python iteration is
the bottleneck of every differencing run, so this module carries two
implementations of each primitive:

* the scalar *reference* implementations (``RollingHash``,
  :func:`iter_seed_hashes`, :func:`seed_fingerprints_reference`,
  :func:`match_length_reference`, ...) — simple, dependency-free, and
  the correctness oracle;
* vectorized fast paths (:mod:`repro.delta._kernels`, numpy) that
  compute *bit-identical* fingerprints in whole-buffer passes, plus a
  block-compare :func:`match_length` that locates the first mismatch by
  doubling windows and binary search instead of a per-byte loop.

Fast paths switch on automatically when numpy is importable; call
:func:`use_fast_paths` (or set ``REPRO_NO_FAST=1`` in the environment)
to pin the reference paths — the delta scripts produced are identical
either way, which ``tests/test_vectorized_oracle.py`` enforces.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .. import perf
from . import _kernels as _k

Buffer = Union[bytes, bytearray, memoryview]

#: Default seed (minimum match) length, the paper's algorithms use ~12-16.
DEFAULT_SEED_LENGTH = 16

_BASE = 257
_MODULUS = (1 << 61) - 1  # Mersenne prime keeps the arithmetic fast and uniform.

#: Module switch for the fast paths (on unless REPRO_NO_FAST is set).
#: Flip at runtime with :func:`use_fast_paths`.  The block-compare
#: match extension is pure Python and honors the switch alone; the
#: vectorized fingerprint kernels additionally require numpy and fall
#: back to the scalar reference paths without it.
_FAST = not os.environ.get("REPRO_NO_FAST")


def use_fast_paths(enabled: bool) -> bool:
    """Enable/disable the fast paths; returns the previous state.

    The reference and fast paths produce bit-identical fingerprints,
    match lengths, and delta scripts; this switch exists for oracle
    testing and for benchmarking the scalar pre-optimization baseline
    (``ipdelta bench --no-fast``).
    """
    global _FAST
    previous = _FAST
    _FAST = bool(enabled)
    return previous


def fast_paths_enabled() -> bool:
    """True when the vectorized fast paths are active."""
    return _FAST


class RollingHash:
    """Karp-Rabin fingerprint over a sliding window of fixed length.

    ``update(out_byte, in_byte)`` slides the window one byte right in
    constant time.  The fingerprint is a value in ``[0, 2^61 - 1)``; use
    :meth:`bucket` to reduce it to a table index.
    """

    def __init__(self, window: int = DEFAULT_SEED_LENGTH):
        if window <= 0:
            raise ValueError("window must be positive, got %d" % window)
        self.window = window
        self._value = 0
        # _BASE ** (window - 1) mod _MODULUS, the weight of the byte
        # leaving the window.
        self._out_weight = pow(_BASE, window - 1, _MODULUS)

    @property
    def value(self) -> int:
        """Current fingerprint of the window contents."""
        return self._value

    def reset(self, data: Buffer, start: int = 0) -> int:
        """Fill the window from ``data[start:start+window]`` and return the hash."""
        value = 0
        for i in range(start, start + self.window):
            value = (value * _BASE + data[i]) % _MODULUS
        self._value = value
        return value

    def update(self, out_byte: int, in_byte: int) -> int:
        """Slide the window: remove ``out_byte`` from the left, append ``in_byte``."""
        value = (self._value - out_byte * self._out_weight) % _MODULUS
        self._value = (value * _BASE + in_byte) % _MODULUS
        return self._value

    def bucket(self, table_size: int) -> int:
        """Reduce the fingerprint to a bucket index for a table of ``table_size``."""
        return self._value % table_size


def hash_seed(data: Buffer, start: int, length: int) -> int:
    """One-shot Karp-Rabin hash of ``data[start:start+length]``."""
    value = 0
    for i in range(start, start + length):
        value = (value * _BASE + data[i]) % _MODULUS
    return value


def iter_seed_hashes(data: Buffer, seed_length: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(offset, fingerprint)`` for every seed of ``data``, rolling in O(1).

    The scalar reference scan; :func:`seed_fingerprints` is the
    vectorized equivalent and the one the differs consume.
    """
    n = len(data)
    if n < seed_length:
        return
    roller = RollingHash(seed_length)
    value = roller.reset(data, 0)
    yield 0, value
    for offset in range(1, n - seed_length + 1):
        value = roller.update(data[offset - 1], data[offset + seed_length - 1])
        yield offset, value


def seed_fingerprints_reference(data: Buffer,
                                seed_length: int = DEFAULT_SEED_LENGTH) -> List[int]:
    """Scalar oracle for :func:`seed_fingerprints`: one rolling pass."""
    return [fp for _offset, fp in iter_seed_hashes(data, seed_length)]


def seed_fingerprints(data: Buffer, seed_length: int = DEFAULT_SEED_LENGTH) -> List[int]:
    """Materialized rolling fingerprints for every seed offset of ``data``.

    ``result[i]`` is the Karp-Rabin fingerprint of
    ``data[i:i+seed_length]`` — what :meth:`RollingHash.reset` at ``i``
    (or the equivalent chain of updates) returns.  Precomputing the list
    lets a scan that repeatedly re-seeds over the same buffer (and a
    cache serving many scans of one reference, see
    :class:`repro.pipeline.cache.ReferenceIndexCache`) skip the per-byte
    rolling arithmetic entirely; under the fast paths the whole list is
    computed in a handful of vectorized passes.
    """
    if _FAST and _k.HAVE_NUMPY:
        fps = _k.seed_fingerprints(data, seed_length).tolist()
        perf.add("fingerprint.fast_calls")
        perf.add("fingerprint.bytes", len(data))
        return fps
    perf.add("fingerprint.reference_calls")
    perf.add("fingerprint.bytes", len(data))
    return seed_fingerprints_reference(data, seed_length)


def _seed_fingerprint_array(data: Buffer, seed_length: int):
    """Fingerprints as a uint64 array (fast) or list (reference).

    Internal: the greedy scan keeps the array form to resolve all
    candidate lookups in one vectorized pass.
    """
    if _FAST and _k.HAVE_NUMPY:
        perf.add("fingerprint.fast_calls")
        perf.add("fingerprint.bytes", len(data))
        return _k.seed_fingerprints(data, seed_length)
    perf.add("fingerprint.reference_calls")
    perf.add("fingerprint.bytes", len(data))
    return seed_fingerprints_reference(data, seed_length)


class SeedTable:
    """Fixed-size seed table with first-come-first-served insertion.

    The constant-space algorithms ([5], [1]) bound memory by hashing seed
    fingerprints into a table of ``size`` slots, each remembering the
    offset of the *first* seed that landed there; later colliding seeds
    are dropped.  Lookups must verify candidate matches against the
    actual bytes, since distinct seeds can share a slot.

    Storage is one flat list of slot offsets (``-1`` = empty) — the scan
    loops in the differs bind it locally and index it directly, which is
    the fastest scalar access CPython offers.  Tables built whole-buffer
    under the fast paths additionally carry *probe arrays* (the slot
    offsets as an int64 array plus the full fingerprint stored in each
    slot), which let the correcting scan batch-probe every version
    position in one vectorized pass; incremental mutation drops them.
    """

    __slots__ = ("size", "_slots", "occupied", "_slots_array", "_slot_fps")

    def __init__(self, size: int = 1 << 16):
        if size <= 0:
            raise ValueError("table size must be positive, got %d" % size)
        self.size = size
        self._slots: List[int] = [-1] * size
        #: Number of filled slots, exposed for load-factor diagnostics.
        self.occupied = 0
        self._slots_array = None
        self._slot_fps = None

    @classmethod
    def from_fingerprints(cls, fingerprints, size: int = 1 << 16) -> "SeedTable":
        """Build a table by FCFS-inserting ``fingerprints[i] -> i`` in order.

        The whole-buffer form of the half-pass the correcting algorithm
        runs over its reference: offset ``i`` is stored for fingerprint
        ``fingerprints[i]`` unless an earlier fingerprint claimed the
        slot.  Vectorized under the fast paths (a stable first-occurrence
        reduction), bit-identical to the insertion loop.
        """
        table = cls(size)
        if _FAST and _k.HAVE_NUMPY:
            (table._slots, table.occupied,
             table._slots_array, table._slot_fps) = _k.fcfs_slots(
                fingerprints, size)
            return table
        insert = table.insert
        for offset, fingerprint in enumerate(fingerprints):
            insert(fingerprint, offset)
        return table

    def probe_arrays(self):
        """``(slots_array, slot_fps)`` for batch probing, or ``None``.

        Present only on tables built whole-buffer under the fast paths;
        any mutation invalidates them.
        """
        if self._slots_array is None:
            return None
        return self._slots_array, self._slot_fps

    def insert(self, fingerprint: int, offset: int) -> bool:
        """Record ``offset`` for ``fingerprint`` unless its slot is taken.

        Returns True when the offset was stored.
        """
        self._slots_array = None
        self._slot_fps = None
        slot = fingerprint % self.size
        if self._slots[slot] < 0:
            self._slots[slot] = offset
            self.occupied += 1
            return True
        return False

    def lookup(self, fingerprint: int) -> Optional[int]:
        """The stored offset for ``fingerprint``'s slot, or ``None``."""
        offset = self._slots[fingerprint % self.size]
        return offset if offset >= 0 else None

    def clear(self) -> None:
        """Empty the table for reuse."""
        self._slots = [-1] * self.size
        self.occupied = 0
        self._slots_array = None
        self._slot_fps = None


def full_index_reference(data: Buffer, seed_length: int = DEFAULT_SEED_LENGTH,
                         max_positions: int = 64) -> Dict[int, List[int]]:
    """Scalar oracle for the greedy index: fingerprint -> capped offsets.

    The dict-of-lists the pre-vectorization :class:`FullSeedIndex` built,
    retained so the property suite can compare the flat-array fast path
    bucket-for-bucket.
    """
    index: Dict[int, List[int]] = {}
    for offset, fingerprint in iter_seed_hashes(data, seed_length):
        bucket = index.setdefault(fingerprint, [])
        if len(bucket) < max_positions:
            bucket.append(offset)
    return index


class FullSeedIndex:
    """Exhaustive seed index: every seed offset of a buffer, by fingerprint.

    The greedy algorithm's structure: space linear in the reference, but
    it can enumerate *all* candidate match positions for a fingerprint,
    letting the caller pick the longest extension.  ``max_positions``
    caps pathological buckets (e.g. runs of zero bytes) so lookups stay
    bounded.

    Under the fast paths the index is flat arrays — fingerprints grouped
    by a stable sort, offsets ascending within each group exactly like
    insertion order — instead of a dict of lists; ``groups`` then
    supports the greedy scan's vectorized
    :meth:`~repro.delta._kernels.FingerprintGroups.membership` prefilter.
    Candidate lists returned by :meth:`candidates` are identical in
    content and order either way.
    """

    def __init__(self, data: Buffer, seed_length: int = DEFAULT_SEED_LENGTH,
                 max_positions: int = 64):
        self.seed_length = seed_length
        self.data = data
        self.max_positions = max_positions
        #: Flat-array grouping (fast paths), or None on the dict path.
        self.groups = None
        self._index: Optional[Dict[int, List[int]]] = None
        with perf.timer("index.full.build"):
            if _FAST and _k.HAVE_NUMPY:
                fps = _k.seed_fingerprints(data, seed_length)
                self.groups = _k.FingerprintGroups(fps, max_positions)
            else:
                self._index = full_index_reference(data, seed_length,
                                                  max_positions)
        perf.add("index.full.positions", len(self))

    def candidates(self, fingerprint: int) -> List[int]:
        """All stored reference offsets whose seed has this fingerprint."""
        if self.groups is not None:
            return self.groups.lookup(fingerprint)
        return self._index.get(fingerprint, [])

    def __len__(self) -> int:
        if self.groups is not None:
            return self.groups.stored
        return sum(len(v) for v in self._index.values())


def sparse_index_reference(data: Buffer, seed_length: int = DEFAULT_SEED_LENGTH,
                           stride: int = 16,
                           max_positions: int = 64) -> Dict[int, List[int]]:
    """Scalar oracle for :class:`SparseSeedIndex`: every k-th seed, by dict.

    Identical to :func:`full_index_reference` restricted to offsets that
    are multiples of ``stride`` — the sampled tier stores *real* buffer
    offsets, so candidate lists plug into the greedy scan unchanged.
    """
    index: Dict[int, List[int]] = {}
    for offset in range(0, len(data) - seed_length + 1, stride):
        fingerprint = hash_seed(data, offset, seed_length)
        bucket = index.setdefault(fingerprint, [])
        if len(bucket) < max_positions:
            bucket.append(offset)
    return index


class SparseSeedIndex:
    """Sampled seed index: every ``stride``-th seed offset, by fingerprint.

    The greedy algorithm's memory-bounded tier.  A :class:`FullSeedIndex`
    stores every seed position and prices linear in the reference — a
    multi-MiB reference prices over any reasonable cache budget, so the
    pipeline used to rebuild a >128MB index per job and thrash the LRU.
    Sampling every ``stride``-th seed divides the footprint by ``stride``
    while keeping candidate *offsets* exact (samples are real positions,
    not quantized anchors), so the scan still extends matches at byte
    granularity in both directions.

    The trade is coverage, not correctness: a common string shorter than
    ``seed_length + stride - 1`` can slip between samples, and a found
    match may start mid-string — which is why the greedy scan pairs a
    sparse index with backward extension
    (:func:`match_length_backward`), recovering the unsampled prefix the
    same way the correcting algorithm recovers provisional literals.

    Same two bit-identical forms as the full index: flat
    :class:`~repro.delta._kernels.FingerprintGroups` (with offsets
    pre-scaled by ``stride``) under the fast paths, a dict of capped
    offset lists otherwise.
    """

    def __init__(self, data: Buffer, seed_length: int = DEFAULT_SEED_LENGTH,
                 max_positions: int = 64, stride: int = 16):
        if stride <= 0:
            raise ValueError("stride must be positive, got %d" % stride)
        self.seed_length = seed_length
        self.data = data
        self.max_positions = max_positions
        self.stride = stride
        #: Flat-array grouping (fast paths), or None on the dict path.
        self.groups = None
        self._index: Optional[Dict[int, List[int]]] = None
        with perf.timer("index.sparse.build"):
            if _FAST and _k.HAVE_NUMPY:
                fps = _k.seed_fingerprints(data, seed_length)[::stride]
                self.groups = _k.FingerprintGroups(fps, max_positions,
                                                   offset_scale=stride)
            else:
                self._index = sparse_index_reference(data, seed_length,
                                                     stride, max_positions)
        perf.add("index.sparse.positions", len(self))

    def candidates(self, fingerprint: int) -> List[int]:
        """Stored (sampled) reference offsets whose seed has this fingerprint."""
        if self.groups is not None:
            return self.groups.lookup(fingerprint)
        return self._index.get(fingerprint, [])

    def __len__(self) -> int:
        if self.groups is not None:
            return self.groups.stored
        return sum(len(v) for v in self._index.values())


def match_length_reference(a: Buffer, a_start: int, b: Buffer, b_start: int,
                           limit: Optional[int] = None) -> int:
    """Scalar oracle for :func:`match_length`: fixed chunks, bytewise tail."""
    max_len = min(len(a) - a_start, len(b) - b_start)
    if limit is not None:
        max_len = min(max_len, limit)
    matched = 0
    chunk = 512
    while matched < max_len:
        step = min(chunk, max_len - matched)
        if a[a_start + matched:a_start + matched + step] == \
                b[b_start + matched:b_start + matched + step]:
            matched += step
            continue
        # Mismatch inside this chunk: locate it bytewise.
        for i in range(step):
            if a[a_start + matched + i] != b[b_start + matched + i]:
                return matched + i
        matched += step
    return matched


def match_length(a: Buffer, a_start: int, b: Buffer, b_start: int,
                 limit: Optional[int] = None) -> int:
    """Length of the longest common prefix of ``a[a_start:]`` and ``b[b_start:]``.

    Block-compare strategy: grow a doubling window of slice comparisons
    (each a C-level memcmp) while blocks match, then binary-search inside
    the first mismatching block with halving slice comparisons — no
    per-byte Python loop anywhere, so an immediate mismatch costs one
    16-byte compare and a megabyte match costs ~2 MB of memcmp in ~17
    Python operations.
    """
    if not _FAST:
        return match_length_reference(a, a_start, b, b_start, limit)
    max_len = min(len(a) - a_start, len(b) - b_start)
    if limit is not None and limit < max_len:
        max_len = limit
    if max_len <= 0:
        return 0
    matched = 0
    step = 16
    while matched < max_len:
        if step > max_len - matched:
            step = max_len - matched
        pa = a_start + matched
        pb = b_start + matched
        if a[pa:pa + step] == b[pb:pb + step]:
            matched += step
            step <<= 1
            continue
        # First mismatch lies in [matched, matched + step): bisect with
        # slice compares.  Invariant: bytes [0, lo) of the window match
        # and a mismatch exists in [lo, hi).
        lo, hi = 0, step
        while hi - lo > 1:
            mid = (lo + hi) >> 1
            if a[pa + lo:pa + mid] == b[pb + lo:pb + mid]:
                lo = mid
            else:
                hi = mid
        return matched + lo
    return matched


def match_length_backward_reference(a: Buffer, a_end: int, b: Buffer, b_end: int,
                                    limit: Optional[int] = None) -> int:
    """Scalar oracle for :func:`match_length_backward`: one byte per step."""
    max_len = min(a_end, b_end)
    if limit is not None:
        max_len = min(max_len, limit)
    matched = 0
    while matched < max_len and a[a_end - matched - 1] == b[b_end - matched - 1]:
        matched += 1
    return matched


def match_length_backward(a: Buffer, a_end: int, b: Buffer, b_end: int,
                          limit: Optional[int] = None) -> int:
    """Length of the longest common suffix of ``a[:a_end]`` and ``b[:b_end]``.

    ``a_end``/``b_end`` are exclusive.  Used by the correcting algorithm
    to extend matches backwards over bytes previously classed as added.
    Same doubling-window + bisect strategy as :func:`match_length`,
    aligned from the right.
    """
    if not _FAST:
        return match_length_backward_reference(a, a_end, b, b_end, limit)
    max_len = min(a_end, b_end)
    if limit is not None and limit < max_len:
        max_len = limit
    if max_len <= 0:
        return 0
    matched = 0
    step = 16
    while matched < max_len:
        if step > max_len - matched:
            step = max_len - matched
        pa = a_end - matched
        pb = b_end - matched
        if a[pa - step:pa] == b[pb - step:pb]:
            matched += step
            step <<= 1
            continue
        # Mismatch within the rightmost `step` bytes of the window.
        # Invariant: the rightmost `lo` bytes match and a mismatch
        # exists among bytes (lo, hi].
        lo, hi = 0, step
        while hi - lo > 1:
            mid = (lo + hi) >> 1
            if a[pa - mid:pa - lo] == b[pb - mid:pb - lo]:
                lo = mid
            else:
                hi = mid
        return matched + lo
    return matched
