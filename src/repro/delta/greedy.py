"""Greedy differencing (Reichenberger-style, reference [11] of the paper).

The greedy algorithm indexes *every* seed of the reference file, then
walks the version file; at each offset it considers all reference
positions sharing the current seed's fingerprint, extends each candidate
match as far as it goes, and takes the longest.  Compression is the best
of the three algorithms here, at the price of memory linear in the
reference and quadratic worst-case time (bounded in this implementation
by ``max_candidates`` per bucket).

Matched strings are found at byte granularity with no alignment
restriction, which is precisely the property (section 2) that lets delta
compression work on arbitrary binaries.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.commands import DeltaScript
from .builder import ScriptBuilder
from .rolling import (
    DEFAULT_SEED_LENGTH,
    FullSeedIndex,
    RollingHash,
    match_length,
)

Buffer = Union[bytes, bytearray, memoryview]


def greedy_delta(
    reference: Buffer,
    version: Buffer,
    *,
    seed_length: int = DEFAULT_SEED_LENGTH,
    max_candidates: int = 64,
    index: Optional[FullSeedIndex] = None,
    cache=None,
) -> DeltaScript:
    """Compute a delta script encoding ``version`` against ``reference``.

    ``seed_length`` is the minimum match length worth encoding as a copy;
    ``max_candidates`` caps how many same-fingerprint reference positions
    are tried per version offset (pathological inputs such as long zero
    runs otherwise degrade to quadratic time).

    Index construction is the dominant cost when one reference serves
    many versions, so it can be amortized: pass ``index`` (a prebuilt
    :class:`FullSeedIndex` over ``reference`` with matching
    ``seed_length``) or ``cache`` (a
    :class:`repro.pipeline.cache.ReferenceIndexCache`, consulted by
    content digest).  Either way the output script is byte-identical to
    the uncached call.
    """
    if seed_length <= 0:
        raise ValueError("seed_length must be positive, got %d" % seed_length)
    builder = ScriptBuilder(version)
    n = len(version)
    if n == 0:
        return builder.finish()
    if len(reference) < seed_length or n < seed_length:
        return builder.finish()  # nothing can match; whole version is one add

    if index is not None:
        if index.seed_length != seed_length:
            raise ValueError(
                "prebuilt index uses seed_length %d, call requested %d"
                % (index.seed_length, seed_length)
            )
    elif cache is not None:
        index = cache.full_index(reference, seed_length=seed_length,
                                 max_candidates=max_candidates)
    else:
        index = FullSeedIndex(reference, seed_length, max_candidates)
    roller = RollingHash(seed_length)
    pos = 0
    fingerprint = roller.reset(version, 0)
    while pos + seed_length <= n:
        best_len = 0
        best_src = -1
        for cand in index.candidates(fingerprint):
            # Fingerprints can collide; match_length re-verifies bytes,
            # so a bogus candidate just yields a short (or zero) match.
            length = match_length(reference, cand, version, pos)
            if length > best_len:
                best_len = length
                best_src = cand
        if best_len >= seed_length:
            builder.emit_copy(best_src, pos, best_len)
            pos += best_len
            if pos + seed_length <= n:
                fingerprint = roller.reset(version, pos)
            continue
        if pos + seed_length < n:
            fingerprint = roller.update(version[pos], version[pos + seed_length])
        pos += 1
    return builder.finish()
