"""Greedy differencing (Reichenberger-style, reference [11] of the paper).

The greedy algorithm indexes *every* seed of the reference file, then
walks the version file; at each offset it considers all reference
positions sharing the current seed's fingerprint, extends each candidate
match as far as it goes, and takes the longest.  Compression is the best
of the three algorithms here, at the price of memory linear in the
reference and quadratic worst-case time (bounded in this implementation
by ``max_candidates`` per bucket).

Matched strings are found at byte granularity with no alignment
restriction, which is precisely the property (section 2) that lets delta
compression work on arbitrary binaries.

The scan comes in two bit-identical forms.  When the index carries the
flat-array fast-path grouping (:attr:`FullSeedIndex.groups`), all
version fingerprints and all candidate lookups are resolved in bulk
vectorized passes before the scan loop runs — the loop itself touches
only plain-list indexing and :func:`match_length`.  Otherwise the scan
rolls a scalar Karp-Rabin hash and probes ``index.candidates`` per
offset, exactly as before.  Candidate order (ascending reference
offsets) and the first-longest tie-break are the same either way, so
the emitted script is too.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Union

from .. import perf
from ..core.commands import DeltaScript
from .builder import ScriptBuilder
from .rolling import (
    DEFAULT_SEED_LENGTH,
    FullSeedIndex,
    RollingHash,
    SparseSeedIndex,
    _seed_fingerprint_array,
    match_length,
    match_length_backward,
)

Buffer = Union[bytes, bytearray, memoryview]


def greedy_delta(
    reference: Buffer,
    version: Buffer,
    *,
    seed_length: int = DEFAULT_SEED_LENGTH,
    max_candidates: int = 64,
    index: Optional[Union[FullSeedIndex, SparseSeedIndex]] = None,
    cache=None,
) -> DeltaScript:
    """Compute a delta script encoding ``version`` against ``reference``.

    ``seed_length`` is the minimum match length worth encoding as a copy;
    ``max_candidates`` caps how many same-fingerprint reference positions
    are tried per version offset (pathological inputs such as long zero
    runs otherwise degrade to quadratic time).

    Index construction is the dominant cost when one reference serves
    many versions, so it can be amortized: pass ``index`` (a prebuilt
    :class:`FullSeedIndex` or :class:`SparseSeedIndex` over
    ``reference`` with matching ``seed_length``) or ``cache`` (a
    :class:`repro.pipeline.cache.ReferenceIndexCache`, consulted by
    content digest; on multi-MiB references it serves the sparse tier —
    see :meth:`~repro.pipeline.cache.ReferenceIndexCache.greedy_index`).
    For a given index tier the output script is byte-identical to the
    uncached call with that tier.

    With a sparse index every verified match is additionally extended
    *backwards* over pending literal bytes (the sampled tier can only
    find a match starting at a sampled reference offset, so the true
    common string usually begins earlier); with a full index an
    exhaustive earlier scan position already claimed any such prefix,
    so backward extension is skipped and the output stays exactly what
    the classic greedy algorithm produces.
    """
    if seed_length <= 0:
        raise ValueError("seed_length must be positive, got %d" % seed_length)
    recorder = perf.active()
    started = perf_counter() if recorder is not None else 0.0
    builder = ScriptBuilder(version)
    n = len(version)
    script = None
    if n == 0:
        script = builder.finish()
    elif len(reference) < seed_length or n < seed_length:
        script = builder.finish()  # nothing can match; whole version is one add
    if script is not None:
        if recorder is not None:
            _report(recorder, started, reference, version, 0, 0, 0, False)
        return script

    if index is not None:
        if index.seed_length != seed_length:
            raise ValueError(
                "prebuilt index uses seed_length %d, call requested %d"
                % (index.seed_length, seed_length)
            )
    elif cache is not None:
        index = cache.greedy_index(reference, seed_length=seed_length,
                                   max_candidates=max_candidates)
    else:
        index = FullSeedIndex(reference, seed_length, max_candidates)

    # Sparse indexes sample the reference, so a found match may start
    # mid-string; extending backwards over pending literals recovers the
    # unsampled prefix.  Full indexes skip this (see the docstring).
    correct_back = getattr(index, "stride", 1) > 1
    probes = 0
    copies = 0
    copy_bytes = 0
    corrected_bytes = 0
    groups = getattr(index, "groups", None)
    fast = groups is not None
    if fast:
        # Bulk phase: fingerprint every version seed in one vectorized
        # pass and screen them all through the index's membership
        # filter.  The scan jumps over every matched region, so only
        # the positions it actually visits — and of those, only the
        # filter's hits — pay for a real candidate lookup.
        fps_v = _seed_fingerprint_array(version, seed_length)
        maybe = groups.membership(fps_v)
        lookup = groups.lookup
        pos = 0
        last = n - seed_length
        emit_copy = builder.emit_copy
        while pos <= last:
            if maybe[pos]:
                candidates = lookup(int(fps_v[pos]))
                if candidates:
                    probes += len(candidates)
                    best_len = 0
                    best_src = -1
                    for cand in candidates:
                        # Fingerprints can collide; match_length
                        # re-verifies bytes, so a bogus candidate just
                        # yields a short (or zero) match.
                        length = match_length(reference, cand, version, pos)
                        if length > best_len:
                            best_len = length
                            best_src = cand
                    if best_len >= seed_length:
                        back = 0
                        if correct_back:
                            back = match_length_backward(
                                reference, best_src, version, pos,
                                limit=min(best_src, pos - builder.add_start),
                            )
                        emit_copy(best_src - back, pos - back, back + best_len)
                        copies += 1
                        copy_bytes += back + best_len
                        corrected_bytes += back
                        pos += best_len
                        continue
            pos += 1
    else:
        roller = RollingHash(seed_length)
        pos = 0
        fingerprint = roller.reset(version, 0)
        while pos + seed_length <= n:
            best_len = 0
            best_src = -1
            for cand in index.candidates(fingerprint):
                probes += 1
                length = match_length(reference, cand, version, pos)
                if length > best_len:
                    best_len = length
                    best_src = cand
            if best_len >= seed_length:
                back = 0
                if correct_back:
                    back = match_length_backward(
                        reference, best_src, version, pos,
                        limit=min(best_src, pos - builder.add_start),
                    )
                builder.emit_copy(best_src - back, pos - back, back + best_len)
                copies += 1
                copy_bytes += back + best_len
                corrected_bytes += back
                pos += best_len
                if pos + seed_length <= n:
                    fingerprint = roller.reset(version, pos)
                continue
            if pos + seed_length < n:
                fingerprint = roller.update(version[pos], version[pos + seed_length])
            pos += 1
    script = builder.finish()
    if recorder is not None:
        _report(recorder, started, reference, version,
                probes, copies, copy_bytes, fast, corrected_bytes)
    return script


def _report(recorder, started, reference, version,
            probes, copies, copy_bytes, fast, corrected_bytes=0) -> None:
    recorder.merge({
        "diff.greedy.calls": 1,
        "diff.greedy.seconds": perf_counter() - started,
        "diff.greedy.reference_bytes": len(reference),
        "diff.greedy.version_bytes": len(version),
        "diff.greedy.candidates_probed": probes,
        "diff.greedy.copies": copies,
        "diff.greedy.copy_bytes": copy_bytes,
        "diff.greedy.corrected_bytes": corrected_bytes,
        "diff.greedy.fast_path": 1 if fast else 0,
    })
